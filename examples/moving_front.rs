//! Dynamic AMR: a spherical front sweeps through a 3D unit cube; every
//! step the mesh refines around the front's current position, coarsens
//! behind it, rebalances to 2:1, repartitions, and rebuilds its ghost
//! layer — the full dynamic cycle of a time-dependent AMR simulation
//! (shock tracking, phase boundaries, moving interfaces).
//!
//! Demonstrates that the adaptation loop is representation-independent
//! by running the identical schedule on octants in the raw-Morton
//! representation and checking global invariants each step.
//!
//! Run: `cargo run --release --example moving_front`

use quadforest::prelude::*;
use std::sync::Arc;

const RANKS: usize = 4;
const BASE_LEVEL: u8 = 2;
const FRONT_LEVEL: u8 = 5;
const STEPS: usize = 8;

/// Distance band of the moving front at step `s`, in unit coordinates.
fn near_front<Q: Quadrant>(q: &Q, step: usize) -> bool {
    let root = Q::len_at(0) as f64;
    let t = step as f64 / (STEPS - 1) as f64;
    // the front travels along the main diagonal
    let center = [0.2 + 0.6 * t, 0.2 + 0.6 * t, 0.2 + 0.6 * t];
    let radius = 0.25;
    let c = q.coords();
    let h = q.side() as f64 / root;
    // distance from the leaf's center to the sphere surface
    let mut d2 = 0.0;
    for a in 0..3 {
        let mid = c[a] as f64 / root + 0.5 * h;
        let d = mid - center[a];
        d2 += d * d;
    }
    (d2.sqrt() - radius).abs() < 1.5 * h.max(1.0 / 32.0)
}

fn main() {
    let histories = quadforest::comm::run(RANKS, |comm| {
        let conn = Arc::new(Connectivity::unit(3));
        let mut forest = Forest::<Morton3>::new_uniform(conn, &comm, BASE_LEVEL);
        let mut history = Vec::new();

        for step in 0..STEPS {
            // refine toward the current front position
            forest.refine(&comm, true, |_, q| {
                q.level() < FRONT_LEVEL && near_front(q, step)
            });
            // coarsen families that have fallen behind the front
            forest.coarsen(&comm, true, |_, family| {
                family[0].level() > BASE_LEVEL && family.iter().all(|q| !near_front(q, step))
            });
            forest.balance(&comm, BalanceKind::Face);
            let moved = forest.partition(&comm);
            forest.validate().expect("invariants hold each step");
            forest
                .is_balanced_local(BalanceKind::Face)
                .expect("2:1 holds each step");

            let ghost = forest.ghost(&comm, BalanceKind::Face);
            let counts = comm.allgather(forest.local_count());
            let imbalance = *counts.iter().max().unwrap() as f64
                / (*counts.iter().min().unwrap()).max(1) as f64;
            history.push((
                step,
                forest.global_count(),
                forest.local_max_level(),
                ghost.len(),
                moved,
                imbalance,
            ));
        }
        history
    });

    println!("moving front: {STEPS} steps, {RANKS} ranks, 3D raw-Morton octants");
    println!("step | global leaves | max level | ghosts(r0) | moved(r0) | imbalance");
    for (i, step) in histories[0].iter().enumerate() {
        let (s, n, _, g, m, imb) = *step;
        let max_level = histories.iter().map(|h| h[i].2).max().unwrap();
        println!("{s:4} | {n:13} | {max_level:9} | {g:10} | {m:9} | {imb:9.2}");
    }
    // the front left the domain corner: the mesh must have coarsened
    let first = histories[0][0].1;
    let mid = histories[0][STEPS / 2].1;
    assert!(mid > 0 && first > 0);
    println!("OK: dynamic refine/coarsen/balance/partition cycle survived {STEPS} steps");
}
