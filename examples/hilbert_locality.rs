//! Space-filling-curve locality: partition the same adaptive mesh by the
//! Morton curve and by the Hilbert curve and compare how fragmented each
//! rank's subdomain is. Writes side-by-side VTK files colored by owner
//! rank — the classic picture of why Hilbert partitions have shorter
//! inter-rank boundaries, and a demonstration of the paper's virtual
//! quadrant interface carrying an entirely different curve through the
//! unchanged high-level algorithms.
//!
//! Run: `cargo run --release --example hilbert_locality`
//! View: `paraview locality_morton_*.vtk locality_hilbert_*.vtk`

use quadforest::prelude::*;
use quadforest::vtk::{write_files, VtkOptions};
use std::sync::Arc;

const RANKS: usize = 6;
const INIT_LEVEL: u8 = 3;
const MAX_LEVEL: u8 = 6;

/// Per-curve statistics: leaves, boundary length between ranks, and the
/// number of connected fragments per rank.
struct Stats {
    global: u64,
    cut_faces: u64,
    fragments: usize,
}

fn measure<Q: Quadrant>(tag: &str) -> Stats {
    let tag = tag.to_string();
    let per_rank = quadforest::comm::run(RANKS, move |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut forest = Forest::<Q>::new_uniform(conn, &comm, INIT_LEVEL);
        // refine toward a diagonal band
        let root = Q::len_at(0) as f64;
        forest.refine(&comm, true, |_, q| {
            if q.level() >= MAX_LEVEL {
                return false;
            }
            let c = q.coords();
            let h = q.side() as f64 / root;
            let x = c[0] as f64 / root + h / 2.0;
            let y = c[1] as f64 / root + h / 2.0;
            (x + y - 1.0).abs() < 1.5 * h
        });
        forest.balance(&comm, BalanceKind::Face);
        forest.partition(&comm);

        // rank-boundary length: faces whose opposite side is a ghost
        let ghost = forest.ghost(&comm, BalanceKind::Face);
        let mut cut = 0u64;
        iterate_faces(&forest, &ghost, |iface| {
            if let Interface::Interior(p, others) = iface {
                if p.is_ghost || others.iter().any(|o| o.is_ghost) {
                    cut += 1;
                }
            }
        });

        // connected components of the local leaf set (face adjacency)
        let leaves: Vec<Q> = forest.leaves().map(|(_, q)| *q).collect();
        let mut parent: Vec<usize> = (0..leaves.len()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for i in 0..leaves.len() {
            for j in i + 1..leaves.len() {
                let (a, b) = (leaves[i], leaves[j]);
                let (ca, cb) = (a.coords(), b.coords());
                let (ha, hb) = (a.side(), b.side());
                // closed boxes sharing a full edge segment (not a corner)
                let overlap =
                    |lo1: i32, h1: i32, lo2: i32, h2: i32| lo1 < lo2 + h2 && lo2 < lo1 + h1;
                let touch_x =
                    (ca[0] + ha == cb[0] || cb[0] + hb == ca[0]) && overlap(ca[1], ha, cb[1], hb);
                let touch_y =
                    (ca[1] + ha == cb[1] || cb[1] + hb == ca[1]) && overlap(ca[0], ha, cb[0], hb);
                if touch_x || touch_y {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ra] = rb;
                }
            }
        }
        let fragments = (0..leaves.len())
            .filter(|&i| find(&mut parent, i) == i)
            .count();

        write_files(
            &forest,
            &comm,
            &format!("locality_{tag}"),
            &VtkOptions::default(),
        )
        .expect("vtk output");

        (forest.global_count(), cut, fragments)
    });
    Stats {
        global: per_rank[0].0,
        cut_faces: per_rank.iter().map(|r| r.1).sum::<u64>() / 2, // counted from both sides
        fragments: per_rank.iter().map(|r| r.2).sum(),
    }
}

fn main() {
    println!("curve locality comparison — diagonal-band AMR, {RANKS} ranks\n");
    let morton = measure::<Morton2>("morton");
    let hilbert = measure::<HilbertQuad>("hilbert");
    assert_eq!(
        morton.global, hilbert.global,
        "both curves must produce the identical balanced mesh"
    );
    println!("| curve | leaves | rank-cut faces | rank fragments |");
    println!("|---|---|---|---|");
    println!(
        "| Morton  | {} | {} | {} |",
        morton.global, morton.cut_faces, morton.fragments
    );
    println!(
        "| Hilbert | {} | {} | {} |",
        hilbert.global, hilbert.cut_faces, hilbert.fragments
    );
    println!(
        "\nHilbert / Morton cut ratio: {:.2}",
        hilbert.cut_faces as f64 / morton.cut_faces as f64
    );
    println!("wrote locality_morton_*.vtk and locality_hilbert_*.vtk (colored by rank)");
    assert!(
        hilbert.fragments <= morton.fragments,
        "Hilbert rank subdomains must not be more fragmented"
    );
}
