//! Fractal AMR: refine a quadtree onto the boundary of the Mandelbrot
//! set and write the mesh as VTK files (one per simulated rank), colored
//! by refinement level and owner rank.
//!
//! This is the classic "resolve an irregular interface" AMR workload the
//! p4est papers motivate: refinement concentrates on an extremely
//! irregular curve while coarse cells cover the featureless interior and
//! exterior, and the SFC partition keeps ranks balanced regardless.
//!
//! Run: `cargo run --release --example fractal_amr`
//! View: `paraview fractal_amr_*.vtk`

use quadforest::prelude::*;
use quadforest::vtk::{write_files, VtkOptions};
use std::sync::Arc;

/// Escape-time iteration count at a point of the complex plane.
fn mandelbrot_iters(cx: f64, cy: f64, max_iters: u32) -> u32 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    for i in 0..max_iters {
        let x2 = x * x;
        let y2 = y * y;
        if x2 + y2 > 4.0 {
            return i;
        }
        y = 2.0 * x * y + cy;
        x = x2 - y2 + cx;
    }
    max_iters
}

/// A leaf straddles the set boundary when its corner samples disagree
/// about membership.
fn straddles_boundary<Q: Quadrant>(q: &Q, max_iters: u32) -> bool {
    let root = Q::len_at(0) as f64;
    let c = q.coords();
    let h = q.side();
    // map the unit square onto [-2.2, 0.8] x [-1.5, 1.5]
    let map = |cx: i32, cy: i32| (-2.2 + 3.0 * cx as f64 / root, -1.5 + 3.0 * cy as f64 / root);
    let mut inside = 0;
    let mut total = 0;
    for sx in 0..=2 {
        for sy in 0..=2 {
            let (px, py) = map(c[0] + sx * h / 2, c[1] + sy * h / 2);
            total += 1;
            if mandelbrot_iters(px, py, max_iters) == max_iters {
                inside += 1;
            }
        }
    }
    inside != 0 && inside != total
}

fn main() {
    const RANKS: usize = 4;
    const INIT_LEVEL: u8 = 4;
    const MAX_LEVEL: u8 = 9;
    const ESCAPE_ITERS: u32 = 64;

    let stats = quadforest::comm::run(RANKS, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        // the SIMD representation this time
        let mut forest = Forest::<Avx2d>::new_uniform(conn, &comm, INIT_LEVEL);

        // iterative deepening with repartition between generations keeps
        // the expensive escape-time sampling balanced across ranks
        for target in (INIT_LEVEL + 1)..=MAX_LEVEL {
            forest.refine(&comm, false, |_, q| {
                q.level() < target && straddles_boundary(q, ESCAPE_ITERS)
            });
            forest.partition_by(&comm, |_, q| 1 + q.level() as u64);
        }
        forest.balance(&comm, BalanceKind::Full);
        forest.partition(&comm);
        forest.validate().expect("invariants");

        let levels = {
            let mut histogram = [0u64; 16];
            for (_, q) in forest.leaves() {
                histogram[q.level() as usize] += 1;
            }
            histogram
        };

        let files = write_files(
            &forest,
            &comm,
            "fractal_amr",
            &VtkOptions {
                title: "Mandelbrot boundary AMR",
                embedding: None,
                cell_fields: vec![],
            },
        )
        .expect("vtk output");

        (forest.global_count(), forest.local_count(), levels, files)
    });

    let (global, _, _, files) = &stats[0];
    println!("fractal AMR: {global} leaves over {RANKS} ranks (AVX2 quadrants)");
    let mut histogram = [0u64; 16];
    for (_, _, h, _) in &stats {
        for (i, v) in h.iter().enumerate() {
            histogram[i] += v;
        }
    }
    for (level, count) in histogram.iter().enumerate() {
        if *count > 0 {
            println!("  level {level:2}: {count:7} leaves");
        }
    }
    println!(
        "per-rank leaf counts: {:?}",
        stats.iter().map(|s| s.1).collect::<Vec<_>>()
    );
    println!("wrote {} VTK files: {:?}", files.len(), files);
}
