//! Quickstart: the canonical p4est-style opening sequence.
//!
//! Builds a forest over a 2×2 brick of quadtrees on four simulated MPI
//! ranks, refines toward a circle, 2:1-balances, repartitions, builds a
//! ghost layer, iterates the mesh interfaces, and finally serves spatial
//! queries from an immutable snapshot of the finished mesh — the full
//! high-level workflow the paper's quadrant representations plug into.
//! The representation is chosen once, on the type parameter; everything
//! else is representation-agnostic.
//!
//! Run: `cargo run --release --example quickstart`

use quadforest::prelude::*;
use std::sync::Arc;

fn main() {
    const RANKS: usize = 4;
    const INIT_LEVEL: u8 = 3;
    const MAX_LEVEL: u8 = 6;

    // The circle we refine toward, in unit coordinates of the brick.
    let center = [1.0, 1.0];
    let radius = 0.55;

    let reports = quadforest::comm::run(RANKS, |comm| {
        // a 2x2 brick of quadtrees — the macro mesh
        let conn = Arc::new(Connectivity::brick2d(2, 2, false, false));

        // The paper's raw Morton representation drives the whole run;
        // swap `Morton2` for `Standard2`, `Avx2d` or `Morton128x2` and
        // every result below stays identical.
        let mut forest = Forest::<Morton2>::new_uniform(conn, &comm, INIT_LEVEL);

        // refine every leaf crossing the circle boundary
        let root_len = Morton2::len_at(0) as f64;
        let crosses_circle = |tree: TreeId, q: &Morton2| {
            let tx = (tree % 2) as f64;
            let ty = (tree / 2) as f64;
            let c = q.coords();
            let h = q.side() as f64 / root_len;
            let x0 = tx + c[0] as f64 / root_len;
            let y0 = ty + c[1] as f64 / root_len;
            // does the leaf box intersect the circle line?
            let (mut dmin, mut dmax) = (0.0f64, 0.0f64);
            for (lo, cc) in [(x0, center[0]), (y0, center[1])] {
                let hi = lo + h;
                let lo_d = lo - cc;
                let hi_d = hi - cc;
                let far = lo_d.abs().max(hi_d.abs());
                let near = if lo_d <= 0.0 && hi_d >= 0.0 {
                    0.0
                } else {
                    lo_d.abs().min(hi_d.abs())
                };
                dmin += near * near;
                dmax += far * far;
            }
            dmin.sqrt() <= radius && dmax.sqrt() >= radius
        };
        forest.refine(&comm, true, |t, q| {
            q.level() < MAX_LEVEL && crosses_circle(t, q)
        });

        let after_refine = forest.global_count();
        let refined_balance = forest.balance(&comm, BalanceKind::Face);
        forest
            .is_balanced_local(BalanceKind::Face)
            .expect("2:1 holds");
        let moved = forest.partition(&comm);
        forest.validate().expect("forest invariants");

        // ghost layer + interface statistics
        let ghost = forest.ghost(&comm, BalanceKind::Face);
        let (mut boundary, mut conforming, mut hanging) = (0u64, 0u64, 0u64);
        iterate_faces(&forest, &ghost, |iface| match iface {
            Interface::Boundary(_) => boundary += 1,
            Interface::Interior(_, others) => {
                if others.len() == 1 {
                    conforming += 1
                } else {
                    hanging += 1
                }
            }
        });

        // --- serve spatial queries from an immutable snapshot ---------
        // Flatten this generation, publish it through the lock-free
        // handle, and serve batched point location from two worker
        // threads. The AMR loop above could keep adapting and
        // republishing; readers would follow without ever blocking.
        let handle = SnapshotHandle::new(ForestSnapshot::build(&forest, 1));
        let exec = QueryExecutor::new(Arc::clone(&handle), 2);
        let root = Morton2::len_at(0);
        let diagonal: Vec<(TreeId, [i32; 3])> = (1..8)
            .map(|i| (comm.rank() as TreeId % 4, [i * root / 8, i * root / 8, 0]))
            .collect();
        let local_hits = exec
            .locate_points(diagonal.clone())
            .iter()
            .filter(|h| h.is_some())
            .count();
        // points this rank does not own are routed to their owner over
        // the communicator; every in-domain point resolves somewhere
        let snap = handle.load();
        let routed = quadforest::query::locate_global(&comm, &snap, &diagonal);
        assert!(routed.iter().all(|h| h.is_some()), "diagonal point lost");

        (
            comm.rank(),
            after_refine,
            forest.global_count(),
            refined_balance,
            moved,
            forest.local_count(),
            ghost.len(),
            (boundary, conforming, hanging),
            (local_hits, diagonal.len()),
        )
    });

    println!("quadforest quickstart — 2x2 brick, {RANKS} simulated ranks, raw-Morton quadrants");
    println!(
        "global leaves: {} after refine -> {} after balance",
        reports[0].1, reports[0].2
    );
    for (rank, _, _, bal, moved, local, ghosts, (b, c, h), (hit, asked)) in &reports {
        println!(
            "rank {rank}: {local:5} leaves, {ghosts:3} ghosts, balance refined {bal:3}, \
             partition moved {moved:4} | faces: {b} boundary / {c} conforming / {h} hanging \
             | queries: {hit}/{asked} local"
        );
    }
    let total: usize = reports.iter().map(|r| r.5).sum();
    assert_eq!(total as u64, reports[0].2);
    println!("OK: per-rank leaves sum to the global count");
    println!("OK: every diagonal query point resolved (locally or routed to its owner)");
}
