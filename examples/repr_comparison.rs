//! Representation comparison: run the *identical* AMR pipeline under all
//! four quadrant representations and verify they produce bit-identical
//! meshes while differing in speed and memory — the user-facing payoff
//! of the paper's virtual quadrant interface.
//!
//! Run: `cargo run --release --example repr_comparison`

use quadforest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RANKS: usize = 4;
const INIT_LEVEL: u8 = 2;
const MAX_LEVEL: u8 = 5;

/// The shared pipeline, generic over the representation. Returns the
/// global checksum (identical across representations), the wall time,
/// and the local leaf bytes.
fn pipeline<Q: Quadrant>() -> (u64, Duration, usize) {
    let results = quadforest::comm::run(RANKS, |comm| {
        let start = Instant::now();
        let conn = Arc::new(Connectivity::brick3d(2, 1, 1, [false; 3]));
        let mut forest = Forest::<Q>::new_uniform(conn, &comm, INIT_LEVEL);
        let center = [Q::len_at(0) / 2, Q::len_at(0) / 2, Q::len_at(0) / 2];
        forest.refine(&comm, true, |t, q| {
            t == 0 && q.level() < MAX_LEVEL && q.contains_point(center)
        });
        forest.balance(&comm, BalanceKind::Face);
        forest.partition(&comm);
        let ghost = forest.ghost(&comm, BalanceKind::Face);
        let mut faces = 0u64;
        iterate_faces(&forest, &ghost, |_| faces += 1);
        let checksum = forest.checksum(&comm) ^ comm.allreduce_sum(faces);
        let bytes = forest.local_count() * std::mem::size_of::<Q>();
        (checksum, start.elapsed(), bytes)
    });
    let checksum = results[0].0;
    assert!(results.iter().all(|r| r.0 == checksum));
    let time = results.iter().map(|r| r.1).max().unwrap();
    let bytes = results.iter().map(|r| r.2).sum();
    (checksum, time, bytes)
}

fn main() {
    println!("identical AMR pipeline (refine->balance->partition->ghost->iterate)");
    println!("under all four quadrant representations, {RANKS} ranks, 2x1x1 brick of octrees\n");
    println!("| representation | checksum | wall time (ms) | leaf bytes | bytes/leaf |");
    println!("|---|---|---|---|---|");

    let rows = [
        ("standard (24 B)", pipeline::<Standard3>()),
        ("raw Morton (8 B)", pipeline::<Morton3>()),
        ("AVX2 / 128-bit (16 B)", pipeline::<Avx3d>()),
        ("Morton128 (16 B)", pipeline::<Morton128x3>()),
    ];

    let reference = rows[0].1 .0;
    for (name, (checksum, time, bytes)) in &rows {
        println!(
            "| {name} | {checksum:016x} | {:.2} | {bytes} | — |",
            time.as_secs_f64() * 1e3
        );
        assert_eq!(
            checksum, &reference,
            "representations must produce identical meshes"
        );
    }
    println!("\nOK: all four representations produced the identical global mesh");
    println!("    (checksum covers every leaf position, level and interface count)");
    let std_bytes = rows[0].1 .2 as f64;
    let mor_bytes = rows[1].1 .2 as f64;
    let avx_bytes = rows[2].1 .2 as f64;
    println!(
        "memory ratio standard : avx : morton = {:.2} : {:.2} : 1  (paper: 3 : 2 : 1)",
        std_bytes / mor_bytes,
        avx_bytes / mor_bytes
    );
}
