//! Finite-volume diffusion on a dynamically adapting forest — the kind
//! of application the AMR workflow exists for, and a hard end-to-end
//! test of the interface machinery: explicit diffusion fluxes are
//! exchanged across every mesh interface (conforming *and* hanging, local
//! *and* ghost), and total mass must be conserved to machine precision
//! at every step. Any interface visited twice, missed, or mis-paired
//! breaks conservation immediately.
//!
//! A Gaussian blob diffuses through a periodic unit square; the mesh
//! refines where the field is steep and coarsens behind, with
//! mass-conservative remapping (children inherit, parents average).
//!
//! Run: `cargo run --release --example diffusion_fv`

use quadforest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

type Q = Morton2;

const RANKS: usize = 3;
const BASE_LEVEL: u8 = 3;
const MAX_LEVEL: u8 = 6;
const STEPS: usize = 60;
const KAPPA: f64 = 0.05;

/// Leaf identity key for data remapping across adaptation.
fn key(t: TreeId, q: &Q) -> (u32, u64, u8) {
    (t, q.morton_abs(), q.level())
}

/// Initial condition: a narrow Gaussian at (0.3, 0.4).
fn initial(t: TreeId, q: &Q) -> f64 {
    let _ = t;
    let root = Q::len_at(0) as f64;
    let c = q.coords();
    let h = q.side() as f64 / root;
    let x = c[0] as f64 / root + h / 2.0;
    let y = c[1] as f64 / root + h / 2.0;
    let d2 = (x - 0.3).powi(2) + (y - 0.4).powi(2);
    (-d2 / 0.003).exp()
}

/// One rank's simulation state: the forest plus one value per leaf.
struct Sim {
    forest: Forest<Q>,
    u: Vec<f64>,
}

impl Sim {
    fn leaf_index(&self) -> HashMap<(u32, u64, u8), usize> {
        self.forest
            .leaves()
            .enumerate()
            .map(|(i, (t, q))| (key(t, q), i))
            .collect()
    }

    /// Local mass: Σ u_i · V_i (V in units of the root square).
    fn local_mass(&self) -> f64 {
        let root = Q::len_at(0) as f64;
        self.forest
            .leaves()
            .zip(&self.u)
            .map(|((_, q), u)| {
                let h = q.side() as f64 / root;
                u * h * h
            })
            .sum()
    }

    /// Adapt the mesh toward the field's steep regions and remap the
    /// data conservatively (copy to children, volume-average to parent).
    fn adapt(&mut self, comm: &Comm) {
        let old_forest = self.forest.clone();
        let old_u = self.u.clone();
        let old_index: HashMap<_, _> = old_forest
            .leaves()
            .enumerate()
            .map(|(i, (t, q))| (key(t, q), i))
            .collect();

        // refine where the value is significant, coarsen where flat
        let index = self.leaf_index();
        let u = &self.u;
        let magnitude =
            |t: TreeId, q: &Q| -> f64 { index.get(&key(t, q)).map(|i| u[*i]).unwrap_or(0.0) };
        self.forest.refine(comm, false, |t, q| {
            q.level() < MAX_LEVEL && magnitude(t, q) > 0.2
        });
        self.forest.coarsen(comm, false, |t, fam| {
            fam[0].level() > BASE_LEVEL && fam.iter().all(|q| magnitude(t, q) < 0.05)
        });
        self.forest.balance(comm, BalanceKind::Face);

        // remap: every new leaf is an old leaf, a child of one, or a
        // parent of a family (possibly several levels after balance)
        let mut new_u = Vec::with_capacity(self.forest.local_count());
        for (t, q) in self.forest.leaves() {
            if let Some(i) = old_index.get(&key(t, q)) {
                new_u.push(old_u[*i]);
                continue;
            }
            // containment search in the old local forest
            let range = old_forest.overlapping_range(t, q);
            let olds = &old_forest.tree_leaves(t)[range.clone()];
            assert!(
                !olds.is_empty(),
                "remap source must be local (no repartition between adapt steps)"
            );
            if olds.len() == 1 && olds[0].is_ancestor_of(q) {
                // refined: inherit the parent's value
                let old_leaf_idx = old_index[&key(t, &olds[0])];
                new_u.push(old_u[old_leaf_idx]);
            } else {
                // coarsened: volume-weighted average of the children
                let mut mass = 0.0;
                let mut vol = 0.0;
                for o in olds {
                    let i = old_index[&key(t, o)];
                    let h = o.side() as f64;
                    mass += old_u[i] * h * h;
                    vol += h * h;
                }
                new_u.push(mass / vol);
            }
        }
        self.u = new_u;
    }

    /// One explicit diffusion step; returns the flux applied per leaf.
    fn step(&mut self, comm: &Comm, dt: f64) {
        let root = Q::len_at(0) as f64;
        let ghost = self.forest.ghost(comm, BalanceKind::Face);
        let ghost_u = ghost.exchange_data(&self.forest, comm, &self.u);
        let ghost_index: HashMap<_, _> = ghost
            .ghosts
            .iter()
            .enumerate()
            .map(|(i, g)| (key(g.tree, &g.quad), i))
            .collect();
        let index = self.leaf_index();

        let value = |side: &FaceSide<Q>, u: &[f64]| -> f64 {
            let k = key(side.tree, &side.quad);
            if side.is_ghost {
                ghost_u[ghost_index[&k]]
            } else {
                u[index[&k]]
            }
        };

        let mut du = vec![0.0; self.u.len()];
        iterate_faces(&self.forest, &ghost, |iface| {
            let Interface::Interior(primary, others) = iface else {
                unreachable!("periodic domain has no boundary faces");
            };
            for other in &others {
                // geometric factors: shared face length = the finer
                // side's face; center distance along the face normal
                let hp = primary.quad.side() as f64 / root;
                let ho = other.quad.side() as f64 / root;
                let area = hp.min(ho);
                let dist = (hp + ho) / 2.0;
                let up = value(&primary, &self.u);
                let uo = value(other, &self.u);
                let flux = KAPPA * (uo - up) * area / dist; // into primary
                if !primary.is_ghost {
                    let i = index[&key(primary.tree, &primary.quad)];
                    let vol = hp * hp;
                    du[i] += dt * flux / vol;
                }
                if !other.is_ghost {
                    let i = index[&key(other.tree, &other.quad)];
                    let vol = ho * ho;
                    du[i] -= dt * flux / vol;
                }
            }
        });
        for (u, d) in self.u.iter_mut().zip(&du) {
            *u += d;
        }
    }
}

fn main() {
    let reports = quadforest::comm::run(RANKS, |comm| {
        let conn = Arc::new(Connectivity::periodic(2));
        let mut forest = Forest::<Q>::new_uniform(conn, &comm, BASE_LEVEL);
        // initial refinement onto the blob, then freeze the partition
        // (data stays rank-local through adaptation; see `adapt`)
        for _ in 0..(MAX_LEVEL - BASE_LEVEL) {
            forest.refine(&comm, false, |t, q| {
                q.level() < MAX_LEVEL && initial(t, q) > 0.1
            });
        }
        forest.balance(&comm, BalanceKind::Face);
        let u: Vec<f64> = forest.leaves().map(|(t, q)| initial(t, q)).collect();
        let mut sim = Sim { forest, u };

        let mass0 = comm.allreduce(sim.local_mass(), |a, b| a + b);
        let mut history = Vec::new();
        // dt bounded by the finest cell: dt <= h_min^2 / (4 kappa)
        let hmin = 1.0 / (1u64 << MAX_LEVEL) as f64;
        let dt = 0.2 * hmin * hmin / KAPPA;

        for s in 0..STEPS {
            sim.step(&comm, dt);
            if s % 10 == 9 {
                sim.adapt(&comm);
            }
            let mass = comm.allreduce(sim.local_mass(), |a, b| a + b);
            let umax = comm.allreduce(sim.u.iter().cloned().fold(0.0f64, f64::max), |a, b| {
                a.max(*b)
            });
            history.push((s, sim.forest.global_count(), mass, umax));
            let drift = (mass - mass0).abs() / mass0;
            assert!(
                drift < 1e-12,
                "mass must be conserved: step {s}, drift {drift:e}"
            );
        }
        (mass0, history)
    });

    let (mass0, history) = &reports[0];
    println!("finite-volume diffusion on dynamic AMR — periodic square, {RANKS} ranks");
    println!("initial mass: {mass0:.12}");
    println!("step | leaves | mass (conserved) | max u");
    for (s, n, mass, umax) in history.iter().step_by(10) {
        println!("{s:4} | {n:6} | {mass:.12} | {umax:.4}");
    }
    let (_, n_last, mass_last, umax_last) = history.last().unwrap();
    println!(
        "{:4} | {n_last:6} | {mass_last:.12} | {umax_last:.4}",
        STEPS - 1
    );
    println!(
        "\nOK: mass drift {:.2e} over {STEPS} steps (machine precision), peak decayed {:.2}x",
        (mass_last - mass0).abs() / mass0,
        history[0].3 / umax_last
    );
}
