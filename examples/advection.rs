//! Data-bearing AMR end to end: patch-based advection with payload
//! migration, halo exchange, checkpointing, and chaos recovery.
//!
//! A Gaussian blob is transported across a periodic unit square. Every
//! leaf carries an 8×8 cell patch; the full loop runs each step:
//!
//! 1. **step** — donor-cell upwind fluxes, patch boundaries served by
//!    halo strips shipped through ghost exchange;
//! 2. **adapt** — refine where the solution is steep, coarsen behind,
//!    2:1 balance, with conservative payload remapping;
//! 3. **migrate** — repartition; every moving leaf ships its patch in
//!    the partition all-to-all;
//! 4. **checkpoint** — every few steps, mesh AND patches go to disk.
//!
//! The run executes under a fault plan that panics one rank mid-loop
//! and injects message delays/reordering; the recovery supervisor
//! restarts the world, restores the newest checkpoint bit-identically,
//! and replays the remaining steps. Total mass is asserted at machine
//! precision every step, across adaptation, migration, and recovery.
//!
//! Run: `cargo run --release --example advection`

use quadforest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

type Q = Morton2;

const RANKS: usize = 3;
const BASE_LEVEL: u8 = 3;
const MAX_LEVEL: u8 = 5;
const STEPS: u64 = 120;
const ADAPT_EVERY: u64 = 5;
const SAVE_EVERY: u64 = 20;
const VELOCITY: [f64; 2] = [1.0, 0.5];
const CFL: f64 = 0.45;

struct Frame {
    step: u64,
    leaves: u64,
    mass: f64,
    peak: f64,
    picture: String,
}

fn simulate(
    comm: &Comm,
    attempt: Attempt,
    dir: &std::path::Path,
) -> (f64, f64, Vec<Frame>, u64, u64) {
    let conn = Arc::new(Connectivity::periodic(2));
    let restored = if attempt.is_retry() {
        AdvectionSim::<Q>::restore(conn.clone(), comm, dir, VELOCITY, BASE_LEVEL, MAX_LEVEL).ok()
    } else {
        None
    };
    let resumed_at = restored.as_ref().map(|s| s.steps_taken);
    let mut sim = restored.unwrap_or_else(|| {
        AdvectionSim::<Q>::new(conn, comm, BASE_LEVEL, MAX_LEVEL, VELOCITY, gaussian_blob)
    });
    if comm.rank() == 0 {
        match resumed_at {
            Some(s) => eprintln!(
                "[attempt {}] restored checkpoint, resuming at step {s}",
                attempt.index
            ),
            None if attempt.is_retry() => {
                eprintln!(
                    "[attempt {}] no checkpoint yet, restarting from scratch",
                    attempt.index
                )
            }
            None => {}
        }
    }

    let mass0 = sim.total_mass(comm);
    let mut frames = Vec::new();
    let mut migrated_bytes = 0u64;
    while sim.steps_taken < STEPS {
        let dt = sim.cfl_dt(comm, CFL);
        sim.step(comm, dt);
        let s = sim.steps_taken;
        if s % ADAPT_EVERY == 0 {
            sim.adapt(comm, AdaptThresholds::default());
            migrated_bytes += comm.allreduce_sum(sim.migrate(comm));
        }
        if s % SAVE_EVERY == 0 {
            sim.checkpoint(comm, dir).expect("checkpoint save");
        }
        let mass = sim.total_mass(comm);
        let drift = (mass - mass0).abs() / mass0;
        assert!(
            drift < 1e-12,
            "mass must be conserved: step {s}, drift {drift:e}"
        );
        if s % 30 == 0 || s == STEPS {
            frames.push(Frame {
                step: s,
                leaves: sim.forest.global_count(),
                mass,
                peak: sim.max_value(comm),
                picture: sim.ascii_frame(comm, 48, 16),
            });
        }
    }
    let digest = sim.state_digest(comm);
    (mass0, sim.total_mass(comm), frames, digest, migrated_bytes)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("qf-advection-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // chaos: rank 1 panics mid-run; all ranks see delayed + reordered
    // messages. Recovery restores the newest mesh+patch checkpoint.
    let opts = RecoveryOptions {
        policy: RecoveryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            ..RecoveryPolicy::default()
        },
        plans: vec![Some(
            FaultPlan::new(0xADC7)
                .with_delays(0.02, Duration::from_micros(300))
                .with_reordering(0.02)
                .with_panic_at(1, 700),
        )],
        ..RecoveryOptions::default()
    };
    let outcome = {
        let dir = dir.clone();
        run_with_recovery(RANKS, opts, move |comm, attempt| {
            Ok(simulate(&comm, attempt, &dir))
        })
        .expect("advection must recover from the injected fault")
    };
    let _ = std::fs::remove_dir_all(&dir);

    let (mass0, mass_end, frames, digest, migrated) = &outcome.values[0];
    println!("patch-based advection on dynamic AMR — periodic square, {RANKS} ranks");
    println!(
        "attempts: {} (one rank killed mid-run, recovered from checkpoint)",
        outcome.attempts
    );
    println!("state digest: {digest:016x} (identical on every rank)");
    for (r, (_, _, _, d, _)) in outcome.values.iter().enumerate() {
        assert_eq!(d, digest, "rank {r} disagrees on the final state");
    }
    println!("payload migrated during repartitioning: {migrated} bytes (global, final attempt)");
    println!();
    for f in frames {
        println!(
            "step {:3} | {:4} leaves | mass {:.12} | peak {:.3}",
            f.step, f.leaves, f.mass, f.peak
        );
        println!("{}", f.picture);
    }
    println!(
        "OK: mass drift {:.2e} over {STEPS} steps with adaptation, migration and recovery",
        (mass_end - mass0).abs() / mass0
    );
}
