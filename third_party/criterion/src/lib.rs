//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in fully offline environments, so the external
//! `criterion` dependency is replaced by this local timing harness
//! implementing the subset the workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `Throughput::Elements`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs one untimed warmup iteration,
//! then `sample_size` timed iterations, and reports the median and best
//! per-iteration time (plus element throughput when declared). There is
//! no statistical analysis, HTML report, or baseline comparison.
//! Benchmark name filters passed on the command line (`cargo bench --
//! substring`) are honored.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // honor `cargo bench -- <filter>`; flags (--bench etc.) are not
        // name filters
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id.to_string(), sample_size, None, f);
        self
    }

    fn run_one<F>(
        &self,
        full_name: &str,
        sample_size: usize,
        throughput: Option<&Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        match throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let rate = *n as f64 / median.as_secs_f64();
                println!(
                    "{full_name:<60} median {median:>12?}  best {best:>12?}  {rate:>14.0} elem/s"
                );
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let rate = *n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                println!(
                    "{full_name:<60} median {median:>12?}  best {best:>12?}  {rate:>11.1} MiB/s"
                );
            }
            _ => println!("{full_name:<60} median {median:>12?}  best {best:>12?}"),
        }
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    harness: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declare work-per-iteration so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Ignored (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let n = self.sample_size.unwrap_or(self.harness.default_sample_size);
        self.harness.run_one(&full, n, self.throughput.as_ref(), f);
        self
    }

    /// Run one benchmark with an explicit input (the input is simply
    /// passed through to the closure).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timed iterations of one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` once untimed (warmup), then `sample_size` timed
    /// times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A benchmark name, optionally parameterized (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A parameterized id, displayed `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Declared work per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 7), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        // warmup + 2 samples
        assert_eq!(ran, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let c = Criterion {
            filter: Some("match-me".into()),
            default_sample_size: 3,
        };
        let mut ran = false;
        c.run_one("other-name", 3, None, |b| b.iter(|| ran = true));
        assert!(!ran);
        c.run_one("has-match-me-inside", 3, None, |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
