//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! This workspace builds in fully offline environments, so the external
//! `bytes` dependency is replaced by this local implementation of the
//! small API subset the workspace actually uses: little-endian
//! put/get helpers on growable buffers ([`BytesMut`] / [`BufMut`]) and
//! cursor-style reads from byte slices ([`Buf`]), plus the frozen
//! [`Bytes`] handle. Semantics match the real crate for this subset;
//! `get_*` panics when the source has too few bytes remaining, exactly
//! like upstream.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

/// Growable byte buffer with little-endian append helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; implemented for `&[u8]`, which
/// advances through the slice as values are read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append sink with little-endian write helpers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i32_le(-42);
        b.put_u64_le(u64::MAX - 1);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 21);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2, 3];
        let _ = r.get_u32_le();
    }
}
