//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in fully offline environments, so the external
//! `proptest` dependency is replaced by this local implementation of the
//! API subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! * range strategies (`0..n`, `0..=n`) for the integer types,
//! * tuple strategies, [`strategy::Just`], [`arbitrary::any`],
//!   [`collection::vec`] and [`sample::select`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros,
//! * [`test_runner::Config`] (aliased `ProptestConfig` in the prelude).
//!
//! Differences from the real crate: case generation is a deterministic
//! seeded PRNG (seed derived from the test's module path, overridable
//! with the `PROPTEST_SEED` environment variable) and there is **no
//! shrinking** — a failing case panics with the generated inputs printed
//! so it can be minimized by hand. `*.proptest-regressions` files are
//! ignored.

/// Deterministic PRNG and per-test configuration.
pub mod test_runner {
    /// splitmix64 — small, fast, deterministic; good enough for test
    /// case generation.
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        /// Seed directly.
        pub fn from_seed(seed: u64) -> Self {
            Rng(seed)
        }

        /// Derive a per-test seed from the test path, or from the
        /// `PROPTEST_SEED` environment variable when set.
        pub fn for_test(test_path: &str) -> Self {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.trim().parse::<u64>() {
                    return Rng(seed ^ fnv1a(test_path.as_bytes()));
                }
            }
            Rng(fnv1a(test_path.as_bytes()))
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // 128-bit multiply-shift: unbiased enough for test generation
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform in `[0, bound)` as `usize`.
        pub fn index(&mut self, bound: usize) -> usize {
            self.below(bound as u64) as usize
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Per-test configuration (the `ProptestConfig` of the real crate).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking; a
    /// strategy is just a deterministic function of the PRNG state.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut Rng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        variants: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// Build from boxed alternatives; must be non-empty.
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs alternatives");
            Union { variants }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let i = rng.index(self.variants.len());
            self.variants[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // widen to i128 so the span is exact for any signed
                    // or unsigned endpoint combination
                    let span = ((self.end as i128) - (self.start as i128)) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as i128) - (lo as i128)) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

/// `any::<T>()` — the canonical full-domain strategy per type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary: Sized + Debug {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact `usize`, `a..b`, or
    /// `a..=b`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.size.min + rng.index(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::fmt::Debug;

    /// Strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items with outer attributes
/// (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::test_runner::Config as ::std::default::Default>::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::Rng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body; Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(32) + 1024,
                            "{}: too many prop_assume! rejections ({} for {} accepted cases)",
                            stringify!($name), rejected, accepted,
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name), accepted, msg, inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform choice between strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Reject the current case (retried with fresh inputs, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::from_seed(42);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-1i32..=1), &mut rng);
            assert!((-1..=1).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = crate::test_runner::Rng::from_seed(seed);
            (0..16)
                .map(|_| Strategy::generate(&(0u64..1 << 40), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in 0u64..1000, v in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 1000);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x != 999); // exercises the reject path
        }

        #[test]
        fn oneof_and_maps(step in prop_oneof![
            (0u32..4).prop_map(|c| (0u8, c)),
            Just((1u8, 0u32)),
        ]) {
            prop_assert!(step.0 <= 1);
            prop_assert!(step.1 < 4);
        }
    }
}
