//! Cross-crate integration tests: full AMR workflows spanning
//! quadforest-core, -connectivity, -comm, -forest and -vtk, exercised
//! under every quadrant representation and multiple simulated rank
//! counts.

use quadforest::prelude::*;
use std::sync::Arc;

/// The canonical pipeline fingerprint: create → refine → balance →
/// partition → ghost → iterate, reduced to a global checksum that
/// covers leaf positions, levels, ghost count and interface counts.
fn pipeline_fingerprint<Q: Quadrant>(ranks: usize, conn_builder: fn() -> Connectivity) -> u64 {
    let sums = quadforest::comm::run(ranks, move |comm| {
        let conn = Arc::new(conn_builder());
        let mut f = Forest::<Q>::new_uniform(conn, &comm, 2);
        let center = [Q::len_at(0) / 3, Q::len_at(0) / 2, Q::len_at(0) / 2];
        f.refine(&comm, true, |t, q| {
            t == 0 && q.level() < 5 && q.contains_point(center)
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        f.validate().unwrap();
        let ghost = f.ghost(&comm, BalanceKind::Face);
        // Rank-count-invariant interface fingerprint: each *local* side
        // incidence (leaf, face) participates in exactly one emitted
        // interface on its owning rank, regardless of P (straddling
        // interfaces are emitted on every touching rank, with the other
        // rank's sides marked as ghosts — so summing only non-ghost
        // sides makes the global total invariant).
        let hash_side = |s: &FaceSide<Q>| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let c = s.quad.coords();
            for w in [
                s.tree as u64,
                c[0] as u64,
                c[1] as u64,
                c[2] as u64,
                s.quad.level() as u64,
                s.face as u64,
            ] {
                h ^= w;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h
        };
        let mut iface_local: u64 = 0;
        iterate_faces(&f, &ghost, |iface| match iface {
            Interface::Boundary(s) => iface_local = iface_local.wrapping_add(hash_side(&s)),
            Interface::Interior(p, others) => {
                for s in others.iter().chain([&p]) {
                    if !s.is_ghost {
                        iface_local = iface_local.wrapping_add(hash_side(s));
                    }
                }
            }
        });
        let iface_sum = comm.allreduce(iface_local, |a, b| a.wrapping_add(*b));
        f.checksum(&comm) ^ iface_sum
    });
    assert!(sums.iter().all(|s| *s == sums[0]));
    sums[0]
}

#[test]
fn pipeline_identical_across_representations_2d() {
    let conn = || Connectivity::unit(2);
    let a = pipeline_fingerprint::<Standard2>(2, conn);
    let b = pipeline_fingerprint::<Morton2>(2, conn);
    let c = pipeline_fingerprint::<Avx2d>(2, conn);
    let d = pipeline_fingerprint::<Morton128x2>(2, conn);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a, d);
}

#[test]
fn pipeline_identical_across_representations_3d() {
    let conn = || Connectivity::unit(3);
    let a = pipeline_fingerprint::<Standard3>(2, conn);
    let b = pipeline_fingerprint::<Morton3>(2, conn);
    let c = pipeline_fingerprint::<Avx3d>(2, conn);
    let d = pipeline_fingerprint::<Morton128x3>(2, conn);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a, d);
}

#[test]
fn pipeline_rank_count_invariant() {
    let conn = || Connectivity::brick2d(2, 1, false, false);
    let serial = pipeline_fingerprint::<Morton2>(1, conn);
    for p in [2, 3, 5, 8] {
        assert_eq!(
            pipeline_fingerprint::<Morton2>(p, conn),
            serial,
            "P = {p} must reproduce the serial mesh"
        );
    }
}

#[test]
fn pipeline_on_periodic_and_rotated_connectivities() {
    // the full pipeline must run and validate on non-trivial topologies
    let _ = pipeline_fingerprint::<Standard2>(2, || Connectivity::periodic(2));
    let _ = pipeline_fingerprint::<Standard2>(2, Connectivity::two_trees_rotated_2d);
    let _ = pipeline_fingerprint::<Standard2>(2, || Connectivity::two_trees_2d(1));
}

#[test]
fn periodic_topology_has_no_boundary_faces() {
    let counts = |builder: fn() -> Connectivity| {
        quadforest::comm::run(1, move |comm| {
            let conn = Arc::new(builder());
            let f = Forest::<Standard2>::new_uniform(conn, &comm, 3);
            let ghost = GhostLayer::default();
            let (mut boundary, mut interior) = (0u64, 0u64);
            iterate_faces(&f, &ghost, |iface| match iface {
                Interface::Boundary(_) => boundary += 1,
                Interface::Interior(_, _) => interior += 1,
            });
            (boundary, interior)
        })[0]
    };
    let (b_unit, i_unit) = counts(|| Connectivity::unit(2));
    let (b_per, i_per) = counts(|| Connectivity::periodic(2));
    assert_eq!(b_unit, 4 * 8, "8x8 grid: 32 boundary faces");
    assert_eq!(b_per, 0, "periodic domain has no boundary");
    // the wrapped faces turn into interior interfaces
    assert_eq!(i_per, i_unit + b_unit / 2);
}

#[test]
fn balance_across_rotated_tree_connection() {
    quadforest::comm::run(1, |comm| {
        let conn = Arc::new(Connectivity::two_trees_rotated_2d());
        let mut f = Forest::<Standard2>::new_uniform(conn, &comm, 1);
        // refine tree 0 against its +x face (which meets tree 1's -y
        // face rotated): the ripple must arrive in tree 1 near y = 0
        let root = Standard2::len_at(0);
        f.refine(&comm, true, |t, q| {
            t == 0 && q.level() < 6 && q.coords()[0] + q.side() == root && q.coords()[1] == 0
        });
        f.balance(&comm, BalanceKind::Face);
        f.is_balanced_local(BalanceKind::Face).unwrap();
        let max_in_1 = f
            .tree_leaves(1)
            .iter()
            .filter(|q| q.coords()[1] == 0)
            .map(|q| q.level())
            .max()
            .unwrap();
        assert!(
            max_in_1 >= 4,
            "balance must propagate through the rotated connection, got level {max_in_1}"
        );
    });
}

#[test]
fn ghost_and_iterate_agree_on_hanging_faces() {
    // Every hanging interface seen via ghosts on one rank must have its
    // counterpart leaves actually present in the other rank's forest.
    quadforest::comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Morton2>::new_uniform(conn, &comm, 2);
        let center = [Morton2::len_at(0) / 2, Morton2::len_at(0) / 2, 0];
        f.refine(&comm, true, |_, q| {
            q.level() < 4 && q.contains_point(center)
        });
        f.balance(&comm, BalanceKind::Face);
        let ghost = f.ghost(&comm, BalanceKind::Face);
        // collect all leaves globally for cross-checking
        let all: Vec<(u32, [i32; 3], u8)> = comm
            .allgather(
                f.leaves()
                    .map(|(t, q)| (t, q.coords(), q.level()))
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .flatten()
            .collect();
        iterate_faces(&f, &ghost, |iface| {
            if let Interface::Interior(p, others) = iface {
                for side in others.iter().chain([&p]) {
                    assert!(
                        all.contains(&(side.tree, side.quad.coords(), side.quad.level())),
                        "iterated side {side:?} is not a real leaf anywhere"
                    );
                }
            }
        });
    });
}

#[test]
fn vtk_output_from_distributed_forest() {
    quadforest::comm::run(3, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Avx2d>::new_uniform(conn, &comm, 2);
        f.refine(&comm, false, |_, q| q.morton_index() % 4 == 0);
        let mut buf = Vec::new();
        quadforest::vtk::write_local(&f, &mut buf, &Default::default()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains(&format!("CELL_DATA {}", f.local_count())));
        // leaves of all three ranks together tile the square exactly
        let area: u64 = comm.allreduce_sum(
            f.leaves()
                .map(|(_, q)| {
                    let h = q.side() as u64;
                    h * h
                })
                .sum::<u64>(),
        );
        let root = Avx2d::len_at(0) as u64;
        assert_eq!(area, root * root);
    });
}

#[test]
fn coarsen_refine_roundtrip_distributed() {
    quadforest::comm::run(4, |comm| {
        let conn = Arc::new(Connectivity::unit(3));
        let mut f = Forest::<Morton3>::new_uniform(conn, &comm, 2);
        let before = f.checksum(&comm);
        f.refine(&comm, false, |_, _| true);
        // partition so families land within single ranks, then coarsen
        f.partition(&comm);
        f.coarsen(&comm, false, |_, _| true);
        // after coarsening everything back, the mesh is the original
        assert_eq!(f.checksum(&comm), before);
        assert_eq!(f.validate(), Ok(()));
    });
}

#[test]
fn search_and_ghost_compose() {
    quadforest::comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Standard2>::new_uniform(conn, &comm, 3);
        f.refine(&comm, false, |_, q| q.morton_index() % 7 == 0);
        // every local leaf must be findable by its own center point
        for (t, q) in f.leaves() {
            let c = q.coords();
            let h = q.side();
            let p = [c[0] + h / 2, c[1] + h / 2, 0];
            assert_eq!(f.find_leaf_containing(t, p), Some(q));
        }
        // count leaves via search and compare
        let mut counted = 0;
        f.search(|_, _, _, is_leaf| {
            if is_leaf {
                counted += 1;
            }
            SearchAction::Continue
        });
        assert_eq!(counted, f.local_count());
    });
}

/// The paper's other interface goal, implemented here as an extension:
/// a *different space-filling curve* under the same trait. The whole
/// pipeline must run in Hilbert order, and because 2:1 balance is a
/// geometric closure, the final *mesh* (the leaf set) must be identical
/// to the Morton-ordered runs — only the ordering and the partition
/// boundaries may differ.
#[test]
fn hilbert_curve_drives_the_same_pipeline() {
    fn mesh_set<Q: Quadrant>(ranks: usize) -> Vec<(u32, [i32; 3], u8)> {
        let gathered = quadforest::comm::run(ranks, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q>::new_uniform(conn, &comm, 2);
            let center = [Q::len_at(0) / 2, Q::len_at(0) / 2, 0];
            f.refine(&comm, true, |_, q| {
                q.level() < 5 && q.contains_point(center)
            });
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            f.validate().unwrap();
            // exercise ghost + iterate in Hilbert order as well
            let ghost = f.ghost(&comm, BalanceKind::Face);
            let mut faces = 0u64;
            iterate_faces(&f, &ghost, |_| faces += 1);
            assert!(comm.size() == 1 || !ghost.is_empty() || f.local_count() == 0);
            f.leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect::<Vec<_>>()
        });
        let mut all: Vec<_> = gathered.into_iter().flatten().collect();
        all.sort();
        all
    }
    let morton = mesh_set::<Morton2>(3);
    let hilbert = mesh_set::<HilbertQuad>(3);
    assert_eq!(morton, hilbert, "balanced meshes must agree across curves");
    // rank-count invariance holds per curve as well
    assert_eq!(mesh_set::<HilbertQuad>(1), hilbert);
    assert_eq!(mesh_set::<HilbertQuad>(5), hilbert);
}

/// Hilbert partitions have (asymptotically) better locality: each
/// rank's chunk of the curve is face-connected far more often. Check a
/// weak form: the Hilbert partition never produces more disconnected
/// rank fragments than Morton on a uniform grid.
#[test]
fn hilbert_partition_locality() {
    fn fragments<Q: Quadrant>() -> usize {
        quadforest::comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q>::new_uniform(conn, &comm, 4);
            // count connected components of the local leaf set under
            // face adjacency (brute force union-find)
            let leaves: Vec<Q> = f.leaves().map(|(_, q)| *q).collect();
            let mut parent: Vec<usize> = (0..leaves.len()).collect();
            fn find(p: &mut Vec<usize>, i: usize) -> usize {
                if p[i] != i {
                    let r = find(p, p[i]);
                    p[i] = r;
                }
                p[i]
            }
            for (i, a) in leaves.iter().enumerate() {
                for (j, b) in leaves.iter().enumerate().skip(i + 1) {
                    let da = a.coords();
                    let db = b.coords();
                    let h = a.side();
                    let touch = ((da[0] - db[0]).abs() == h && da[1] == db[1])
                        || ((da[1] - db[1]).abs() == h && da[0] == db[0]);
                    if touch {
                        let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                        parent[ra] = rb;
                    }
                }
            }
            (0..leaves.len())
                .filter(|&i| find(&mut parent, i) == i)
                .count()
        })
        .into_iter()
        .sum()
    }
    let hilbert = fragments::<HilbertQuad>();
    let morton = fragments::<Morton2>();
    assert!(
        hilbert <= morton,
        "hilbert fragments ({hilbert}) must not exceed morton's ({morton})"
    );
    // each of the 4 ranks' Hilbert chunk of a uniform grid is connected
    assert_eq!(hilbert, 4, "Hilbert rank chunks must be connected");
}

#[test]
fn balance_across_rotated_flipped_3d_connection() {
    // The fully general 3D face identification (axis permutation plus a
    // reflection): refinement pressed against tree 0's +x face must
    // ripple into tree 1 through its -y face, landing at the *flipped*
    // z position.
    quadforest::comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::two_trees_rotated_3d());
        let mut f = Forest::<Standard3>::new_uniform(conn, &comm, 1);
        let root = Standard3::len_at(0);
        // refine a column hugging (x = root, y = 0, z = 0) in tree 0
        f.refine(&comm, true, |t, q| {
            t == 0
                && q.level() < 5
                && q.coords()[0] + q.side() == root
                && q.coords()[1] == 0
                && q.coords()[2] == 0
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        f.validate().unwrap();
        // tree 1 must be refined near (x = 0, y = 0, z = root): the image
        // of the refined column under the transform (z flipped!)
        let all = f.gather_all(&comm);
        let deep_near_image = all
            .iter()
            .filter(|(t, q)| *t == 1 && q.coords()[1] == 0 && q.coords()[2] + q.side() == root)
            .map(|(_, q)| q.level())
            .max()
            .unwrap();
        assert!(
            deep_near_image >= 3,
            "ripple must arrive at the flipped image, got level {deep_near_image}"
        );
        // the un-flipped position must stay coarse
        let coarse_side = all
            .iter()
            .filter(|(t, q)| *t == 1 && q.coords()[1] == 0 && q.coords()[2] == 0)
            .map(|(_, q)| q.level())
            .max()
            .unwrap();
        assert!(
            coarse_side < deep_near_image,
            "refinement must concentrate at the flipped image ({coarse_side} vs {deep_near_image})"
        );
    });
}

#[test]
fn brick3d_periodic_full_pipeline() {
    // 3D, multiple trees, periodic in one axis: the most topologically
    // loaded configuration we model — full pipeline plus node counting.
    quadforest::comm::run(3, |comm| {
        let conn = Arc::new(Connectivity::brick3d(2, 1, 1, [true, false, false]));
        let mut f = Forest::<Morton3>::new_uniform(conn, &comm, 1);
        let center = [Morton3::len_at(0) / 2; 3];
        f.refine(&comm, true, |t, q| {
            t == 0 && q.level() < 3 && q.contains_point(center)
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        f.validate().unwrap();
        f.is_balanced_local(BalanceKind::Face).unwrap();
        let stats = f.stats(&comm);
        assert_eq!(stats.global_count, f.global_count());
        assert!(stats.max_level >= 3);
        assert!(stats.min_level <= 2);
        assert_eq!(
            stats.level_histogram.iter().sum::<u64>(),
            stats.global_count
        );
        // periodic wrap must connect tree 1's far +x side back to tree 0:
        // a leaf at tree 1's +x face has a neighbor domain in tree 0
        let root = Morton3::len_at(0);
        let far = f
            .tree_leaves(1)
            .iter()
            .find(|q| q.coords()[0] + q.side() == root)
            .copied();
        if let Some(q) = far {
            let dom =
                quadforest::forest::directions::neighbor_domain(f.connectivity(), 1, &q, [1, 0, 0])
                    .expect("periodic wrap must resolve");
            assert_eq!(dom.tree, 0);
            assert_eq!(dom.coords[0], 0);
        }
        // node numbering on the balanced periodic mesh is consistent
        let ghost = f.ghost(&comm, BalanceKind::Full);
        let nodes = f.nodes(&comm, &ghost);
        assert_eq!(comm.allreduce_sum(nodes.owned_count), nodes.global_count);
    });
}

#[test]
fn stats_report_shape() {
    quadforest::comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Standard2>::new_uniform(conn, &comm, 2);
        f.refine(&comm, false, |_, q| q.morton_index() == 0);
        let s = f.stats(&comm);
        assert_eq!(s.global_count, 16 + 3);
        assert_eq!(s.min_level, 2);
        assert_eq!(s.max_level, 3);
        assert_eq!(s.level_histogram[2], 15);
        assert_eq!(s.level_histogram[3], 4);
        assert!(s.min_local <= s.max_local);
    });
}

#[test]
fn stress_many_ranks_small_forest() {
    // 64 ranks sharing 64 leaves: one each after partition.
    quadforest::comm::run(64, |comm| {
        let conn = Arc::new(Connectivity::unit(3));
        let mut f = Forest::<Morton3>::new_uniform(conn, &comm, 2);
        f.partition(&comm);
        assert_eq!(f.local_count(), 1);
        let ghost = f.ghost(&comm, BalanceKind::Face);
        // each rank's single octant has at least 3 face neighbors
        assert!(ghost.len() >= 3, "got {} ghosts", ghost.len());
        f.validate().unwrap();
    });
}
