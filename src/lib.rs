//! # quadforest
//!
//! Forest-of-octrees adaptive mesh refinement with interchangeable
//! low-level quadrant representations — a from-scratch Rust reproduction
//! of *"Alternative Quadrant Representations with Morton Index and AVX2
//! Vectorization for AMR Algorithms within the p4est Software Library"*
//! (Kirilin & Burstedde, IPPS 2024).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — the paper's contribution: the virtual [`Quadrant`](core::quadrant::Quadrant)
//!   interface and its four implementations (standard xyz+level, raw
//!   Morton `u64`, 128-bit SIMD/AVX2, and the future-work 128-bit
//!   Morton), with every low-level algorithm of Sections 2.1–2.3;
//! * [`connectivity`] — inter-tree topology and coordinate transforms;
//! * [`comm`] — the simulated-MPI communicator;
//! * [`forest`] — the distributed AMR workflow (create, refine, coarsen,
//!   2:1 balance, partition, ghost layers, iterate, search);
//! * [`telemetry`] — the zero-dependency observability layer: phase
//!   spans, per-rank metrics, and Chrome-trace/Perfetto export;
//! * [`query`] — the concurrent spatial query engine: immutable
//!   [`ForestSnapshot`](query::ForestSnapshot)s published through a
//!   lock-free [`SnapshotHandle`](query::SnapshotHandle), point/box
//!   queries via Morton interval decomposition, and a multithreaded
//!   [`QueryExecutor`](query::QueryExecutor);
//! * [`pde`] — the data-bearing application layer: fixed `N × N` cell
//!   patches per leaf ([`Patch`](pde::Patch)), conservative
//!   refine/coarsen mapping, and a patch-based donor-cell advection
//!   solver ([`AdvectionSim`](pde::AdvectionSim)) with halo exchange,
//!   payload migration, and checkpointed recovery;
//! * [`vtk`] — mesh output for ParaView/VisIt;
//! * [`bench`] — the harness regenerating the paper's figures and tables.
//!
//! ## Quickstart
//!
//! ```
//! use quadforest::prelude::*;
//! use std::sync::Arc;
//!
//! // 4 simulated MPI ranks over a unit cube, raw-Morton octants.
//! let leaf_counts = quadforest::comm::run(4, |comm| {
//!     let conn = Arc::new(Connectivity::unit(3));
//!     let mut forest = Forest::<Morton3>::new_uniform(conn, &comm, 2);
//!     forest.refine(&comm, true, |_, q| q.level() < 3 && q.morton_index() == 0);
//!     forest.balance(&comm, BalanceKind::Face);
//!     forest.partition(&comm);
//!     forest.local_count()
//! });
//! assert_eq!(leaf_counts.len(), 4);
//! ```

pub use quadforest_bench as bench;
pub use quadforest_comm as comm;
pub use quadforest_connectivity as connectivity;
pub use quadforest_core as core;
pub use quadforest_forest as forest;
pub use quadforest_pde as pde;
pub use quadforest_query as query;
pub use quadforest_telemetry as telemetry;
pub use quadforest_vtk as vtk;

/// The commonly used names in one import.
pub mod prelude {
    pub use quadforest_comm::{
        run_with_recovery, Attempt, Comm, FaultPlan, RecoveryError, RecoveryOptions,
        RecoveryOutcome, RecoveryPolicy,
    };
    pub use quadforest_connectivity::{Connectivity, FaceConnection, FaceTransform, TreeId};
    pub use quadforest_core::quadrant::{
        convert, AvxQuad, HilbertQuad, Morton128Quad, MortonQuad, Quadrant, StandardQuad,
    };
    pub use quadforest_core::quadrant::{
        Avx2d, Avx3d, Morton128x2, Morton128x3, Morton2, Morton3, Standard2, Standard3,
    };
    pub use quadforest_forest::{
        iterate_faces, BalanceKind, CheckpointInfo, CheckpointManifest, DataMapper, FaceSide,
        Forest, ForestStats, GhostLayer, Interface, InvariantError, IoError, LeafData, LeafRef,
        LocalNodes, Mesh, MeshNeighbor, NodeRef, PortableForest, SearchAction,
    };
    pub use quadforest_pde::{
        gaussian_blob, AdaptReport, AdaptThresholds, AdvectionSim, Patch, PatchHalo, PatchMapper,
        PATCH_N,
    };
    pub use quadforest_query::{BoxQuery, ForestSnapshot, LeafHit, QueryExecutor, SnapshotHandle};
}
