#!/usr/bin/env python3
"""Field-sanity gate for BENCH_pde.json (written by `repro --pde`).

Usage: check_bench_pde.py <path> <expected-backend>

Asserts the file is well-formed JSON with the expected provenance
fields, carries one row per rank count P in {1, 2, 4}, and that every
row reports a positive cell-update throughput, a non-negative migration
byte count (strictly positive once P > 1 — repartitioning must actually
move payload), and a mass drift at machine precision. The drift check
makes the bench double as a conservation gate on whichever transport
backend produced the file.
"""

import json
import sys

path, expected_backend = sys.argv[1], sys.argv[2]
d = json.load(open(path))

assert d["bench"] == "pde", f"{path}: bench field is {d['bench']!r}"
assert d["backend"] == expected_backend, (
    f"{path}: measured on {d['backend']!r}, expected {expected_backend!r}"
)
assert d["features"], f"{path}: missing detected-features field"

rows = {r["op"]: r for r in d["results"]}
expected_ops = {"advection_p1", "advection_p2", "advection_p4"}
assert set(rows) == expected_ops, f"{path}: ops {set(rows)} != {expected_ops}"

for op, r in sorted(rows.items()):
    assert r["representation"] == "morton", f"{op}: representation {r['representation']!r}"
    assert r["n"] > 0, f"{op}: no cell updates counted"
    assert r["ns_per_elem"]["wall"] > 0, f"{op}: non-positive wall time"
    cps = r["cells_per_sec"]
    assert cps > 0, f"{op}: non-positive throughput {cps}"
    migrated = r["migrated_bytes"]
    assert migrated >= 0, f"{op}: negative migration bytes"
    if op != "advection_p1":
        assert migrated > 0, f"{op}: repartitioning moved no payload"
        # patches ship whole: the byte count is a multiple of one
        # 8x8 f64 patch on the wire
        assert migrated % 512 == 0, f"{op}: {migrated} not a multiple of 512"
    drift = r["mass_drift"]
    assert 0 <= drift < 1e-12, f"{op}: mass drift {drift} above machine precision"

print(
    f"{path} OK ({expected_backend}):",
    {op: f"{rows[op]['cells_per_sec'] / 1e6:.1f} Mcells/s" for op in sorted(rows)},
)
