//! Backend-parameterized rank programs for the chaos and recovery
//! suites.
//!
//! The socket transport runs each rank in a child process, which cannot
//! inherit a test's closures — programs must be plain `fn` items looked
//! up by name in a [`ProgramRegistry`] that both the supervisor and the
//! spawned workers construct identically. This module is that shared
//! registry: the `repro` binary calls
//! [`maybe_run_socket_child`](quadforest_comm::maybe_run_socket_child)
//! with it first thing in `main`, so `repro` doubles as the worker
//! executable for every socket-backend run (tests locate it via
//! `env!("CARGO_BIN_EXE_repro")`, `repro --backend sockets` via
//! `std::env::current_exe()`).
//!
//! The same registry runs unchanged on the thread backend through
//! [`try_run_program`](quadforest_comm::try_run_program) — one
//! parameterized harness, two transports, identical digests.

use quadforest_comm::{Attempt, Comm, CommError, ProgramCtx, ProgramRegistry};
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant};
use quadforest_core::Wire;
use quadforest_forest::{BalanceKind, Forest};
use std::path::Path;
use std::sync::Arc;

/// Name of the fault-injected AMR pipeline program (the chaos suite).
pub const CHAOS_PIPELINE: &str = "chaos-pipeline";
/// Name of the checkpointed AMR program driven by the recovery
/// supervisor (the kill-point suite).
pub const RECOVERY_PIPELINE: &str = "recovery-pipeline";
/// Name of the data-bearing advection benchmark program (`repro --pde`).
pub const PDE_ADVECTION: &str = "pde-advection";

/// The registry shared by supervisors, workers, and tests. Both sides
/// of a socket world MUST build it from this one function — a worker
/// with a different table would fail program lookup at startup.
pub fn registry() -> ProgramRegistry {
    ProgramRegistry::new()
        .register(CHAOS_PIPELINE, chaos_pipeline)
        .register(RECOVERY_PIPELINE, recovery_pipeline)
        .register(PDE_ADVECTION, pde_advection)
}

/// Collective digest of one pipeline run: `(forest checksum, global
/// ghost count)`. Identical on every rank.
pub type PipelineDigest = (u64, u64);

/// Everything needed to call two forests "leaf-identical": the marker
/// array, every local leaf as `(tree, anchor, level)`, the ghost-layer
/// size, and the collective checksum.
pub type RankView = (Vec<(u32, u64)>, Vec<(u32, [i32; 3], u8)>, u64, u64);

/// The refine→balance→partition→ghost pipeline under test — the exact
/// shape of `repro --chaos`, shared so the both-backend parity tests
/// and the CLI measure the same thing.
pub fn pipeline(comm: &Comm) -> PipelineDigest {
    let conn = Arc::new(Connectivity::unit(2));
    let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, comm, 2);
    f.refine(comm, true, |_, q| {
        let c = q.coords();
        q.level() < 6 && c[0] == 0 && c[1] == 0
    });
    f.balance(comm, BalanceKind::Face);
    f.partition(comm);
    let ghost = f.ghost(comm, BalanceKind::Face);
    f.validate().expect("invariants must hold under chaos");
    (f.checksum(comm), comm.allreduce_sum(ghost.len() as u64))
}

fn chaos_pipeline(comm: &Comm, _ctx: &ProgramCtx) -> Result<Vec<u8>, CommError> {
    Ok(pipeline(comm).to_wire())
}

/// Rank-independent refine selector (callbacks must not depend on the
/// rank, as in MPI practice).
fn mix(seed: u64, t: u32, q_pos: u64, level: u8) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [t as u64, q_pos, level as u64] {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

/// The checkpointed AMR program. First attempt: build, refine, save a
/// checkpoint, then run the expensive phases. Retry: restore from the
/// newest valid generation (falling back to a fresh start if no
/// checkpoint committed before the death) and replay from there.
pub fn recovery_program(comm: &Comm, attempt: Attempt, dir: &Path, seed: u64) -> RankView {
    let conn = Arc::new(Connectivity::unit(2));
    let restored = if attempt.is_retry() {
        Forest::<MortonQuad<2>>::load_checkpoint(conn.clone(), comm, dir).ok()
    } else {
        None
    };
    let mut f = match restored {
        Some((f, _generation)) => f,
        None => {
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, comm, 1);
            f.refine(comm, false, |t, q| {
                q.level() < 5 && mix(seed, t, q.morton_abs(), q.level()).is_multiple_of(3)
            });
            f.save_checkpoint(comm, dir).expect("checkpoint save");
            f
        }
    };
    f.refine(comm, false, |t, q| {
        q.level() < 5 && mix(seed ^ 0xABCD, t, q.morton_abs(), q.level()).is_multiple_of(4)
    });
    f.balance(comm, BalanceKind::Face);
    f.partition(comm);
    let ghost = f.ghost(comm, BalanceKind::Face);
    f.validate().expect("invariants must hold");
    (
        f.markers().to_vec(),
        f.leaves()
            .map(|(t, q)| (t, q.coords(), q.level()))
            .collect(),
        ghost.ghosts.len() as u64,
        f.checksum(comm),
    )
}

/// Wire-encode the `recovery-pipeline` arguments.
pub fn recovery_args(dir: &Path, seed: u64) -> Vec<u8> {
    (dir.display().to_string(), seed).to_wire()
}

fn recovery_pipeline(comm: &Comm, ctx: &ProgramCtx) -> Result<Vec<u8>, CommError> {
    let (dir, seed) = <(String, u64)>::from_wire(&ctx.args).map_err(|e| CommError::Frame {
        detail: format!("recovery-pipeline args: {e}"),
    })?;
    Ok(recovery_program(comm, ctx.attempt, Path::new(&dir), seed).to_wire())
}

/// One advection benchmark measurement: total cell updates performed,
/// payload bytes shipped by repartitioning, relative mass drift, and
/// the collective mesh+payload digest. Identical on every rank except
/// for nothing — all four entries are collective values.
pub type PdeView = (u64, u64, f64, u64);

/// The data-bearing advection loop measured by `repro --pde`: step the
/// patch-based solver, adapt + repartition (payload riding the
/// partition all-to-all) on a fixed cadence, and report collective
/// throughput/migration/conservation numbers. Shared by both transport
/// backends so a threads-vs-sockets BENCH_pde.json compares the exact
/// same computation.
pub fn advection_program(
    comm: &Comm,
    steps: u64,
    base_level: u8,
    max_level: u8,
    adapt_every: u64,
) -> PdeView {
    use quadforest_pde::{gaussian_blob, AdaptThresholds, AdvectionSim, PATCH_CELLS};
    let conn = Arc::new(Connectivity::periodic(2));
    let mut sim = AdvectionSim::<MortonQuad<2>>::new(
        conn,
        comm,
        base_level,
        max_level,
        [1.0, 0.5],
        gaussian_blob,
    );
    let mass0 = sim.total_mass(comm);
    let mut cells = 0u64;
    let mut migrated = 0u64;
    while sim.steps_taken < steps {
        let dt = sim.cfl_dt(comm, 0.45);
        sim.step(comm, dt);
        cells += sim.forest.global_count() * PATCH_CELLS as u64;
        if sim.steps_taken.is_multiple_of(adapt_every) {
            sim.adapt(comm, AdaptThresholds::default());
            migrated += comm.allreduce_sum(sim.migrate(comm));
        }
    }
    let drift = (sim.total_mass(comm) - mass0).abs() / mass0;
    (cells, migrated, drift, sim.state_digest(comm))
}

/// Wire-encode the `pde-advection` arguments.
pub fn pde_args(steps: u64, base_level: u8, max_level: u8, adapt_every: u64) -> Vec<u8> {
    (steps, base_level as u64, max_level as u64, adapt_every).to_wire()
}

fn pde_advection(comm: &Comm, ctx: &ProgramCtx) -> Result<Vec<u8>, CommError> {
    let (steps, base, max, adapt_every) =
        <(u64, u64, u64, u64)>::from_wire(&ctx.args).map_err(|e| CommError::Frame {
            detail: format!("pde-advection args: {e}"),
        })?;
    Ok(advection_program(comm, steps, base as u8, max as u8, adapt_every).to_wire())
}

/// Decode a program's per-rank result bytes as a [`PdeView`].
pub fn decode_pde(bytes: &[u8]) -> PdeView {
    PdeView::from_wire(bytes).expect("pde-advection result bytes")
}

/// Decode a program's per-rank result bytes as a [`PipelineDigest`].
pub fn decode_digest(bytes: &[u8]) -> PipelineDigest {
    PipelineDigest::from_wire(bytes).expect("chaos-pipeline result bytes")
}

/// Decode a program's per-rank result bytes as a [`RankView`].
pub fn decode_view(bytes: &[u8]) -> RankView {
    RankView::from_wire(bytes).expect("recovery-pipeline result bytes")
}
