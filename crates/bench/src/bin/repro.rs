//! `repro` — regenerate the paper's evaluation tables on this machine.
//!
//! ```text
//! repro --all                 # figures 2-7 + memory + autovec
//! repro --fig 4               # one figure
//! repro --mem --level 8       # Section 3.2 memory experiment
//! repro --autovec             # contribution 5
//! repro --chaos               # fault-injected forest pipeline
//! repro --checkpoint ckpt/    # checkpoint-format smoke: write, corrupt, fall back
//! repro --json                # machine-readable perf baseline
//! repro --trace trace.json    # traced 4-rank pipeline (Chrome trace)
//! repro --queries             # snapshot query serving (BENCH_query.json)
//! repro --chaos --backend sockets   # every rank a real OS process
//! repro --summary a.json,b.json     # compare BENCH files (same backend only)
//! repro --iters 5 --ranks 1,4,64,512
//! ```
//!
//! Output is a set of markdown tables (paper-style), suitable for
//! pasting into EXPERIMENTS.md. `--json` additionally writes
//! `BENCH_batch.json` (scalar vs runtime-dispatched SIMD for every SoA
//! batch kernel) and `BENCH_highlevel.json` (keyed vs comparator
//! linearize, batched vs per-quadrant neighbor enumeration, forest
//! pipeline wall times) to the current directory — the repo's benchmark
//! trajectory points and regression gate.

use quadforest_bench::*;
use quadforest_core::batch;
use quadforest_core::quadrant::{
    AvxQuad, HilbertQuad, Morton128Quad, MortonQuad, Quadrant, StandardQuad,
};
use quadforest_core::scalar_ref::{self, QuadSoA};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Counting allocator (the VTune substitute for Section 3.2)
// ---------------------------------------------------------------------------

struct Counting;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_delta(base: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct Opts {
    figures: Vec<u32>,
    mem: bool,
    mem_level: u8,
    autovec: bool,
    dim2: bool,
    chaos: bool,
    checkpoint: Option<String>,
    json: bool,
    trace: Option<String>,
    queries: bool,
    /// `--pde`: data-bearing advection throughput → BENCH_pde.json
    /// (cells/s, migration bytes, conservation drift) on the selected
    /// transport backend.
    pde: bool,
    iters: usize,
    ranks: Vec<usize>,
    backend: quadforest_comm::Backend,
    summary: Vec<String>,
    /// With `--summary`: add p50/p99/p999 columns from rows that carry
    /// quantile fields (BENCH_query headline records).
    percentiles: bool,
    /// `--prom FILE`: run a query workload, self-scrape the live metrics
    /// endpoint over TCP, and write the exposition body to FILE.
    prom: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        figures: Vec::new(),
        mem: false,
        mem_level: 8,
        autovec: false,
        dim2: false,
        chaos: false,
        checkpoint: None,
        json: false,
        trace: None,
        queries: false,
        pde: false,
        iters: 3,
        ranks: RANKS.to_vec(),
        backend: quadforest_comm::Backend::Threads,
        summary: Vec::new(),
        percentiles: false,
        prom: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut any = false;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                opts.figures = vec![2, 3, 4, 5, 6, 7];
                opts.mem = true;
                opts.autovec = true;
                opts.chaos = true;
                any = true;
            }
            "--fig" => {
                i += 1;
                opts.figures.push(args[i].parse().expect("--fig N"));
                any = true;
            }
            "--mem" => {
                opts.mem = true;
                any = true;
            }
            "--autovec" => {
                opts.autovec = true;
                any = true;
            }
            "--chaos" => {
                opts.chaos = true;
                any = true;
            }
            "--checkpoint" => {
                i += 1;
                opts.checkpoint = Some(args[i].clone());
                any = true;
            }
            "--json" => {
                opts.json = true;
                any = true;
            }
            "--trace" => {
                i += 1;
                opts.trace = Some(args[i].clone());
                any = true;
            }
            "--queries" => {
                opts.queries = true;
                any = true;
            }
            "--pde" => {
                opts.pde = true;
                any = true;
            }
            "--dim2" => {
                opts.dim2 = true;
                any = true;
            }
            "--level" => {
                i += 1;
                opts.mem_level = args[i].parse().expect("--level L");
            }
            "--iters" => {
                i += 1;
                opts.iters = args[i].parse().expect("--iters N");
            }
            "--ranks" => {
                i += 1;
                opts.ranks = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--ranks a,b,c"))
                    .collect();
            }
            "--backend" => {
                i += 1;
                opts.backend = match args[i].as_str() {
                    "threads" => quadforest_comm::Backend::Threads,
                    "sockets" => {
                        let me = std::env::current_exe().expect("current_exe for socket worker");
                        quadforest_comm::Backend::Sockets(quadforest_comm::SocketOptions::new(me))
                    }
                    "tcp" => {
                        let me = std::env::current_exe().expect("current_exe for tcp worker");
                        quadforest_comm::Backend::Tcp(quadforest_comm::TcpOptions::new(me))
                    }
                    other => {
                        eprintln!("unknown backend '{other}' (expected threads|sockets|tcp)");
                        std::process::exit(2);
                    }
                };
            }
            "--summary" => {
                i += 1;
                opts.summary = args[i].split(',').map(|s| s.to_string()).collect();
                any = true;
            }
            "--percentiles" => {
                opts.percentiles = true;
            }
            "--prom" => {
                i += 1;
                opts.prom = Some(args[i].clone());
                any = true;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !any {
        opts.figures = vec![2, 3, 4, 5, 6, 7];
        opts.mem = true;
        opts.autovec = true;
        opts.dim2 = true;
        opts.chaos = true;
    }
    opts
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Figures 2-7
// ---------------------------------------------------------------------------

/// Run one kernel for one representation over the rank sweep; returns
/// (per-P critical path, best single-rank time).
fn sweep<T: Clone, F: FnMut(&[T]) -> u64 + Copy>(
    data: &[T],
    ranks: &[usize],
    iters: usize,
    kernel: F,
) -> (Vec<Duration>, Duration) {
    // warmup
    let mut k = kernel;
    let _ = k(data);
    let series = ranks
        .iter()
        .map(|&p| {
            let mut best = Duration::MAX;
            for _ in 0..iters {
                let pt = strong_scale(data, p, kernel);
                best = best.min(pt.critical_path);
            }
            best
        })
        .collect::<Vec<_>>();
    // the single-rank reference for the speedup summary is the P = 1
    // sweep point when present (keeps table and summary consistent on a
    // noisy shared core), else a dedicated full-array measurement
    let single = match ranks.iter().position(|&p| p == 1) {
        Some(i) => series[i],
        None => time_best(data, iters, kernel),
    };
    (series, single)
}

struct FigureResult {
    name: &'static str,
    algorithms: &'static str,
    /// rows: (repr name, per-P series, single-rank best)
    rows: Vec<(&'static str, Vec<Duration>, Duration)>,
}

impl FigureResult {
    fn print(&self, ranks: &[usize]) {
        println!("\n## {} ({})", self.name, self.algorithms);
        print!("| P |");
        for (name, _, _) in &self.rows {
            print!(" {name} (ms) |");
        }
        println!();
        print!("|---|");
        for _ in &self.rows {
            print!("---|");
        }
        println!();
        for (i, p) in ranks.iter().enumerate() {
            print!("| {p} |");
            for (_, series, _) in &self.rows {
                print!(" {:.3} |", ms(series[i]));
            }
            println!();
        }
        let base = self.rows[0].2;
        print!("speedup vs {}:", self.rows[0].0);
        for (name, _, single) in self.rows.iter().skip(1) {
            print!(" {name} {:+.0}%", speedup_percent(base, *single));
        }
        println!();
    }
}

macro_rules! figure_quads {
    ($name:literal, $alg:literal, $kernel:ident, $filter:expr, $opts:expr) => {{
        let mut rows = Vec::new();
        {
            let data = $filter(paper_workload::<StandardQuad<3>>());
            let (s, b) = sweep(&data, &$opts.ranks, $opts.iters, |d| $kernel(d));
            rows.push(("standard", s, b));
        }
        {
            let data = $filter(paper_workload::<MortonQuad<3>>());
            let (s, b) = sweep(&data, &$opts.ranks, $opts.iters, |d| $kernel(d));
            rows.push(("morton", s, b));
        }
        {
            let data = $filter(paper_workload::<AvxQuad<3>>());
            let (s, b) = sweep(&data, &$opts.ranks, $opts.iters, |d| $kernel(d));
            rows.push(("avx", s, b));
        }
        {
            let data = $filter(paper_workload::<Morton128Quad<3>>());
            let (s, b) = sweep(&data, &$opts.ranks, $opts.iters, |d| $kernel(d));
            rows.push(("morton128", s, b));
        }
        FigureResult {
            name: $name,
            algorithms: $alg,
            rows,
        }
        .print(&$opts.ranks);
    }};
}

fn run_figure(fig: u32, opts: &Opts) {
    match fig {
        2 => {
            let inputs = paper_morton_inputs(3);
            let mut rows = Vec::new();
            let (s, b) = sweep(&inputs, &opts.ranks, opts.iters, |d| {
                kernel_morton::<StandardQuad<3>>(d)
            });
            rows.push(("standard", s, b));
            let (s, b) = sweep(&inputs, &opts.ranks, opts.iters, |d| {
                kernel_morton::<MortonQuad<3>>(d)
            });
            rows.push(("morton", s, b));
            let (s, b) = sweep(&inputs, &opts.ranks, opts.iters, |d| {
                kernel_morton::<AvxQuad<3>>(d)
            });
            rows.push(("avx", s, b));
            let (s, b) = sweep(&inputs, &opts.ranks, opts.iters, |d| {
                kernel_morton::<Morton128Quad<3>>(d)
            });
            rows.push(("morton128", s, b));
            FigureResult {
                name: "Figure 2: Morton",
                algorithms: "Algorithms 1, 4, 11: construct quadrant from curve index",
                rows,
            }
            .print(&opts.ranks);
        }
        3 => figure_quads!(
            "Figure 3: Child",
            "Algorithms 2, 6, 9",
            kernel_child,
            |v| v,
            opts
        ),
        4 => figure_quads!(
            "Figure 4: FNeigh",
            "Algorithm 8",
            kernel_fneigh,
            |v| v,
            opts
        ),
        5 => figure_quads!(
            "Figure 5: Parent",
            "Algorithms 7, 10",
            kernel_parent,
            nonroot,
            opts
        ),
        6 => figure_quads!(
            "Figure 6: Sibling",
            "Algorithm 3",
            kernel_sibling,
            nonroot,
            opts
        ),
        7 => figure_quads!(
            "Figure 7: Tree_Boundaries",
            "Algorithm 12",
            kernel_boundaries,
            |v| v,
            opts
        ),
        other => eprintln!("no such figure: {other}"),
    }
}

// ---------------------------------------------------------------------------
// Section 3.2: memory
// ---------------------------------------------------------------------------

fn measure_mem<Q: Quadrant>(level: u8) -> (usize, usize) {
    reset_peak();
    let base = PEAK.load(Ordering::Relaxed);
    let v: Vec<Q> = workload::uniform_level::<Q>(level);
    let peak = peak_delta(base);
    let n = v.len();
    drop(v);
    (peak, n)
}

fn run_memory(level: u8) {
    println!("\n## Section 3.2: memory consumption (uniform octree, level {level})");
    println!("built by repeated calls to the Morton algorithm, as in the paper\n");
    println!("| representation | bytes/quad | total | ratio |");
    println!("|---|---|---|---|");
    let (std_peak, n) = measure_mem::<StandardQuad<3>>(level);
    let (avx_peak, _) = measure_mem::<AvxQuad<3>>(level);
    let (mor_peak, _) = measure_mem::<MortonQuad<3>>(level);
    let gib = |b: usize| b as f64 / (1024.0 * 1024.0 * 1024.0);
    for (name, peak, size) in [
        ("standard", std_peak, std::mem::size_of::<StandardQuad<3>>()),
        ("avx", avx_peak, std::mem::size_of::<AvxQuad<3>>()),
        ("morton", mor_peak, std::mem::size_of::<MortonQuad<3>>()),
    ] {
        println!(
            "| {name} | {size} | {:.3} GiB | {:.2} |",
            gib(peak),
            peak as f64 / mor_peak as f64
        );
    }
    println!("\nquadrants: {n}; paper reports 25.8 : 17.2 : 8.6 GB = 3 : 2 : 1 at level 10");
    assert_eq!(std::mem::size_of::<StandardQuad<3>>(), 24);
    assert_eq!(std::mem::size_of::<AvxQuad<3>>(), 16);
    assert_eq!(std::mem::size_of::<MortonQuad<3>>(), 8);
}

// ---------------------------------------------------------------------------
// Contribution 5: manual vs automatic vectorization
// ---------------------------------------------------------------------------

fn run_autovec(opts: &Opts) {
    const L: u8 = StandardQuad::<3>::MAX_LEVEL;
    let quads = nonroot(paper_workload::<StandardQuad<3>>());
    let soa = QuadSoA::from_quads(&quads);
    let mut out = QuadSoA::with_len(soa.len());
    let n = soa.len();
    println!("\n## Contribution 5: manual AVX2 vs compiler auto-vectorization");
    println!("SoA batch kernels over {n} octants (identical memory layout)\n");
    println!("| kernel | auto-vectorized (ms) | manual AVX2 256-bit (ms) | manual gain |");
    println!("|---|---|---|---|");

    let time = |f: &mut dyn FnMut()| {
        let mut best = Duration::MAX;
        for _ in 0..opts.iters.max(3) {
            let t = std::time::Instant::now();
            f();
            best = best.min(t.elapsed());
        }
        best
    };

    let rows: Vec<(&str, Duration, Duration)> = vec![
        (
            "child",
            time(&mut || scalar_ref::child_all(&soa, 5, L, &mut out)),
            time(&mut || batch::child_all(&soa, 5, L, &mut out)),
        ),
        (
            "parent",
            time(&mut || scalar_ref::parent_all(&soa, L, &mut out)),
            time(&mut || batch::parent_all(&soa, L, &mut out)),
        ),
        (
            "sibling",
            time(&mut || scalar_ref::sibling_all(&soa, 3, L, &mut out)),
            time(&mut || batch::sibling_all(&soa, 3, L, &mut out)),
        ),
        (
            "face_neighbor",
            time(&mut || scalar_ref::face_neighbor_all(&soa, 2, L, &mut out)),
            time(&mut || batch::face_neighbor_all(&soa, 2, L, &mut out)),
        ),
    ];
    for (name, auto, manual) in &rows {
        println!(
            "| {name} | {:.3} | {:.3} | {:+.0}% |",
            ms(*auto),
            ms(*manual),
            speedup_percent(*auto, *manual)
        );
    }
    {
        let (mut fx, mut fy, mut fz) = (vec![0; n], vec![0; n], vec![0; n]);
        let auto =
            time(&mut || scalar_ref::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz]));
        let manual =
            time(&mut || batch::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz]));
        println!(
            "| tree_boundaries | {:.3} | {:.3} | {:+.0}% |",
            ms(auto),
            ms(manual),
            speedup_percent(auto, manual)
        );
    }
}

// ---------------------------------------------------------------------------
// 2D extension table (includes the Hilbert-curve representation)
// ---------------------------------------------------------------------------

fn run_dim2(opts: &Opts) {
    println!("\n## Extension: 2D kernels including the Hilbert-curve representation");
    println!("(no paper counterpart; the paper evaluates 3D only — this measures the");
    println!("curve trade-off: Hilbert's curve-order operations are O(level))\n");
    const L2: u8 = 9; // deeper than the 3D workload: 349,525 quadrants
    let n = workload::complete_tree_count(2, L2);
    println!("workload: {n} 2D quadrants (levels 0..={L2}), single rank\n");
    println!(
        "| kernel | standard | morton | avx | hilbert | (ms, best of {}) |",
        opts.iters
    );
    println!("|---|---|---|---|---|---|");

    macro_rules! row {
        ($name:literal, $kernel:ident, $filter:expr) => {{
            let s = time_best(
                &$filter(workload::complete_tree::<StandardQuad<2>>(L2)),
                opts.iters,
                |d| $kernel(d),
            );
            let m = time_best(
                &$filter(workload::complete_tree::<MortonQuad<2>>(L2)),
                opts.iters,
                |d| $kernel(d),
            );
            let a = time_best(
                &$filter(workload::complete_tree::<AvxQuad<2>>(L2)),
                opts.iters,
                |d| $kernel(d),
            );
            let h = time_best(
                &$filter(workload::complete_tree::<HilbertQuad>(L2)),
                opts.iters,
                |d| $kernel(d),
            );
            println!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | |",
                $name,
                ms(s),
                ms(m),
                ms(a),
                ms(h)
            );
        }};
    }

    {
        let inputs = workload::morton_inputs(2, L2);
        let s = time_best(&inputs, opts.iters, kernel_morton::<StandardQuad<2>>);
        let m = time_best(&inputs, opts.iters, kernel_morton::<MortonQuad<2>>);
        let a = time_best(&inputs, opts.iters, kernel_morton::<AvxQuad<2>>);
        let h = time_best(&inputs, opts.iters, kernel_morton::<HilbertQuad>);
        println!(
            "| from_index | {:.3} | {:.3} | {:.3} | {:.3} | |",
            ms(s),
            ms(m),
            ms(a),
            ms(h)
        );
    }
    row!("child", kernel_child, |v| v);
    row!("parent", kernel_parent, nonroot);
    row!("sibling", kernel_sibling, nonroot);
    row!("face_neighbor", kernel_fneigh, |v| v);
    row!("tree_boundaries", kernel_boundaries, |v| v);
}

// ---------------------------------------------------------------------------
// Chaos: the forest pipeline under deterministic fault injection
// ---------------------------------------------------------------------------

/// The deterministic fault seeds `--chaos` sweeps; recorded as
/// provenance in every BENCH_*.json produced by the same invocation.
const CHAOS_SEEDS: [u64; 4] = [11, 22, 33, 44];

fn run_chaos(opts: &Opts) {
    use quadforest_bench::transport::{self, CHAOS_PIPELINE};
    use quadforest_comm::{try_run_program, Attempt, Backend, FaultPlan, RunOptions, WorldError};

    let backend = &opts.backend;
    let registry = transport::registry();
    println!(
        "\n## Chaos: refine→balance→partition→ghost under fault injection [{} backend]",
        backend.name()
    );
    println!("delivery delays + cross-stream reordering; a correct pipeline must be");
    println!("bit-identical to the fault-free run (seeded plans replay exactly)\n");

    let run_once = |p: usize,
                    faults: Option<FaultPlan>|
     -> Result<Vec<transport::PipelineDigest>, WorldError> {
        let run_opts = RunOptions {
            faults,
            ..RunOptions::default()
        };
        try_run_program(
            backend,
            p,
            &run_opts,
            &registry,
            CHAOS_PIPELINE,
            &[],
            Attempt { index: 0 },
        )
        .map(|vals| vals.iter().map(|b| transport::decode_digest(b)).collect())
    };

    println!("| P | fault seed | checksum | ghosts | matches fault-free | wall (ms) |");
    println!("|---|---|---|---|---|---|");
    let mut all_ok = true;
    for &p in &[1usize, 2, 4, 7] {
        let baseline = run_once(p, None).unwrap_or_else(|e| panic!("fault-free run failed: {e}"));
        for seed in CHAOS_SEEDS {
            let mut plan = FaultPlan::new(seed)
                .with_delays(0.2, Duration::from_micros(100))
                .with_reordering(0.25);
            // On TCP the chaos also attacks the wire itself: latency,
            // silent drops, bit corruption, and partial writes. The
            // session layer must retransmit/resync so the digest still
            // matches the fault-free run bit for bit.
            if matches!(backend, Backend::Tcp(_)) {
                plan = plan
                    .with_net_delays(0.05, Duration::from_micros(200))
                    .with_net_drops(0.02)
                    .with_net_corruption(0.02)
                    .with_net_partial_writes(0.1);
            }
            let t = std::time::Instant::now();
            let chaotic =
                run_once(p, Some(plan)).unwrap_or_else(|e| panic!("chaos run failed: {e}"));
            let wall = t.elapsed();
            let ok = chaotic == baseline;
            all_ok &= ok;
            println!(
                "| {p} | {seed} | {:#018x} | {} | {} | {:.3} |",
                chaotic[0].0,
                chaotic[0].1,
                if ok { "yes" } else { "NO" },
                ms(wall)
            );
        }
    }
    assert!(all_ok, "fault injection changed a pipeline result");

    // and a scheduled rank death: the world reports instead of hanging.
    // On the process-per-rank backends the death is a real SIGKILL of
    // the victim's process — detected and reported the same way.
    let plan = match backend {
        Backend::Threads => FaultPlan::new(1).with_panic_at(2, 9),
        Backend::Sockets(_) | Backend::Tcp(_) => FaultPlan::new(1).with_sigkill_at(2, 9),
    };
    match run_once(4, Some(plan)) {
        Ok(_) => println!("\nscheduled death did not fire (pipeline too short)"),
        Err(e) => println!(
            "\nscheduled rank death at P=4: origin rank {} — \"{}\" ({} collateral)",
            e.origin,
            e.reason,
            e.failures.len().saturating_sub(1)
        ),
    }
}

// ---------------------------------------------------------------------------
// --pde: data-bearing advection throughput (BENCH_pde.json)
// ---------------------------------------------------------------------------

/// Drive the patch-based advection program at P ∈ {1, 2, 4} on the
/// selected transport backend and write BENCH_pde.json: cell-update
/// throughput, payload bytes migrated during repartitioning, and the
/// relative mass drift (which must sit at machine precision — the rows
/// double as a conservation gate). The program runs through the shared
/// [`transport`] registry, so on `--backend sockets` every rank is a
/// real process and the patches cross genuine IPC.
fn run_pde(opts: &Opts) {
    use quadforest_bench::transport::{self, PDE_ADVECTION};
    use quadforest_comm::{try_run_program, Attempt, RunOptions};

    const STEPS: u64 = 40;
    const BASE_LEVEL: u8 = 3;
    const MAX_LEVEL: u8 = 5;
    const ADAPT_EVERY: u64 = 5;

    let backend = &opts.backend;
    let registry = transport::registry();
    println!(
        "\n## PDE: patch-based advection on dynamic AMR [{} backend]",
        backend.name()
    );
    println!("8×8 cell patches per leaf, donor-cell upwind, periodic square;");
    println!("adapt + repartition (payload in the all-to-all) every {ADAPT_EVERY} steps\n");
    println!("| P | steps | cell updates | Mcells/s | migrated KiB | mass drift | wall (ms) |");
    println!("|---|---|---|---|---|---|---|");

    let mut records = Vec::new();
    for &p in &[1usize, 2, 4] {
        let args = transport::pde_args(STEPS, BASE_LEVEL, MAX_LEVEL, ADAPT_EVERY);
        let run_opts = RunOptions::default();
        let t = std::time::Instant::now();
        let vals = try_run_program(
            backend,
            p,
            &run_opts,
            &registry,
            PDE_ADVECTION,
            &args,
            Attempt { index: 0 },
        )
        .unwrap_or_else(|e| panic!("pde advection failed at P={p}: {e}"));
        let wall = t.elapsed();
        let views: Vec<transport::PdeView> =
            vals.iter().map(|b| transport::decode_pde(b)).collect();
        let (cells, migrated, drift, digest) = views[0];
        for (r, v) in views.iter().enumerate() {
            assert_eq!(v.3, digest, "rank {r} disagrees on the final state digest");
        }
        assert!(
            drift < 1e-12,
            "P={p}: advection lost mass across adaptation + migration (drift {drift:e})"
        );
        let cells_per_sec = cells as f64 / wall.as_secs_f64();
        println!(
            "| {p} | {STEPS} | {cells} | {:.2} | {:.1} | {drift:.2e} | {:.3} |",
            cells_per_sec / 1e6,
            migrated as f64 / 1024.0,
            ms(wall)
        );
        let op = match p {
            1 => "advection_p1",
            2 => "advection_p2",
            _ => "advection_p4",
        };
        let mut rec = JsonRecord::wall(op, "morton", cells as usize, wall);
        rec.extras = vec![
            ("cells_per_sec", format!("{cells_per_sec:.1}")),
            ("migrated_bytes", migrated.to_string()),
            ("mass_drift", format!("{drift:e}")),
        ];
        records.push(rec);
    }
    write_json("BENCH_pde.json", "pde", opts, &records);
}

// ---------------------------------------------------------------------------
// --checkpoint: on-disk checkpoint format smoke (write, corrupt, fall back)
// ---------------------------------------------------------------------------

/// Write two checkpoint generations at P = 4, bit-flip one shard of the
/// newest, and prove the loader rejects it via CRC and falls back to the
/// previous generation — then load the survivor at P = 2 to exercise
/// repartition-on-load. This is the CI gate for the on-disk format.
fn run_checkpoint(dir: &str) {
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::MortonQuad;
    use quadforest_forest::{list_generations, BalanceKind, Forest};
    use quadforest_telemetry as telemetry;
    use std::sync::Arc;

    const P: usize = 4;
    println!("\n## Checkpoint: on-disk format smoke (write → corrupt → fall back)");
    println!("two generations at P = {P}; one shard of the newest is bit-flipped and");
    println!("the loader must reject it (CRC) and restore the previous generation\n");

    let dir = std::path::Path::new(dir).to_path_buf();
    let _ = std::fs::remove_dir_all(&dir);

    // two generations of a growing forest, checksummed at each save
    let written = quadforest_comm::run(P, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
        f.refine(&comm, true, |_, q| {
            let c = q.coords();
            q.level() < 5 && c[0] == 0 && c[1] == 0
        });
        f.balance(&comm, BalanceKind::Face);
        let gen1 = f.save_checkpoint(&comm, &dir).expect("save generation 1");
        let sum1 = f.checksum(&comm);
        f.refine(&comm, true, |_, q| {
            let c = q.coords();
            q.level() < 6 && c[0] == 0
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        let gen2 = f.save_checkpoint(&comm, &dir).expect("save generation 2");
        (gen1, sum1, gen2, f.checksum(&comm), f.global_count())
    });
    let (gen1, sum1, gen2, sum2, n2) = written[0];
    println!("| step | generation | checksum | leaves |");
    println!("|---|---|---|---|");
    println!("| save (balanced) | {gen1} | {sum1:#018x} | |");
    println!("| save (refined + partitioned) | {gen2} | {sum2:#018x} | {n2} |");
    assert_eq!(list_generations(&dir), vec![gen1, gen2]);

    // intact load must pick the newest generation
    let intact = quadforest_comm::run(P, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let (f, generation) =
            Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).expect("intact load");
        (generation, f.checksum(&comm))
    });
    println!(
        "| load (intact) | {} | {:#018x} | |",
        intact[0].0, intact[0].1
    );
    assert_eq!(
        intact[0],
        (gen2, sum2),
        "intact load must restore the newest"
    );

    // flip one bit in the middle of one shard of the newest generation
    let shard = dir
        .join(format!("gen-{gen2:08}"))
        .join(format!("shard-{:05}.qfs", P / 2));
    let mut bytes = std::fs::read(&shard).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&shard, &bytes).expect("rewrite shard");
    println!(
        "| corrupt | {gen2} | bit 4 of byte {mid} in {} | |",
        shard.file_name().unwrap().to_string_lossy()
    );

    // the loader must skip the damaged generation and fall back
    let recovered = quadforest_comm::run(P, |comm| {
        telemetry::begin_rank(comm.rank());
        let conn = Arc::new(Connectivity::unit(2));
        let (f, generation) =
            Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).expect("fallback load");
        f.validate().expect("restored forest must be valid");
        let report = telemetry::finish_rank().expect("recorder was installed");
        (generation, f.checksum(&comm), report)
    });
    let fallbacks = recovered[0]
        .2
        .metrics
        .get(
            "forest.checkpoint.fallbacks",
            telemetry::MetricKind::Counter,
        )
        .map(|e| e.scalar())
        .unwrap_or(0);
    println!(
        "| load (fallback) | {} | {:#018x} | {fallbacks} generation(s) skipped |",
        recovered[0].0, recovered[0].1
    );
    assert_eq!(
        (recovered[0].0, recovered[0].1),
        (gen1, sum1),
        "corrupt shard must fall back to the previous generation"
    );
    assert!(fallbacks >= 1, "fallback must be counted");

    // the survivor also restores into a different rank count
    let half = quadforest_comm::run(P / 2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let (f, generation) =
            Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).expect("P=2 load");
        f.validate().expect("repartitioned forest must be valid");
        (generation, f.checksum(&comm))
    });
    println!(
        "| load (P = {}) | {} | {:#018x} | |",
        P / 2,
        half[0].0,
        half[0].1
    );
    assert_eq!(
        half[0],
        (gen1, sum1),
        "repartition-on-load changed the forest"
    );
    println!("\ncheckpoint smoke passed: CRC fallback and repartition-on-load verified");
}

// ---------------------------------------------------------------------------
// --trace: telemetry-instrumented pipeline with Chrome-trace export
// ---------------------------------------------------------------------------

/// Sum all `"dur"` values (µs with 3 decimals) out of a Chrome trace,
/// returned in nanoseconds — the machine-side half of the trace/table
/// agreement check.
fn sum_trace_dur_ns(json: &str) -> u64 {
    let mut total = 0f64;
    let mut rest = json;
    while let Some(i) = rest.find("\"dur\":") {
        rest = &rest[i + 6..];
        let end = rest.find(',').unwrap_or(rest.len());
        total += rest[..end].parse::<f64>().unwrap_or(0.0) * 1000.0;
    }
    total.round() as u64
}

/// Run the full refine→balance→partition→ghost pipeline at P = 4 with the
/// telemetry layer armed on every rank, write the Chrome trace to `path`,
/// and print the per-rank/per-phase summary and the cross-rank metrics
/// aggregate. The printed totals and the exported trace come from the same
/// span records; the run cross-checks them against each other.
fn run_trace(path: &str, opts: &Opts) {
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::MortonQuad;
    use quadforest_forest::{BalanceKind, Forest};
    use quadforest_telemetry as telemetry;
    use std::sync::Arc;

    const P: usize = 4;
    println!("\n## Telemetry: traced refine→balance→partition→ghost pipeline (P = {P})");
    // Background sampler: periodic snapshots of the global registry
    // become Chrome counter events at their own timestamps, so counter
    // tracks show evolution over the pipeline instead of one flat
    // end-of-run value. The pipeline is short, so sample aggressively.
    let _ = telemetry::take_metric_samples(); // drop samples from earlier modes
    let sampler = telemetry::sample_metrics_every(std::time::Duration::from_micros(200));
    let results = quadforest_comm::run(P, |comm| {
        telemetry::begin_rank(comm.rank());
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
        f.refine(&comm, true, |_, q| {
            let c = q.coords();
            q.level() < 7 && c[0] == 0 && c[1] == 0
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        let g = f.ghost(&comm, BalanceKind::Face);
        let stats = f.stats(&comm);
        std::hint::black_box((g.len(), stats.global_count));
        let rows = comm.aggregate_metrics();
        let report = telemetry::finish_rank().expect("recorder was installed");
        (report, rows)
    });
    let (reports, rows): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    drop(sampler); // join the sampling thread before draining the store
    telemetry::sample_metrics_now(); // guarantee at least one sample
    let json = telemetry::chrome_trace_with_metrics(&reports, &telemetry::global().snapshot());
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} (load in Perfetto or chrome://tracing)\n");
    print!("{}", telemetry::summary_table(&reports));
    println!();
    print!("{}", telemetry::metrics_table(&rows[0]));

    let table_ns: u64 = telemetry::summary_totals(&reports)
        .iter()
        .map(|(_, ns)| ns)
        .sum();
    let trace_ns = sum_trace_dur_ns(&json);
    let drift = (table_ns as f64 - trace_ns as f64).abs() / table_ns.max(1) as f64;
    println!(
        "\ntrace/table agreement: table {table_ns} ns vs trace {trace_ns} ns ({:.2}% drift)",
        drift * 100.0
    );
    assert!(
        drift <= 0.05,
        "summary table and exported trace disagree by more than 5%"
    );
    let _ = opts;
}

// ---------------------------------------------------------------------------
// --queries: snapshot query serving, single vs multithreaded (BENCH_query)
// ---------------------------------------------------------------------------

/// Per-representation query-serving benchmark: build an adaptively
/// refined forest, flatten it into a [`quadforest_query::ForestSnapshot`],
/// and measure point-location and box-query throughput (a) directly on
/// the caller thread and (b) through a [`quadforest_query::QueryExecutor`]
/// at 2 and 4 workers, plus a batch-path sweep
/// ([`ForestSnapshot::locate_many`] and the Z-sharded executor) over
/// batch sizes 1 / 64 / 4k / 256k at 1–8 workers. Multithreaded
/// answers are asserted identical to the single-threaded ones before
/// any number is reported. Writes `BENCH_query.json`.
/// Element-wise histogram delta (buckets + count + sum) between two
/// registry snapshots; `None` when the metric never appeared. Snapshot
/// diffing — rather than resetting the registry — keeps cumulative
/// provenance like `kernel_invocations` intact across the run.
fn hist_delta(
    before: &quadforest_telemetry::MetricsSnapshot,
    after: &quadforest_telemetry::MetricsSnapshot,
    name: &str,
) -> Option<Vec<u64>> {
    use quadforest_telemetry::MetricKind;
    let a = after.get(name, MetricKind::Histogram)?;
    Some(match before.get(name, MetricKind::Histogram) {
        Some(b) => a
            .values
            .iter()
            .zip(&b.values)
            .map(|(x, y)| x.saturating_sub(*y))
            .collect(),
        None => a.values.clone(),
    })
}

/// One cell of the batch-path sweep: `(workers, serial fraction,
/// e2e p50, p99, p999)`.
type SweepCell = (usize, f64, u64, u64, u64);

/// `(sum, p50, p90, p99, p999)` of a histogram delta from [`hist_delta`].
fn hist_stats(delta: &[u64]) -> (u64, u64, u64, u64, u64) {
    use quadforest_telemetry::{quantile_from_buckets, HISTOGRAM_BUCKETS};
    let buckets = &delta[..HISTOGRAM_BUCKETS];
    let sum = delta[HISTOGRAM_BUCKETS + 1];
    let q = |p| quantile_from_buckets(buckets, p).unwrap_or(0);
    (sum, q(0.5), q(0.9), q(0.99), q(0.999))
}

/// Flat `p50_ns`/`p90_ns`/`p99_ns`/`p999_ns` JSON fields for one
/// latency histogram's delta (empty when nothing was recorded).
fn quantile_extras(
    before: &quadforest_telemetry::MetricsSnapshot,
    after: &quadforest_telemetry::MetricsSnapshot,
    name: &str,
) -> Vec<(&'static str, String)> {
    match hist_delta(before, after, name) {
        Some(d) => {
            let (_, p50, p90, p99, p999) = hist_stats(&d);
            vec![
                ("p50_ns", p50.to_string()),
                ("p90_ns", p90.to_string()),
                ("p99_ns", p99.to_string()),
                ("p999_ns", p999.to_string()),
            ]
        }
        None => Vec::new(),
    }
}

fn run_queries(opts: &Opts) {
    use quadforest_connectivity::Connectivity;
    use quadforest_forest::Forest;
    use quadforest_query::{ForestSnapshot, QueryExecutor, SnapshotHandle};
    use std::sync::Arc;

    const N_POINTS: usize = 1 << 18;
    const BATCH: usize = 4096;
    const N_BOXES: usize = 512;
    const WORKER_COUNTS: [usize; 2] = [2, 4];
    /// Batch sizes for the sharded batch-path sweep.
    const BATCH_SIZES: [usize; 4] = [1, 64, 4096, 1 << 18];
    /// Worker counts for the sharded batch-path sweep.
    const SWEEP_WORKERS: [usize; 4] = [1, 2, 4, 8];

    fn mix(seed: u64, a: u64, b: u64) -> u64 {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for w in [a, b] {
            h ^= w;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
        }
        h
    }

    /// Forest to serve from: uniform level 6, one adaptive pass to 7 —
    /// a mixed-level leaf set so point location exercises the
    /// level-prefix walk, not just an aligned binary search.
    fn build_snapshot<Q: Quadrant>() -> ForestSnapshot {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q>::new_uniform(conn, &comm, 6);
            f.refine(&comm, false, |_, q| {
                q.level() < 7 && mix(17, q.morton_abs(), q.level() as u64).is_multiple_of(5)
            });
            ForestSnapshot::build(&f, 1)
        })
        .pop()
        .unwrap()
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n## Query serving: snapshot point/box throughput (BENCH_query)");
    println!(
        "{N_POINTS} points in batches of {BATCH}, {N_BOXES} boxes, \
         executor at {WORKER_COUNTS:?} workers ({threads} hardware threads available)"
    );
    if threads < 2 {
        println!(
            "note: only 1 hardware thread — multithreaded numbers measure \
             executor overhead, not scaling"
        );
    }

    let root = StandardQuad::<2>::len_at(0);
    let points: Vec<(u32, [i32; 3])> = (0..N_POINTS as u64)
        .map(|i| {
            (
                0u32,
                [
                    (mix(3, i, 1) % root as u64) as i32,
                    (mix(3, 2, i) % root as u64) as i32,
                    0,
                ],
            )
        })
        .collect();
    let boxes: Vec<([i32; 3], [i32; 3])> = (0..N_BOXES as u64)
        .map(|i| {
            let w = root / 8;
            let cx = (mix(5, i, 7) % (root - w) as u64) as i32;
            let cy = (mix(5, 11, i) % (root - w) as u64) as i32;
            ([cx, cy, 0], [cx + w, cy + w, 0])
        })
        .collect();

    let mut records: Vec<JsonRecord> = Vec::new();
    println!("\n| representation | leaves | op | single Mq/s | 2 workers | 4 workers | speedup |");
    println!("|---|---|---|---|---|---|---|");

    fn bench_one<Q: Quadrant>(
        name: &'static str,
        opts: &Opts,
        points: &[(u32, [i32; 3])],
        boxes: &[([i32; 3], [i32; 3])],
        records: &mut Vec<JsonRecord>,
    ) {
        let build = time_best_of(opts.iters, || {
            std::hint::black_box(build_snapshot::<Q>());
        });
        let snap = build_snapshot::<Q>();
        let leaves = snap.local_count();
        records.push(JsonRecord::wall("snapshot_build", name, leaves, build));

        // single-threaded reference answers + timing on the caller thread
        let expect_points: Vec<_> = points
            .chunks(BATCH)
            .flat_map(|c| snap.locate_batch(c))
            .collect();
        assert!(
            expect_points.iter().all(|h| h.is_some()),
            "in-domain point missed ({name})"
        );
        let single_pts = time_best_of(opts.iters, || {
            for c in points.chunks(BATCH) {
                std::hint::black_box(snap.locate_batch(c));
            }
        });
        let expect_boxes: Vec<Vec<u32>> = boxes
            .iter()
            .map(|&(lo, hi)| snap.query_box(0, lo, hi).iter().map(|h| h.index).collect())
            .collect();
        assert!(expect_boxes.iter().any(|v| !v.is_empty()));
        let single_box = time_best_of(opts.iters, || {
            for &(lo, hi) in boxes {
                std::hint::black_box(snap.query_box(0, lo, hi));
            }
        });

        // the executor path: same snapshot behind a published handle
        let handle = SnapshotHandle::new(build_snapshot::<Q>());
        let mut mt_pts = Vec::new();
        let mut mt_box = Vec::new();
        let reg = quadforest_telemetry::global();
        let head0 = reg.snapshot();
        for &workers in &WORKER_COUNTS {
            let exec = QueryExecutor::new(Arc::clone(&handle), workers);
            let got: Vec<_> = points
                .chunks(BATCH)
                .map(|c| exec.submit_points(c.to_vec()))
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|t| t.wait())
                .collect();
            assert_eq!(
                got, expect_points,
                "executor diverged ({name}, {workers} workers)"
            );
            mt_pts.push(time_best_of(opts.iters, || {
                let tickets: Vec<_> = points
                    .chunks(BATCH)
                    .map(|c| exec.submit_points(c.to_vec()))
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait());
                }
            }));
            mt_box.push(time_best_of(opts.iters, || {
                let tickets: Vec<_> = boxes
                    .iter()
                    .map(|&(lo, hi)| exec.submit_box(0, lo, hi))
                    .collect();
                for t in tickets {
                    std::hint::black_box(t.wait());
                }
            }));
        }

        let head1 = reg.snapshot();
        let per = |d: Duration, n: usize| d.as_secs_f64() * 1e9 / n as f64;
        let mqs = |d: Duration, n: usize| n as f64 / d.as_secs_f64() / 1e6;
        let best_pts = *mt_pts.iter().min().unwrap();
        let best_box = *mt_box.iter().min().unwrap();
        println!(
            "| {name} | {leaves} | point | {:.2} | {:.2} | {:.2} | {:.2}x |",
            mqs(single_pts, points.len()),
            mqs(mt_pts[0], points.len()),
            mqs(mt_pts[1], points.len()),
            single_pts.as_secs_f64() / best_pts.as_secs_f64(),
        );
        println!(
            "| {name} | {leaves} | box | {:.2} | {:.2} | {:.2} | {:.2}x |",
            mqs(single_box, boxes.len()),
            mqs(mt_box[0], boxes.len()),
            mqs(mt_box[1], boxes.len()),
            single_box.as_secs_f64() / best_box.as_secs_f64(),
        );
        records.push(JsonRecord {
            op: "point_locate",
            representation: name,
            n: points.len(),
            variants: vec![
                ("single", per(single_pts, points.len())),
                ("workers2", per(mt_pts[0], points.len())),
                ("workers4", per(mt_pts[1], points.len())),
            ],
            extras: quantile_extras(&head0, &head1, "query.point.latency_ns"),
            speedup: Some(single_pts.as_secs_f64() / best_pts.as_secs_f64()),
        });
        records.push(JsonRecord {
            op: "box_query",
            representation: name,
            n: boxes.len(),
            variants: vec![
                ("single", per(single_box, boxes.len())),
                ("workers2", per(mt_box[0], boxes.len())),
                ("workers4", per(mt_box[1], boxes.len())),
            ],
            extras: quantile_extras(&head0, &head1, "query.box.latency_ns"),
            speedup: Some(single_box.as_secs_f64() / best_box.as_secs_f64()),
        });

        // per-region level histogram, the third query kernel
        let hist = time_best_of(opts.iters, || {
            for &(lo, hi) in boxes {
                std::hint::black_box(snap.level_histogram_in_box(0, lo, hi));
            }
        });
        records.push(JsonRecord::wall("level_histogram", name, boxes.len(), hist));

        // Batch-path sweep: locate_many (sort → gallop-resume sweep →
        // un-permute) on the caller thread, then the Z-sharded executor
        // at each worker count, across batch sizes. Small batches use a
        // proportionally smaller point total so the per-submit overhead
        // configs stay measurable without dominating the run.
        println!(
            "\n| {name} batch sweep | batch | single ns/elem | w1 | w2 | w4 | w8 | w4 speedup |"
        );
        println!("|---|---|---|---|---|---|---|---|");
        let mut sf_rows: Vec<(usize, Vec<f64>)> = Vec::new();
        for &b in &BATCH_SIZES {
            let total = points.len().min(b.saturating_mul(8192));
            let pts = &points[..total];
            let expect: Vec<_> = pts.chunks(b).flat_map(|c| snap.locate_many(c)).collect();
            assert_eq!(
                expect,
                expect_points[..total],
                "locate_many diverged from per-element path ({name}, batch {b})"
            );
            let single = time_best_of(opts.iters, || {
                for c in pts.chunks(b) {
                    std::hint::black_box(snap.locate_many(c));
                }
            });
            let mut ws = Vec::new();
            // Per-cell stage profile: (workers, serial fraction,
            // e2e p50/p99/p999) from the registry delta around the
            // timed runs. The serial fraction is the submit-side
            // classify time over batch end-to-end time — the Amdahl
            // bound on what adding workers can buy at this batch size.
            let mut cells: Vec<SweepCell> = Vec::new();
            for &workers in &SWEEP_WORKERS {
                let exec = QueryExecutor::new(Arc::clone(&handle), workers);
                let got: Vec<_> = pts
                    .chunks(b)
                    .map(|c| exec.submit_points(c.to_vec()))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flat_map(|t| t.wait())
                    .collect();
                assert_eq!(
                    got, expect,
                    "sharded executor diverged ({name}, batch {b}, {workers} workers)"
                );
                let s0 = reg.snapshot();
                ws.push(time_best_of(opts.iters, || {
                    let tickets: Vec<_> = pts
                        .chunks(b)
                        .map(|c| exec.submit_points(c.to_vec()))
                        .collect();
                    for t in tickets {
                        std::hint::black_box(t.wait());
                    }
                }));
                let s1 = reg.snapshot();
                let classify = hist_delta(&s0, &s1, "query.stage.classify_ns")
                    .map(|d| hist_stats(&d).0)
                    .unwrap_or(0);
                let (e2e_sum, p50, _p90, p99, p999) = hist_delta(&s0, &s1, "query.batch.e2e_ns")
                    .map(|d| hist_stats(&d))
                    .unwrap_or_default();
                let sf = if e2e_sum > 0 {
                    classify as f64 / e2e_sum as f64
                } else {
                    0.0
                };
                cells.push((workers, sf, p50, p99, p999));
            }
            let w4 = single.as_secs_f64() / ws[2].as_secs_f64();
            println!(
                "| {name} | {b} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {w4:.2}x |",
                per(single, total),
                per(ws[0], total),
                per(ws[1], total),
                per(ws[2], total),
                per(ws[3], total),
            );
            let obj = |f: &dyn Fn(&SweepCell) -> String| {
                format!(
                    "{{{}}}",
                    cells
                        .iter()
                        .map(|c| format!("\"workers{}\": {}", c.0, f(c)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            sf_rows.push((b, cells.iter().map(|c| c.1).collect()));
            records.push(JsonRecord {
                op: "point_locate_batch",
                representation: name,
                n: b,
                variants: vec![
                    ("single", per(single, total)),
                    ("workers1", per(ws[0], total)),
                    ("workers2", per(ws[1], total)),
                    ("workers4", per(ws[2], total)),
                    ("workers8", per(ws[3], total)),
                ],
                extras: vec![
                    ("serial_fraction", obj(&|c| format!("{:.4}", c.1))),
                    ("e2e_p50_ns", obj(&|c| c.2.to_string())),
                    ("e2e_p99_ns", obj(&|c| c.3.to_string())),
                    ("e2e_p999_ns", obj(&|c| c.4.to_string())),
                ],
                speedup: Some(w4),
            });
        }

        // The measured Amdahl table for ROADMAP open item 1: the share
        // of batch end-to-end time spent in the serial submit-side
        // classify stage, per batch size × worker count. 1/sf bounds
        // the achievable speedup at that batch size.
        println!("\n| {name} serial fraction | w1 | w2 | w4 | w8 |");
        println!("|---|---|---|---|---|");
        for (b, sfs) in &sf_rows {
            let cols = sfs
                .iter()
                .map(|sf| format!("{:.1}%", sf * 100.0))
                .collect::<Vec<_>>()
                .join(" | ");
            println!("| batch {b} | {cols} |");
        }
    }

    bench_one::<StandardQuad<2>>("standard", opts, &points, &boxes, &mut records);
    bench_one::<MortonQuad<2>>("morton", opts, &points, &boxes, &mut records);
    bench_one::<AvxQuad<2>>("avx", opts, &points, &boxes, &mut records);

    write_json("BENCH_query.json", "query", opts, &records);
}

// ---------------------------------------------------------------------------
// --json: machine-readable perf baseline (BENCH_batch / BENCH_highlevel)
// ---------------------------------------------------------------------------

/// One scalar-vs-dispatched measurement rendered as a JSON object.
struct JsonRecord {
    op: &'static str,
    representation: &'static str,
    n: usize,
    /// (variant name, ns per element) pairs.
    variants: Vec<(&'static str, f64)>,
    /// Extra JSON fields `"key": value` (value is pre-rendered JSON),
    /// emitted between `ns_per_elem` and `speedup` — `speedup` must
    /// stay the last field on the line, [`run_summary`] splits on it.
    extras: Vec<(&'static str, String)>,
    /// first variant time / last variant time; `None` for wall-only rows.
    speedup: Option<f64>,
}

impl JsonRecord {
    fn two(
        op: &'static str,
        representation: &'static str,
        n: usize,
        names: [&'static str; 2],
        scalar: Duration,
        simd: Duration,
    ) -> JsonRecord {
        let per = |d: Duration| d.as_secs_f64() * 1e9 / n as f64;
        JsonRecord {
            op,
            representation,
            n,
            variants: vec![(names[0], per(scalar)), (names[1], per(simd))],
            extras: Vec::new(),
            speedup: Some(scalar.as_secs_f64() / simd.as_secs_f64()),
        }
    }

    /// Three-way record: per-quadrant AoS baseline, scalar SoA tier,
    /// runtime-dispatched SIMD tier. The headline speedup is the batched
    /// SIMD kernel against the per-quadrant path it replaced; the scalar
    /// SoA time is also recorded so the file still separates the layout
    /// win from the vectorization win.
    fn three(
        op: &'static str,
        representation: &'static str,
        n: usize,
        per_quadrant: Duration,
        scalar: Duration,
        simd: Duration,
    ) -> JsonRecord {
        let per = |d: Duration| d.as_secs_f64() * 1e9 / n as f64;
        JsonRecord {
            op,
            representation,
            n,
            variants: vec![
                ("per_quadrant", per(per_quadrant)),
                ("scalar", per(scalar)),
                ("simd", per(simd)),
            ],
            extras: Vec::new(),
            speedup: Some(per_quadrant.as_secs_f64() / simd.as_secs_f64()),
        }
    }

    fn wall(op: &'static str, representation: &'static str, n: usize, d: Duration) -> JsonRecord {
        JsonRecord {
            op,
            representation,
            n,
            variants: vec![("wall", d.as_secs_f64() * 1e9 / n as f64)],
            extras: Vec::new(),
            speedup: None,
        }
    }

    fn to_json(&self) -> String {
        let vars = self
            .variants
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        let speedup = match self.speedup {
            Some(s) => format!("{s:.4}"),
            None => "null".to_string(),
        };
        let extras = self
            .extras
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}, "))
            .collect::<String>();
        format!(
            "    {{\"op\": \"{}\", \"representation\": \"{}\", \"n\": {}, \"ns_per_elem\": {{{vars}}}, {extras}\"speedup\": {speedup}}}",
            self.op, self.representation, self.n
        )
    }
}

fn write_json(path: &str, bench: &'static str, opts: &Opts, records: &[JsonRecord]) {
    let backend = opts.backend.name();
    let body = records
        .iter()
        .map(JsonRecord::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    // dispatched invocation counts per kernel tier: proves which tier
    // actually ran the measurements above (detection alone cannot)
    let invocations = quadforest_core::simd::kernel_invocations()
        .iter()
        .map(|(tier, count)| format!("\"{tier}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // chaos provenance: which deterministic fault seeds (if any) this
    // invocation swept, so a BENCH file can be reproduced exactly.
    let chaos_seeds = if opts.chaos {
        format!(
            "[{}]",
            CHAOS_SEEDS
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"backend\": \"{backend}\",\n  \"chaos_seeds\": {chaos_seeds},\n  \"features\": \"{}\",\n  \"threads\": {threads},\n  \"kernel_invocations\": {{{invocations}}},\n  \"results\": [\n{body}\n  ]\n}}\n",
        quadforest_core::simd::active_features()
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

/// The pre-keyed `linearize`: comparator sort + per-quadrant reverse
/// ancestor sweep — the baseline the keyed path is gated against.
fn linearize_comparator<Q: Quadrant>(mut quads: Vec<Q>) -> Vec<Q> {
    quads.sort_by(|a, b| a.compare_sfc(b));
    quads.dedup();
    let mut kept: Vec<Q> = Vec::with_capacity(quads.len());
    for q in quads.into_iter().rev() {
        if let Some(last) = kept.last() {
            if q.is_ancestor_of(last) || q == *last {
                continue;
            }
        }
        kept.push(q);
    }
    kept.reverse();
    kept
}

fn time_best_of(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters.max(3) {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

fn run_json_batch(opts: &Opts) {
    const L: u8 = StandardQuad::<3>::MAX_LEVEL;
    // L1-resident block (complete tree to level 3, 584 quadrants,
    // ~19 KiB of SoA lanes in+out): measures kernel throughput rather
    // than memory-system bandwidth, which is what per-op ns/elem is
    // meant to compare. Each timed sample repeats the kernel so a
    // sample is hundreds of microseconds.
    const REPS: usize = 1024;
    let quads = nonroot(workload::complete_tree::<StandardQuad<3>>(3));
    let soa = QuadSoA::from_quads(&quads);
    let mut out = QuadSoA::with_len(soa.len());
    let n = soa.len();
    let names = ["scalar", "simd"];
    let mut records = Vec::new();
    macro_rules! pair {
        ($op:literal, $scalar:expr, $simd:expr) => {{
            let s = {
                let mut f = $scalar;
                time_best_of(opts.iters, || {
                    for _ in 0..REPS {
                        f();
                    }
                })
            };
            let v = {
                let mut f = $simd;
                time_best_of(opts.iters, || {
                    for _ in 0..REPS {
                        f();
                    }
                })
            };
            records.push(JsonRecord::two($op, "soa", n * REPS, names, s, v));
        }};
    }
    let mut aos_out: Vec<StandardQuad<3>> = quads.clone();
    macro_rules! trio {
        ($op:literal, $aos:expr, $scalar:expr, $simd:expr) => {{
            let a = {
                let mut f = $aos;
                time_best_of(opts.iters, || {
                    for _ in 0..REPS {
                        f();
                    }
                })
            };
            let s = {
                let mut f = $scalar;
                time_best_of(opts.iters, || {
                    for _ in 0..REPS {
                        f();
                    }
                })
            };
            let v = {
                let mut f = $simd;
                time_best_of(opts.iters, || {
                    for _ in 0..REPS {
                        f();
                    }
                })
            };
            records.push(JsonRecord::three($op, "soa", n * REPS, a, s, v));
        }};
    }
    trio!(
        "child_all",
        || {
            for (o, q) in aos_out.iter_mut().zip(&quads) {
                *o = q.child(5);
            }
            std::hint::black_box(&aos_out);
        },
        || scalar_ref::child_all(&soa, 5, L, &mut out),
        || batch::child_all(&soa, 5, L, &mut out)
    );
    trio!(
        "parent_all",
        || {
            for (o, q) in aos_out.iter_mut().zip(&quads) {
                *o = q.parent();
            }
            std::hint::black_box(&aos_out);
        },
        || scalar_ref::parent_all(&soa, L, &mut out),
        || batch::parent_all(&soa, L, &mut out)
    );
    trio!(
        "sibling_all",
        || {
            for (o, q) in aos_out.iter_mut().zip(&quads) {
                *o = q.sibling(3);
            }
            std::hint::black_box(&aos_out);
        },
        || scalar_ref::sibling_all(&soa, 3, L, &mut out),
        || batch::sibling_all(&soa, 3, L, &mut out)
    );
    trio!(
        "face_neighbor_all",
        || {
            for (o, q) in aos_out.iter_mut().zip(&quads) {
                *o = q.face_neighbor(2);
            }
            std::hint::black_box(&aos_out);
        },
        || scalar_ref::face_neighbor_all(&soa, 2, L, &mut out),
        || batch::face_neighbor_all(&soa, 2, L, &mut out)
    );
    pair!(
        "offset_neighbor_all",
        || scalar_ref::offset_neighbor_all(&soa, [1, -1, 1], L, &mut out),
        || batch::offset_neighbor_all(&soa, [1, -1, 1], L, &mut out)
    );
    {
        let (mut fx, mut fy, mut fz) = (vec![0; n], vec![0; n], vec![0; n]);
        trio!(
            "tree_boundaries_all",
            || {
                for (i, q) in quads.iter().enumerate() {
                    let b = q.tree_boundaries();
                    fx[i] = b[0];
                    fy[i] = b[1];
                    fz[i] = b[2];
                }
                std::hint::black_box((&fx, &fy, &fz));
            },
            || scalar_ref::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz]),
            || batch::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz])
        );
    }
    {
        let mut keys = vec![0u64; n];
        trio!(
            "sfc_keys_all",
            || {
                for (k, q) in keys.iter_mut().zip(&quads) {
                    *k = q.sfc_key();
                }
                std::hint::black_box(&keys);
            },
            || scalar_ref::sfc_keys_all(&soa, 3, &mut keys),
            || batch::sfc_keys_all(&soa, 3, &mut keys)
        );
    }
    write_json("BENCH_batch.json", "batch", opts, &records);
}

fn run_json_highlevel(opts: &Opts) {
    use quadforest_connectivity::Connectivity;
    use quadforest_forest::{
        directions::{
            for_each_neighbor_domain, for_each_neighbor_domain_scalar, offsets, Adjacency,
            NeighborScratch,
        },
        BalanceKind, Forest,
    };
    use std::sync::Arc;

    let mut records = Vec::new();

    // linearize on 1M random (shuffled) octants: comparator-sort
    // baseline vs keyed sort_unstable_by_key
    const N_LIN: usize = 1_000_000;
    {
        let mut base: Vec<StandardQuad<3>> = workload::complete_tree_shuffled(6, 0x5EED);
        base.truncate(N_LIN);
        let a = time_best_of(opts.iters, || {
            std::hint::black_box(linearize_comparator(base.clone()));
        });
        let b = time_best_of(opts.iters, || {
            std::hint::black_box(quadforest_core::linear::linearize(base.clone()));
        });
        records.push(JsonRecord::two(
            "linearize",
            "standard",
            N_LIN,
            ["comparator", "keyed"],
            a,
            b,
        ));
    }
    {
        let mut base: Vec<MortonQuad<3>> = workload::complete_tree_shuffled(6, 0x5EED);
        base.truncate(N_LIN);
        let a = time_best_of(opts.iters, || {
            std::hint::black_box(linearize_comparator(base.clone()));
        });
        let b = time_best_of(opts.iters, || {
            std::hint::black_box(quadforest_core::linear::linearize(base.clone()));
        });
        records.push(JsonRecord::two(
            "linearize",
            "morton",
            N_LIN,
            ["comparator", "keyed"],
            a,
            b,
        ));
    }

    // neighbor-domain enumeration (the balance/ghost hot loop):
    // per-quadrant oracle vs batched SoA sweep
    {
        let conn = Connectivity::unit(3);
        let leaves = workload::uniform_level::<StandardQuad<3>>(5);
        let offs = offsets(3, Adjacency::Full);
        let mut count = 0usize;
        let a = time_best_of(opts.iters, || {
            count = 0;
            for_each_neighbor_domain_scalar(&conn, 0, &leaves, &offs, 0, |_, _, _| count += 1);
            std::hint::black_box(count);
        });
        let mut scratch = NeighborScratch::new();
        let mut count_b = 0usize;
        let b = time_best_of(opts.iters, || {
            count_b = 0;
            for_each_neighbor_domain(&conn, 0, &leaves, &offs, 0, &mut scratch, |_, _, _| {
                count_b += 1
            });
            std::hint::black_box(count_b);
        });
        assert_eq!(count, count_b, "batched enumeration lost domains");
        records.push(JsonRecord::two(
            "neighbor_enum",
            "standard",
            leaves.len(),
            ["per_quadrant", "batched"],
            a,
            b,
        ));
    }

    // end-to-end pipeline wall times at P = 2 (batched production path)
    {
        let t = std::time::Instant::now();
        let counts = quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| {
                let c = q.coords();
                q.level() < 7 && c[0] == 0 && c[1] == 0
            });
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            let g = f.ghost(&comm, BalanceKind::Face);
            (f.global_count(), g.len())
        });
        let wall = t.elapsed();
        let n = counts[0].0 as usize;
        records.push(JsonRecord::wall(
            "refine_balance_ghost_p2",
            "morton",
            n,
            wall,
        ));
    }

    write_json("BENCH_highlevel.json", "highlevel", opts, &records);
}

fn main() {
    // If the supervisor of a socket-backend world spawned us as a rank
    // process, run the requested program and exit — before touching
    // argv or printing anything.
    quadforest_comm::maybe_run_socket_child(&quadforest_bench::transport::registry());
    let opts = parse_args();
    if !opts.summary.is_empty() {
        run_summary(&opts.summary, opts.percentiles);
        return;
    }
    println!("# quadforest repro — paper evaluation on this machine");
    println!(
        "workload: {} 3D octants (levels 0..={}), ranks simulated {:?}, best of {} iters",
        workload::complete_tree_count(3, WORKLOAD_MAX_LEVEL),
        WORKLOAD_MAX_LEVEL,
        opts.ranks,
        opts.iters
    );
    println!(
        "kernel tier: {} (runtime-dispatched)",
        quadforest_core::simd::active_features()
    );
    for fig in &opts.figures {
        run_figure(*fig, &opts);
    }
    if opts.mem {
        run_memory(opts.mem_level);
    }
    if opts.autovec {
        run_autovec(&opts);
    }
    if opts.dim2 {
        run_dim2(&opts);
    }
    if opts.chaos {
        run_chaos(&opts);
    }
    if let Some(dir) = opts.checkpoint.clone() {
        run_checkpoint(&dir);
    }
    if let Some(path) = opts.trace.clone() {
        run_trace(&path, &opts);
    }
    if opts.json {
        println!("\n## Machine-readable perf baseline");
        run_json_batch(&opts);
        run_json_highlevel(&opts);
    }
    if opts.queries {
        run_queries(&opts);
    }
    if opts.pde {
        run_pde(&opts);
    }
    if let Some(path) = opts.prom.clone() {
        run_prom(&path);
    }
}

// ---------------------------------------------------------------------------
// --prom: metrics endpoint smoke (serve, self-scrape over TCP, dump)
// ---------------------------------------------------------------------------

/// Run a small executor workload so the global registry carries live
/// counters, gauges, and latency histograms, start the opt-in
/// [`quadforest_telemetry::serve_metrics`] endpoint on an ephemeral
/// port, scrape it over a real TCP connection exactly as Prometheus
/// would, and write the exposition body to `path` so CI can validate
/// the text-format syntax externally. The slow-query threshold is
/// dropped to 1 ns for the workload, so the scrape also carries a
/// non-zero `query_slow_count` and the stderr log fires.
fn run_prom(path: &str) {
    use quadforest_connectivity::Connectivity;
    use quadforest_forest::Forest;
    use quadforest_query::{ForestSnapshot, QueryExecutor, SnapshotHandle};
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;

    println!("\n## Metrics endpoint: serve + self-scrape ({path})");
    let snap = quadforest_comm::run(1, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<StandardQuad<2>>::new_uniform(conn, &comm, 5);
        f.refine(&comm, false, |_, q| {
            q.level() < 6 && q.morton_abs().is_multiple_of(3)
        });
        ForestSnapshot::build(&f, 1)
    })
    .pop()
    .unwrap();
    let root = StandardQuad::<2>::len_at(0);
    let points: Vec<(u32, [i32; 3])> = (0..4096u64)
        .map(|i| {
            let x = (i.wrapping_mul(48271) % root as u64) as i32;
            let y = (i.wrapping_mul(16807) % root as u64) as i32;
            (0u32, [x, y, 0])
        })
        .collect();
    quadforest_telemetry::set_slow_query_threshold_ns(1);
    let handle = SnapshotHandle::new(snap);
    let exec = QueryExecutor::new(Arc::clone(&handle), 2);
    for c in points.chunks(512) {
        std::hint::black_box(exec.submit_points(c.to_vec()).wait());
    }
    std::hint::black_box(
        exec.submit_box(0, [0, 0, 0], [root / 4, root / 4, 0])
            .wait(),
    );
    drop(exec);
    quadforest_telemetry::set_slow_query_threshold_ns(u64::MAX);

    let server = quadforest_telemetry::serve_metrics("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    drop(server);
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("malformed HTTP response");
    assert!(
        head.starts_with("HTTP/1.0 200 OK"),
        "scrape did not return 200: {head}"
    );
    std::fs::write(path, body).expect("write exposition body");
    let series = body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count();
    println!(
        "scraped {} bytes, {series} series from http://{addr}/metrics",
        body.len()
    );
}

// ---------------------------------------------------------------------------
// --summary: compare BENCH_*.json files (provenance-checked)
// ---------------------------------------------------------------------------

/// Pull the string value of a top-level `"key": "value"` pair out of a
/// BENCH json file (the files are written by [`write_json`], so the
/// format is fixed — no JSON parser needed).
fn json_str_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('\"')? + start;
    Some(text[start..end].to_string())
}

/// Pull a flat numeric `"key": value` field out of one result line.
fn json_num_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let v = rest[..end].trim();
    (!v.is_empty()).then(|| v.to_string())
}

/// Side-by-side speedup table for two or more BENCH_*.json files.
/// Refuses to compare files measured on different transport backends:
/// socket-backend runs carry per-frame serialization and real IPC in
/// every number, so a threads-vs-sockets delta is a backend artifact,
/// not a regression. With `--percentiles`, rows carrying quantile
/// fields (BENCH_query headline records) get p50/p99/p999 columns.
fn run_summary(files: &[String], percentiles: bool) {
    struct Loaded {
        path: String,
        backend: String,
        bench: String,
        /// (op, representation) → column cells (speedup, then
        /// p50/p99/p999 when `--percentiles`).
        rows: Vec<((String, String), Vec<String>)>,
    }
    let loaded: Vec<Loaded> = files
        .iter()
        .map(|path| {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let backend = json_str_field(&text, "backend").unwrap_or_else(|| {
                eprintln!(
                    "{path}: no \"backend\" provenance field — regenerate it with this \
                     repro before comparing"
                );
                std::process::exit(2);
            });
            let bench = json_str_field(&text, "bench").unwrap_or_default();
            let rows = text
                .lines()
                .filter(|l| l.trim_start().starts_with("{\"op\":"))
                .filter_map(|l| {
                    let op = json_str_field(l, "op")?;
                    let repr = json_str_field(l, "representation")?;
                    let speedup = l
                        .rsplit("\"speedup\": ")
                        .next()
                        .map(|t| t.trim_end_matches(['}', ',', ' ']).to_string())?;
                    let mut cells = vec![speedup];
                    if percentiles {
                        for key in ["p50_ns", "p99_ns", "p999_ns"] {
                            cells.push(json_num_field(l, key).unwrap_or_else(|| "—".to_string()));
                        }
                    }
                    Some(((op, repr), cells))
                })
                .collect();
            Loaded {
                path: path.clone(),
                backend,
                bench,
                rows,
            }
        })
        .collect();

    let backends: std::collections::BTreeSet<&str> =
        loaded.iter().map(|l| l.backend.as_str()).collect();
    if backends.len() > 1 {
        eprintln!("refusing mixed-backend comparison:");
        for l in &loaded {
            eprintln!("  {} was measured on the '{}' backend", l.path, l.backend);
        }
        eprintln!("re-run repro with a single --backend and compare like with like");
        std::process::exit(2);
    }

    println!(
        "# summary — backend: {}",
        backends.iter().next().copied().unwrap_or("?")
    );
    let cols_per_file = if percentiles { 4 } else { 1 };
    let header: Vec<String> = loaded
        .iter()
        .map(|l| {
            let base = format!("{} ({})", l.path, l.bench);
            if percentiles {
                format!("{base} | p50 ns | p99 ns | p999 ns")
            } else {
                base
            }
        })
        .collect();
    println!("| op | representation | {} |", header.join(" | "));
    println!("|---|---|{}", "---|".repeat(loaded.len() * cols_per_file));
    let keys: Vec<(String, String)> = loaded
        .first()
        .map(|l| l.rows.iter().map(|(k, _)| k.clone()).collect())
        .unwrap_or_default();
    for key in keys {
        let cells: Vec<String> = loaded
            .iter()
            .flat_map(|l| {
                l.rows
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| vec!["—".to_string(); cols_per_file])
            })
            .collect();
        println!("| {} | {} | {} |", key.0, key.1, cells.join(" | "));
    }
}
