//! # quadforest-bench
//!
//! The benchmark harness that regenerates every figure and table of the
//! paper's evaluation section (see DESIGN.md §4 for the experiment
//! index).
//!
//! * Figures 2–7 — per-kernel strong scaling over the three quadrant
//!   representations (`Morton`, `Child`, `FNeigh`, `Parent`, `Sibling`,
//!   `Tree_Boundaries`), on the exact workload of Section 3.1: the
//!   2,396,745-octant complete tree of levels 0..=7.
//! * Section 3.2 — memory consumption of a uniform octree per
//!   representation (3 : 2 : 1 expected).
//! * Contribution 5 — manual AVX2 vectorization vs. the compiler's
//!   auto-vectorization.
//!
//! The paper's MPI strong scaling is simulated: the workload array is cut
//! into `P` contiguous rank chunks, each chunk is timed separately on
//! this machine's core, and the reported runtime for `P` ranks is the
//! critical path `max` over chunks — see DESIGN.md §2 for why this
//! preserves the figures' shape. Criterion benches (in `benches/`) pin
//! `P = 1` for statistically rigorous per-kernel numbers; the `repro`
//! binary sweeps `P` and prints the paper-style tables.

#![warn(missing_docs)]

use quadforest_core::quadrant::Quadrant;
use std::hint::black_box;
use std::time::{Duration, Instant};

pub use quadforest_core::workload;

pub mod transport;

/// The paper's maximum refinement level for the synthetic workload.
pub const WORKLOAD_MAX_LEVEL: u8 = 7;

/// The rank counts swept by the strong-scaling figures.
pub const RANKS: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Names of the three representations compared in every figure, in the
/// paper's order.
pub const REPR_NAMES: [&str; 3] = ["standard", "morton", "avx"];

// ---------------------------------------------------------------------------
// Kernels (one per figure)
// ---------------------------------------------------------------------------

/// Fig. 2 kernel: construct each quadrant from its level-relative Morton
/// index (Algorithms 1, 4 and 11). Returns a checksum so the optimizer
/// cannot discard the work (the paper stores to a local variable for the
/// same reason).
#[inline]
pub fn kernel_morton<Q: Quadrant>(inputs: &[(u64, u8)]) -> u64 {
    let mut acc = 0u64;
    for &(idx, level) in inputs {
        let q = Q::from_morton(idx, level);
        acc = acc.wrapping_add(black_box(&q).level() as u64);
    }
    acc
}

/// Fig. 3 kernel: the `i mod 2^d`-th child of every quadrant
/// (Algorithms 2, 6 and 9). Quadrants at the maximum workload level are
/// pre-filtered by the workload builder.
#[inline]
pub fn kernel_child<Q: Quadrant>(quads: &[Q]) -> u64 {
    let mask = Q::NUM_CHILDREN - 1;
    let mut acc = 0u64;
    for (i, q) in quads.iter().enumerate() {
        let c = q.child(i as u32 & mask);
        acc = acc.wrapping_add(black_box(&c).level() as u64);
    }
    acc
}

/// Fig. 4 kernel: the `i mod 2d`-th face neighbor (Algorithm 8).
#[inline]
pub fn kernel_fneigh<Q: Quadrant>(quads: &[Q]) -> u64 {
    let nf = Q::NUM_FACES;
    let mut acc = 0u64;
    for (i, q) in quads.iter().enumerate() {
        let n = q.face_neighbor(i as u32 % nf);
        acc = acc.wrapping_add(black_box(&n).level() as u64);
    }
    acc
}

/// Fig. 5 kernel: the parent (Algorithms 7 and 10). Roots are
/// pre-filtered by the workload builder.
#[inline]
pub fn kernel_parent<Q: Quadrant>(quads: &[Q]) -> u64 {
    let mut acc = 0u64;
    for q in quads {
        let p = q.parent();
        acc = acc.wrapping_add(black_box(&p).level() as u64);
    }
    acc
}

/// Fig. 6 kernel: the `i mod 2^d`-th sibling (Algorithm 3). Roots are
/// pre-filtered.
#[inline]
pub fn kernel_sibling<Q: Quadrant>(quads: &[Q]) -> u64 {
    let mask = Q::NUM_CHILDREN - 1;
    let mut acc = 0u64;
    for (i, q) in quads.iter().enumerate() {
        let s = q.sibling(i as u32 & mask);
        acc = acc.wrapping_add(black_box(&s).level() as u64);
    }
    acc
}

/// Fig. 7 kernel: tree-boundary classification (Algorithm 12).
#[inline]
pub fn kernel_boundaries<Q: Quadrant>(quads: &[Q]) -> u64 {
    let mut acc = 0u64;
    for q in quads {
        let f = q.tree_boundaries();
        acc = acc.wrapping_add(black_box(&f)[0] as u64 & 0xFF);
    }
    acc
}

// ---------------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------------

/// The full Section-3.1 array for a representation: all 2,396,745
/// octants of levels 0..=7 (in 3D).
pub fn paper_workload<Q: Quadrant>() -> Vec<Q> {
    workload::complete_tree::<Q>(WORKLOAD_MAX_LEVEL)
}

/// Workload restricted to `level < max` (inputs of the `Child` kernel,
/// which must not split maximum-level quadrants). With the paper's
/// workload the maximum level 7 < L, so this is the identity; kept for
/// generality when sweeping deeper workloads.
pub fn child_safe<Q: Quadrant>(quads: Vec<Q>) -> Vec<Q> {
    quads
        .into_iter()
        .filter(|q| q.level() < Q::MAX_LEVEL)
        .collect()
}

/// Workload without the root (inputs of `Parent` and `Sibling`).
pub fn nonroot<Q: Quadrant>(quads: Vec<Q>) -> Vec<Q> {
    quads.into_iter().filter(|q| q.level() > 0).collect()
}

/// The `(index, level)` input stream of the `Morton` kernel.
pub fn paper_morton_inputs(dim: u32) -> Vec<(u64, u8)> {
    workload::morton_inputs(dim, WORKLOAD_MAX_LEVEL)
}

// ---------------------------------------------------------------------------
// Strong-scaling harness
// ---------------------------------------------------------------------------

/// One measured point of a strong-scaling series.
#[derive(Copy, Clone, Debug)]
pub struct ScalePoint {
    /// Simulated rank count `P`.
    pub ranks: usize,
    /// Critical-path runtime: the slowest rank chunk.
    pub critical_path: Duration,
    /// Sum over all chunks (total CPU work).
    pub total_work: Duration,
}

/// Cut `data` into `ranks` contiguous chunks (the SFC partition of the
/// workload), time `kernel` on each chunk, and report the critical path
/// — the simulated strong-scaling measurement (DESIGN.md §2).
pub fn strong_scale<T, F>(data: &[T], ranks: usize, mut kernel: F) -> ScalePoint
where
    F: FnMut(&[T]) -> u64,
{
    let n = data.len();
    let mut worst = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut acc = 0u64;
    for r in 0..ranks {
        let lo = n * r / ranks;
        let hi = n * (r + 1) / ranks;
        let start = Instant::now();
        acc = acc.wrapping_add(kernel(&data[lo..hi]));
        let dt = start.elapsed();
        total += dt;
        worst = worst.max(dt);
    }
    black_box(acc);
    ScalePoint {
        ranks,
        critical_path: worst,
        total_work: total,
    }
}

/// Run `kernel` over the whole array `iters` times and return the best
/// (minimum) duration — the stable single-rank measurement used for the
/// speedup ratios.
pub fn time_best<T, F>(data: &[T], iters: usize, mut kernel: F) -> Duration
where
    F: FnMut(&[T]) -> u64,
{
    let mut best = Duration::MAX;
    let mut acc = 0u64;
    for _ in 0..iters {
        let start = Instant::now();
        acc = acc.wrapping_add(kernel(data));
        best = best.min(start.elapsed());
    }
    black_box(acc);
    best
}

/// Percentage speedup of `new` over `baseline` (positive = faster), the
/// number the paper quotes per figure.
pub fn speedup_percent(baseline: Duration, new: Duration) -> f64 {
    (baseline.as_secs_f64() / new.as_secs_f64() - 1.0) * 100.0
}

// ---------------------------------------------------------------------------
// Correctness cross-checks for the harness itself
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};

    #[test]
    fn workload_sizes() {
        assert_eq!(paper_workload::<StandardQuad<3>>().len(), 2_396_745);
        assert_eq!(paper_morton_inputs(3).len(), 2_396_745);
    }

    #[test]
    fn kernels_agree_across_representations() {
        // checksums must be identical for all representations: the
        // kernels compute the same logical results
        let s = paper_workload::<StandardQuad<3>>();
        let m = paper_workload::<MortonQuad<3>>();
        let a = paper_workload::<AvxQuad<3>>();
        let s = &s[..20_000];
        let m = &m[..20_000];
        let a = &a[..20_000];
        assert_eq!(kernel_child(s), kernel_child(m));
        assert_eq!(kernel_child(s), kernel_child(a));
        assert_eq!(kernel_boundaries(s), kernel_boundaries(m));
        assert_eq!(kernel_boundaries(s), kernel_boundaries(a));
        let sn: Vec<_> = nonroot(s.to_vec());
        let mn: Vec<_> = nonroot(m.to_vec());
        let an: Vec<_> = nonroot(a.to_vec());
        assert_eq!(kernel_parent(&sn), kernel_parent(&mn));
        assert_eq!(kernel_parent(&sn), kernel_parent(&an));
        assert_eq!(kernel_sibling(&sn), kernel_sibling(&mn));
        assert_eq!(kernel_sibling(&sn), kernel_sibling(&an));
        let inputs = &paper_morton_inputs(3)[..20_000];
        assert_eq!(
            kernel_morton::<StandardQuad<3>>(inputs),
            kernel_morton::<MortonQuad<3>>(inputs)
        );
        assert_eq!(
            kernel_morton::<StandardQuad<3>>(inputs),
            kernel_morton::<AvxQuad<3>>(inputs)
        );
    }

    #[test]
    fn strong_scale_covers_all_elements() {
        let data: Vec<u32> = (0..1000).collect();
        let mut seen = 0usize;
        let pt = strong_scale(&data, 7, |chunk| {
            seen += chunk.len();
            0
        });
        assert_eq!(seen, 1000);
        assert_eq!(pt.ranks, 7);
        assert!(pt.total_work >= pt.critical_path);
    }

    #[test]
    fn speedup_math() {
        let a = Duration::from_millis(177);
        let b = Duration::from_millis(100);
        assert!((speedup_percent(a, b) - 77.0).abs() < 1e-9);
        assert!(speedup_percent(b, b).abs() < 1e-9);
    }
}
