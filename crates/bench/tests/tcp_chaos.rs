//! Network chaos on the TCP backend: the wire itself is the adversary.
//!
//! The socket-backend chaos suite attacks message *scheduling* (delays,
//! reordering, rank deaths). This suite attacks the *transport*:
//! silently dropped frames, flipped bits, connection resets, and
//! asymmetric partitions, all injected deterministically from a seeded
//! [`FaultPlan`]. The contract under test is the TCP session layer's
//! partition-tolerant liveness split:
//!
//! * damage healed **within** the missed-heartbeat grace window —
//!   reconnect, replay from the sequence/ack state, complete the
//!   pipeline bit-identically, with *zero* recovery-supervisor retries;
//! * damage that **outlives** the window — escalate to a typed
//!   `CommError::PeerFailed` and let `run_with_recovery_program`
//!   restart from the last checkpoint, never hang, never panic.

use quadforest_bench::transport::{
    self, decode_digest, decode_view, recovery_args, CHAOS_PIPELINE, RECOVERY_PIPELINE,
};
use quadforest_comm::{
    run_with_recovery_program, try_run_program, Attempt, Backend, CommError, FaultPlan, NetDir,
    RankError, RecoveryOptions, RecoveryPolicy, RunOptions, TcpOptions,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The repro binary doubles as the TCP-backend worker.
fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_repro"))
}

/// TCP backend with a wide death window: chaos stalls (partitions,
/// reconnect backoff) must fit inside it without tripping liveness.
fn tcp_backend(grace: u32) -> Backend {
    let mut o = TcpOptions::new(worker());
    o.heartbeat_interval = Duration::from_millis(25);
    o.heartbeat_grace = grace;
    Backend::Tcp(o)
}

/// A fresh scratch directory unique to this process + call site.
fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qf-tcpchaos-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Supervisor-side reconnect count (process-global, monotonic).
fn reconnects() -> u64 {
    quadforest_telemetry::global()
        .counter("transport.reconnects")
        .get()
}

fn run_chaos_once(
    backend: &Backend,
    p: usize,
    faults: Option<FaultPlan>,
) -> Result<Vec<transport::PipelineDigest>, quadforest_comm::WorldError> {
    let opts = RunOptions {
        faults,
        ..RunOptions::default()
    };
    try_run_program(
        backend,
        p,
        &opts,
        &transport::registry(),
        CHAOS_PIPELINE,
        &[],
        Attempt::first(),
    )
    .map(|vals| vals.iter().map(|b| decode_digest(b)).collect())
}

/// Fault-free reference views on the thread backend.
fn baseline_views(p: usize, seed: u64, label: &str) -> Vec<transport::RankView> {
    let dir = scratch_dir(label);
    let views = try_run_program(
        &Backend::Threads,
        p,
        &RunOptions::default(),
        &transport::registry(),
        RECOVERY_PIPELINE,
        &recovery_args(&dir, seed),
        Attempt::first(),
    )
    .expect("baseline run");
    let views = views.iter().map(|b| decode_view(b)).collect();
    let _ = std::fs::remove_dir_all(&dir);
    views
}

/// ACCEPTANCE: an asymmetric partition opens mid-pipeline and heals
/// well inside the missed-heartbeat grace window. The session layer
/// must detect the sequence gap after the heal, reconnect, replay, and
/// finish the pipeline leaf-identical to the fault-free run — with the
/// recovery supervisor seeing **one** attempt and **zero** failures
/// (i.e. no `RecoveryRetry` at all), while the transport records at
/// least one reconnect.
#[test]
fn partition_heal_within_grace_completes_with_zero_recovery_retries() {
    const P: usize = 4;
    const SEED: u64 = 0x9EA1;
    let baseline = baseline_views(P, SEED, "heal-baseline");
    let before = reconnects();

    let dir = scratch_dir("heal");
    // both directions of rank 1's link go dark at its 3rd outbound data
    // frame, for 300 ms — far inside the 2 s death window
    let plan =
        FaultPlan::new(SEED).with_net_partition(1, NetDir::Both, 3, Duration::from_millis(300));
    let opts = RecoveryOptions {
        policy: RecoveryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            ..RecoveryPolicy::default()
        },
        plans: vec![Some(plan)],
        ..RecoveryOptions::default()
    };
    let outcome = run_with_recovery_program(
        &tcp_backend(80), // 2 s death window
        P,
        opts,
        &transport::registry(),
        RECOVERY_PIPELINE,
        &recovery_args(&dir, SEED),
    )
    .expect("a healed partition must not fail the world");

    assert_eq!(
        outcome.attempts, 1,
        "a partition healed within grace must need no recovery retry"
    );
    assert!(
        outcome.failures.is_empty(),
        "no failure may be recorded for a healed partition: {:?}",
        outcome.failures
    );
    let views: Vec<transport::RankView> = outcome.values.iter().map(|b| decode_view(b)).collect();
    assert_eq!(
        views, baseline,
        "post-heal pipeline must be leaf-identical to the fault-free run"
    );
    assert!(
        reconnects() > before,
        "the heal must have gone through at least one transport reconnect"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected bit corruption is caught by the frame CRC, surfaces as a
/// broken link (typed, never a panic), and the reconnect + replay path
/// resynchronizes: the pipeline still completes with digests
/// bit-identical to the fault-free run.
#[test]
fn wire_corruption_self_heals_bit_identical() {
    const P: usize = 4;
    let backend = tcp_backend(80);
    let reference = run_chaos_once(&Backend::Threads, P, None).expect("threads reference");
    for seed in [7u64, 21] {
        let plan = FaultPlan::new(seed)
            .with_net_corruption(0.05)
            .with_net_partial_writes(0.1)
            .with_net_drops(0.02);
        let chaotic = run_chaos_once(&backend, P, Some(plan))
            .unwrap_or_else(|e| panic!("corrupted wire must self-heal, seed {seed}: {e}"));
        assert_eq!(
            chaotic, reference,
            "digest diverged under wire corruption, seed {seed}"
        );
    }
}

/// A scheduled hard connection reset (RST right after a chosen data
/// frame) forces the reconnect path deterministically: the pipeline
/// completes bit-identically and the supervisor counts the reconnect.
#[test]
fn scheduled_reset_reconnects_and_completes() {
    const P: usize = 4;
    let before = reconnects();
    let reference = run_chaos_once(&Backend::Threads, P, None).expect("threads reference");
    let plan = FaultPlan::new(5).with_net_reset_at(1, 5);
    let result = run_chaos_once(&tcp_backend(80), P, Some(plan))
        .expect("a reset inside the grace window must not fail the world");
    assert_eq!(result, reference, "digest diverged after connection reset");
    assert!(
        reconnects() > before,
        "the reset must have forced at least one transport reconnect"
    );
}

/// A partition that outlives the death window is a real failure: the
/// victim is declared dead via missed heartbeats, the error is a typed
/// `PeerFailed` naming the rank, and one recovery retry restores a
/// leaf-identical forest from the checkpoint.
#[test]
fn permanent_partition_escalates_to_peer_failed_and_recovers() {
    const P: usize = 4;
    const SEED: u64 = 0xDEAD;
    let baseline = baseline_views(P, SEED, "perm-baseline");

    let dir = scratch_dir("perm");
    // outbound-only: rank 1 keeps receiving but its heartbeats vanish
    // for 30 s — far past the 1 s death window
    let plan = FaultPlan::new(SEED).with_net_partition(1, NetDir::Out, 3, Duration::from_secs(30));
    let opts = RecoveryOptions {
        policy: RecoveryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            ..RecoveryPolicy::default()
        },
        plans: vec![Some(plan)],
        ..RecoveryOptions::default()
    };
    let outcome = run_with_recovery_program(
        &tcp_backend(40), // 1 s death window
        P,
        opts,
        &transport::registry(),
        RECOVERY_PIPELINE,
        &recovery_args(&dir, SEED),
    )
    .expect("recovery must converge after the permanent partition");

    assert_eq!(outcome.attempts, 2, "exactly one retry expected");
    let death = &outcome.failures[0];
    assert_eq!(death.origin, 1, "the partitioned rank must be the origin");
    let origin = death.origin_failure().expect("origin failure recorded");
    assert!(
        matches!(
            origin.error,
            RankError::Failed(CommError::PeerFailed { rank: 1, .. })
        ),
        "a permanent partition must surface as PeerFailed, got: {:?}",
        origin.error
    );
    assert!(
        death.reason.contains("heartbeat"),
        "death must be attributed to the missed-heartbeat window: {}",
        death.reason
    );
    let recovered: Vec<transport::RankView> =
        outcome.values.iter().map(|b| decode_view(b)).collect();
    assert_eq!(
        recovered, baseline,
        "recovered forest must be leaf-identical to the fault-free run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
