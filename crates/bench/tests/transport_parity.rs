//! One parameterized harness, three transports.
//!
//! Every test here runs the same registered programs (see
//! `quadforest_bench::transport`) on the in-process thread backend,
//! the Unix-socket process-per-rank backend, and the TCP
//! process-per-rank backend, and demands identical observable
//! behavior: bit-identical pipeline digests under fault injection,
//! identically-shaped failure reports for scheduled rank deaths, and
//! recovery to a leaf-identical forest — including from a real
//! `SIGKILL` of a rank *process* mid-pipeline, something the thread
//! backend can only approximate.
//!
//! The worker executable for socket worlds is the `repro` binary
//! itself: its `main` calls `maybe_run_socket_child(&registry())`
//! first, so spawning it with the supervisor's environment variables
//! set turns it into a rank process running the requested program.

use quadforest_bench::transport::{
    self, decode_digest, decode_view, recovery_args, CHAOS_PIPELINE, RECOVERY_PIPELINE,
};
use quadforest_comm::{
    run_with_recovery_program, try_run_program, Attempt, Backend, CommError, FaultPlan, RankError,
    RecoveryOptions, RecoveryPolicy, RunOptions, SocketOptions, TcpOptions,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The repro binary doubles as the socket-backend worker.
fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_repro"))
}

/// Socket options tightened for CI: fast heartbeats, a death window
/// short enough that stall tests finish quickly but wide enough to
/// survive a loaded machine.
fn socket_backend() -> Backend {
    let mut o = SocketOptions::new(worker());
    o.heartbeat_interval = Duration::from_millis(25);
    o.heartbeat_grace = 40; // 1 s death window
    Backend::Sockets(o)
}

/// TCP options with the same liveness budget as the socket backend;
/// the reconnect schedule stays at its defaults (it only engages when
/// a connection actually breaks, which these parity tests don't do).
fn tcp_backend() -> Backend {
    let mut o = TcpOptions::new(worker());
    o.heartbeat_interval = Duration::from_millis(25);
    o.heartbeat_grace = 40; // 1 s death window
    Backend::Tcp(o)
}

/// The parameterization: every test body runs once per backend.
fn backends() -> Vec<Backend> {
    vec![Backend::Threads, socket_backend(), tcp_backend()]
}

/// A fresh scratch directory unique to this process + call site.
fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qf-transport-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_chaos_once(
    backend: &Backend,
    p: usize,
    faults: Option<FaultPlan>,
) -> Result<Vec<transport::PipelineDigest>, quadforest_comm::WorldError> {
    let opts = RunOptions {
        faults,
        ..RunOptions::default()
    };
    try_run_program(
        backend,
        p,
        &opts,
        &transport::registry(),
        CHAOS_PIPELINE,
        &[],
        Attempt::first(),
    )
    .map(|vals| vals.iter().map(|b| decode_digest(b)).collect())
}

/// The chaos suite of `repro --chaos`, on both backends: seeded delay +
/// reorder plans must leave the pipeline digest bit-identical to the
/// fault-free run, and the digest must also agree *across* backends —
/// serializing every payload through Wire frames cannot change a single
/// leaf.
#[test]
fn chaos_digests_are_identical_across_backends() {
    for &p in &[1usize, 2, 4] {
        let reference = run_chaos_once(&Backend::Threads, p, None).expect("threads fault-free");
        for backend in backends() {
            let clean = run_chaos_once(&backend, p, None)
                .unwrap_or_else(|e| panic!("{} fault-free run failed: {e}", backend.name()));
            assert_eq!(
                clean,
                reference,
                "fault-free digest diverged on {} at P={p}",
                backend.name()
            );
            for seed in [11u64, 33] {
                let plan = FaultPlan::new(seed)
                    .with_delays(0.2, Duration::from_micros(100))
                    .with_reordering(0.25);
                let chaotic = run_chaos_once(&backend, p, Some(plan))
                    .unwrap_or_else(|e| panic!("{} chaos run failed: {e}", backend.name()));
                assert_eq!(
                    chaotic,
                    reference,
                    "chaos digest diverged on {} at P={p} seed={seed}",
                    backend.name()
                );
            }
        }
    }
}

/// A scheduled rank death is reported, not hung, on both backends: the
/// world error names the victim as origin and carries the fault
/// injection reason. The failure *mechanism* differs — a panic on
/// threads, collateral abort of a real process world on sockets — but
/// the report shape is the same.
#[test]
fn scheduled_panic_death_is_reported_on_both_backends() {
    for backend in backends() {
        let plan = FaultPlan::new(1).with_panic_at(2, 9);
        let err = run_chaos_once(&backend, 4, Some(plan))
            .expect_err("scheduled death must fail the world");
        assert_eq!(err.origin, 2, "wrong origin on {}", backend.name());
        assert!(
            err.reason
                .contains("fault injection: scheduled panic at comm op 9"),
            "reason not preserved on {}: {}",
            backend.name(),
            err.reason
        );
    }
}

/// ACCEPTANCE: a rank process is `kill -9`ed mid-pipeline on each
/// process-per-rank backend (sockets and TCP); the supervisor detects
/// the death as `CommError::PeerFailed`, `run_with_recovery_program`
/// restarts a fresh set of processes, the retry restores the last good
/// checkpoint, and the recovered forest is leaf-identical to the
/// fault-free run.
#[test]
fn sigkill_mid_pipeline_recovers_leaf_identical_forest() {
    const P: usize = 4;
    const SEED: u64 = 0xC0FFEE;

    // fault-free reference views, threads backend
    let baseline_dir = scratch_dir("sigkill-baseline");
    let baseline = try_run_program(
        &Backend::Threads,
        P,
        &RunOptions::default(),
        &transport::registry(),
        RECOVERY_PIPELINE,
        &recovery_args(&baseline_dir, SEED),
        Attempt::first(),
    )
    .expect("baseline run");
    let baseline: Vec<transport::RankView> = baseline.iter().map(|b| decode_view(b)).collect();
    let _ = std::fs::remove_dir_all(&baseline_dir);

    for backend in [socket_backend(), tcp_backend()] {
        let dir = scratch_dir("sigkill");
        let args = recovery_args(&dir, SEED);

        // attempt 0: rank 1's process is SIGKILLed at its 10th comm op —
        // after the checkpoint save, mid expensive phases
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            plans: vec![Some(FaultPlan::new(SEED).with_sigkill_at(1, 10))],
            ..RecoveryOptions::default()
        };
        let outcome = run_with_recovery_program(
            &backend,
            P,
            opts,
            &transport::registry(),
            RECOVERY_PIPELINE,
            &args,
        )
        .unwrap_or_else(|e| {
            panic!(
                "{}: recovery must converge after the SIGKILL: {e}",
                backend.name()
            )
        });

        assert_eq!(
            outcome.attempts,
            2,
            "exactly one retry expected on {}",
            backend.name()
        );
        let death = &outcome.failures[0];
        assert_eq!(
            death.origin,
            1,
            "the SIGKILLed rank must be the origin on {}",
            backend.name()
        );
        let origin = death.origin_failure().expect("origin failure recorded");
        assert!(
            matches!(
                origin.error,
                RankError::Failed(CommError::PeerFailed { rank: 1, .. })
            ),
            "a real process death must surface as PeerFailed on {}, got: {:?}",
            backend.name(),
            origin.error
        );
        let recovered: Vec<transport::RankView> =
            outcome.values.iter().map(|b| decode_view(b)).collect();
        assert_eq!(
            recovered,
            baseline,
            "recovered forest must be leaf-identical to the fault-free run ({})",
            backend.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The PR 4 kill-point scan, parameterized over backends: kill the
/// victim at a sweep of comm-op indices; every death must recover to
/// the fault-free views. Threads sweeps panics densely; sockets sweeps
/// real SIGKILLs at a stride (process spawns are ~10³× costlier than
/// thread spawns).
#[test]
fn kill_point_scan_recovers_on_both_backends() {
    const P: usize = 3;
    const SEED: u64 = 0xBEEF;
    const VICTIM: usize = 1;

    let baseline_dir = scratch_dir("scan-baseline");
    let baseline = try_run_program(
        &Backend::Threads,
        P,
        &RunOptions::default(),
        &transport::registry(),
        RECOVERY_PIPELINE,
        &recovery_args(&baseline_dir, SEED),
        Attempt::first(),
    )
    .expect("baseline run");
    let baseline: Vec<transport::RankView> = baseline.iter().map(|b| decode_view(b)).collect();
    let _ = std::fs::remove_dir_all(&baseline_dir);

    for backend in backends() {
        let (stride, cap) = match backend {
            Backend::Threads => (1u64, u64::MAX),
            Backend::Sockets(_) | Backend::Tcp(_) => (7, 42),
        };
        let mut op = 0u64;
        let mut deaths = 0u32;
        loop {
            let dir = scratch_dir("scan");
            let plan = match backend {
                Backend::Threads => FaultPlan::new(SEED).with_panic_at(VICTIM, op),
                Backend::Sockets(_) | Backend::Tcp(_) => {
                    FaultPlan::new(SEED).with_sigkill_at(VICTIM, op)
                }
            };
            let opts = RecoveryOptions {
                policy: RecoveryPolicy {
                    max_attempts: 2,
                    base_delay: Duration::from_micros(200),
                    ..RecoveryPolicy::default()
                },
                plans: vec![Some(plan)],
                ..RecoveryOptions::default()
            };
            let outcome = run_with_recovery_program(
                &backend,
                P,
                opts,
                &transport::registry(),
                RECOVERY_PIPELINE,
                &recovery_args(&dir, SEED),
            )
            .unwrap_or_else(|e| panic!("op {op} on {}: recovery failed: {e}", backend.name()));
            let views: Vec<transport::RankView> =
                outcome.values.iter().map(|b| decode_view(b)).collect();
            assert_eq!(
                views,
                baseline,
                "op {op} on {}: recovered forest differs from fault-free",
                backend.name()
            );
            let _ = std::fs::remove_dir_all(&dir);
            if outcome.attempts == 1 {
                // the scheduled death fell past the end of the program —
                // the scan is complete
                break;
            }
            deaths += 1;
            op += stride;
            if op >= cap {
                break;
            }
        }
        assert!(
            deaths >= 3,
            "scan on {} must actually exercise several kill points, got {deaths}",
            backend.name()
        );
    }
}

/// ACCEPTANCE (observability): every mid-pipeline death leaves a
/// decodable flight-recorder postmortem on disk whose rendering names
/// the victim's last communication operation and phase. Exercised on
/// both failure mechanisms: a real `SIGKILL` of a rank process (the
/// supervisor dumps `flight-sup.qfr` carrying the victim's last
/// heartbeat-reported comm op) and a scheduled panic on the thread
/// backend (the shared ring dumps with the victim's own events).
///
/// The postmortem directory is process-global and tests in this binary
/// run in parallel, so other kill tests may dump here too once the dir
/// is set; assertions are therefore existential (some decodable dump
/// with the expected content), never exhaustive.
#[test]
fn mid_pipeline_death_leaves_decodable_postmortem() {
    use quadforest_telemetry::flight::{FlightDump, FlightKind};

    const SEED: u64 = 0xD0D0;
    let dump_dir = scratch_dir("postmortem");
    std::fs::create_dir_all(&dump_dir).expect("create postmortem dir");
    quadforest_telemetry::flight::set_postmortem_dir(&dump_dir);

    for backend in backends() {
        let victim = 2usize;
        let plan = match backend {
            Backend::Threads => FaultPlan::new(SEED).with_panic_at(victim, 9),
            Backend::Sockets(_) | Backend::Tcp(_) => {
                FaultPlan::new(SEED).with_sigkill_at(victim, 9)
            }
        };
        let err = run_chaos_once(&backend, 4, Some(plan))
            .expect_err("scheduled death must fail the world");
        assert_eq!(err.origin, victim, "wrong origin on {}", backend.name());

        let mut decoded = 0usize;
        let mut named_comm_op = false;
        for entry in std::fs::read_dir(&dump_dir).expect("read postmortem dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("qfr") {
                continue;
            }
            let bytes = std::fs::read(&path).expect("read .qfr");
            let dump = FlightDump::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} is not decodable: {e}", path.display()));
            decoded += 1;
            let text = dump.render();
            assert!(!text.is_empty(), "empty rendering for {}", path.display());
            // The supervisor-side dump records the death as a PeerFailed
            // event whose rendering names the last comm op and phase; a
            // victim-side dump names its own comm traffic directly.
            let has_peer_failed = dump.events.iter().any(|e| e.kind == FlightKind::PeerFailed);
            let has_comm = dump.events.iter().any(|e| {
                matches!(
                    e.kind,
                    FlightKind::CommSend | FlightKind::CommRecv | FlightKind::Collective
                )
            });
            if (has_peer_failed && text.contains("comm op")) || has_comm {
                named_comm_op = true;
            }
        }
        assert!(
            decoded > 0,
            "{}: death produced no decodable .qfr postmortem in {}",
            backend.name(),
            dump_dir.display()
        );
        assert!(
            named_comm_op,
            "{}: no postmortem names the victim's communication activity",
            backend.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// A rank that silently stops heartbeating (but whose connection stays
/// open) is declared dead by the supervisor's missed-heartbeat window —
/// the liveness path that EOF detection cannot cover. On TCP this also
/// proves an *open but silent* connection cannot satisfy liveness: the
/// session layer's acks are no substitute for heartbeats.
#[test]
fn stalled_rank_is_detected_via_missed_heartbeats() {
    let mut sock = SocketOptions::new(worker());
    sock.heartbeat_interval = Duration::from_millis(20);
    sock.heartbeat_grace = 10; // 200 ms death window
    let mut tcp = TcpOptions::new(worker());
    tcp.heartbeat_interval = Duration::from_millis(20);
    tcp.heartbeat_grace = 10; // 200 ms death window
    for backend in [Backend::Sockets(sock), Backend::Tcp(tcp)] {
        let plan = FaultPlan::new(3).with_stall_at(2, 6);
        let err = run_chaos_once(&backend, 4, Some(plan))
            .expect_err("a stalled rank must fail the world, not hang it");
        assert_eq!(err.origin, 2, "wrong origin on {}", backend.name());
        assert!(
            err.reason.contains("heartbeat"),
            "stall must be attributed to the missed-heartbeat window on {}: {}",
            backend.name(),
            err.reason
        );
    }
}
