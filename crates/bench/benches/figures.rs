//! Criterion benches for Figures 2–7: every low-level kernel over every
//! quadrant representation on the paper's 2,396,745-octant workload
//! (Section 3.1), plus the Fig. 8 (contribution 5) manual-vs-automatic
//! vectorization comparison.
//!
//! Run with `cargo bench -p quadforest-bench --bench figures`; filter a
//! single figure with e.g. `-- fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quadforest_bench::*;
use quadforest_core::batch;
use quadforest_core::quadrant::{AvxQuad, Morton128Quad, MortonQuad, Quadrant, StandardQuad};
use quadforest_core::scalar_ref::{self, QuadSoA};

type S3 = StandardQuad<3>;
type M3 = MortonQuad<3>;
type A3 = AvxQuad<3>;
type W3 = Morton128Quad<3>;

fn bench_quad_kernel<Q: Quadrant>(
    c: &mut Criterion,
    group: &str,
    kernel: fn(&[Q]) -> u64,
    filter_roots: bool,
) {
    let mut data = paper_workload::<Q>();
    if filter_roots {
        data = nonroot(data);
    }
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_with_input(BenchmarkId::new(Q::NAME, data.len()), &data, |b, d| {
        b.iter(|| kernel(d))
    });
    g.finish();
}

fn fig2_morton(c: &mut Criterion) {
    let inputs = paper_morton_inputs(3);
    let mut g = c.benchmark_group("fig2_morton");
    g.sample_size(20);
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function(BenchmarkId::new("standard", inputs.len()), |b| {
        b.iter(|| kernel_morton::<S3>(&inputs))
    });
    g.bench_function(BenchmarkId::new("morton", inputs.len()), |b| {
        b.iter(|| kernel_morton::<M3>(&inputs))
    });
    g.bench_function(BenchmarkId::new("avx", inputs.len()), |b| {
        b.iter(|| kernel_morton::<A3>(&inputs))
    });
    g.bench_function(BenchmarkId::new("morton128", inputs.len()), |b| {
        b.iter(|| kernel_morton::<W3>(&inputs))
    });
    g.finish();
}

fn fig3_child(c: &mut Criterion) {
    bench_quad_kernel::<S3>(c, "fig3_child", kernel_child, false);
    bench_quad_kernel::<M3>(c, "fig3_child", kernel_child, false);
    bench_quad_kernel::<A3>(c, "fig3_child", kernel_child, false);
    bench_quad_kernel::<W3>(c, "fig3_child", kernel_child, false);
}

fn fig4_fneigh(c: &mut Criterion) {
    bench_quad_kernel::<S3>(c, "fig4_fneigh", kernel_fneigh, false);
    bench_quad_kernel::<M3>(c, "fig4_fneigh", kernel_fneigh, false);
    bench_quad_kernel::<A3>(c, "fig4_fneigh", kernel_fneigh, false);
    bench_quad_kernel::<W3>(c, "fig4_fneigh", kernel_fneigh, false);
}

fn fig5_parent(c: &mut Criterion) {
    bench_quad_kernel::<S3>(c, "fig5_parent", kernel_parent, true);
    bench_quad_kernel::<M3>(c, "fig5_parent", kernel_parent, true);
    bench_quad_kernel::<A3>(c, "fig5_parent", kernel_parent, true);
    bench_quad_kernel::<W3>(c, "fig5_parent", kernel_parent, true);
}

fn fig6_sibling(c: &mut Criterion) {
    bench_quad_kernel::<S3>(c, "fig6_sibling", kernel_sibling, true);
    bench_quad_kernel::<M3>(c, "fig6_sibling", kernel_sibling, true);
    bench_quad_kernel::<A3>(c, "fig6_sibling", kernel_sibling, true);
    bench_quad_kernel::<W3>(c, "fig6_sibling", kernel_sibling, true);
}

fn fig7_boundaries(c: &mut Criterion) {
    bench_quad_kernel::<S3>(c, "fig7_boundaries", kernel_boundaries, false);
    bench_quad_kernel::<M3>(c, "fig7_boundaries", kernel_boundaries, false);
    bench_quad_kernel::<A3>(c, "fig7_boundaries", kernel_boundaries, false);
    bench_quad_kernel::<W3>(c, "fig7_boundaries", kernel_boundaries, false);
}

/// Contribution 5: explicit AVX2 vectorization against the compiler's
/// auto-vectorization of the same per-element logic, over the identical
/// SoA memory layout, plus the AoS 128-bit representation for reference.
fn fig8_autovec(c: &mut Criterion) {
    const L: u8 = S3::MAX_LEVEL;
    let quads = nonroot(paper_workload::<S3>());
    let soa = QuadSoA::from_quads(&quads);
    let mut out = QuadSoA::with_len(soa.len());
    let n = soa.len() as u64;

    let mut g = c.benchmark_group("fig8_autovec_parent");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    g.bench_function("scalar_autovec", |b| {
        b.iter(|| scalar_ref::parent_all(&soa, L, &mut out))
    });
    g.bench_function("manual_avx2_256", |b| {
        b.iter(|| batch::parent_all(&soa, L, &mut out))
    });
    g.finish();

    let mut g = c.benchmark_group("fig8_autovec_child");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    g.bench_function("scalar_autovec", |b| {
        b.iter(|| scalar_ref::child_all(&soa, 5, L, &mut out))
    });
    g.bench_function("manual_avx2_256", |b| {
        b.iter(|| batch::child_all(&soa, 5, L, &mut out))
    });
    g.finish();

    let mut g = c.benchmark_group("fig8_autovec_boundaries");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    let len = soa.len();
    let (mut fx, mut fy, mut fz) = (vec![0; len], vec![0; len], vec![0; len]);
    g.bench_function("scalar_autovec", |b| {
        b.iter(|| scalar_ref::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz]))
    });
    g.bench_function("manual_avx2_256", |b| {
        b.iter(|| batch::tree_boundaries_all(&soa, 3, L, [&mut fx, &mut fy, &mut fz]))
    });
    g.finish();
}

criterion_group!(
    figures,
    fig2_morton,
    fig3_child,
    fig4_fneigh,
    fig5_parent,
    fig6_sibling,
    fig7_boundaries,
    fig8_autovec
);
criterion_main!(figures);
