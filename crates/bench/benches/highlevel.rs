//! High-level algorithm benchmarks — beyond the paper's Figures 2–7
//! (which measure isolated low-level kernels), these time the *composed*
//! AMR operations the paper's follow-up work targets: refine, 2:1
//! balance, partition and ghost construction, each under every quadrant
//! representation, on 4 simulated ranks.
//!
//! Run with `cargo bench -p quadforest-bench --bench highlevel`.

use criterion::{criterion_group, criterion_main, Criterion};
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{AvxQuad, HilbertQuad, MortonQuad, Quadrant, StandardQuad};
use quadforest_forest::{BalanceKind, Forest};
use std::sync::Arc;

const RANKS: usize = 4;
const INIT_LEVEL: u8 = 4;
const MAX_LEVEL: u8 = 7;

/// Diagonal-band refinement flag (geometry-keyed: identical mesh for
/// every representation and curve).
fn band<Q: Quadrant>(q: &Q) -> bool {
    let root = Q::len_at(0) as i64;
    let c = q.coords();
    let h = q.side() as i64;
    let x = c[0] as i64 * 2 + h;
    let y = c[1] as i64 * 2 + h;
    (x + y - 2 * root).abs() < 3 * h
}

fn pipeline<Q: Quadrant>(stage: u32) -> u64 {
    let out = quadforest_comm::run(RANKS, move |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Q>::new_uniform(conn, &comm, INIT_LEVEL);
        if stage == 0 {
            return f.global_count();
        }
        f.refine(&comm, true, |_, q| q.level() < MAX_LEVEL && band(q));
        if stage == 1 {
            return f.global_count();
        }
        f.balance(&comm, BalanceKind::Face);
        if stage == 2 {
            return f.global_count();
        }
        f.partition(&comm);
        if stage == 3 {
            return f.global_count();
        }
        let ghost = f.ghost(&comm, BalanceKind::Face);
        f.global_count() + ghost.len() as u64
    });
    out[0]
}

fn bench_stage(c: &mut Criterion, name: &str, stage: u32) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("standard", |b| {
        b.iter(|| pipeline::<StandardQuad<2>>(stage))
    });
    g.bench_function("morton", |b| b.iter(|| pipeline::<MortonQuad<2>>(stage)));
    g.bench_function("avx", |b| b.iter(|| pipeline::<AvxQuad<2>>(stage)));
    g.bench_function("hilbert", |b| b.iter(|| pipeline::<HilbertQuad>(stage)));
    g.finish();
}

fn highlevel(c: &mut Criterion) {
    bench_stage(c, "highlevel_create", 0);
    bench_stage(c, "highlevel_refine", 1);
    bench_stage(c, "highlevel_balance", 2);
    bench_stage(c, "highlevel_partition", 3);
    bench_stage(c, "highlevel_ghost", 4);
}

criterion_group!(highlevel_suite, highlevel);
criterion_main!(highlevel_suite);
