//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **Morton codec**: magic-number shift/mask vs. hardware BMI2
//!   `pdep`/`pext` vs. byte lookup tables,
//! * **SFC comparison key**: the raw-Morton `rotate_left(8)` trick vs.
//!   the generic decode-and-compare path,
//! * **register-width mixing** (paper Section 2.3): the production
//!   two-coordinates-per-128-bit `AVX_Morton` vs. an all-three-in-256-bit
//!   variant — the paper reports the mixed version slower.
//!
//! Run with `cargo bench -p quadforest-bench --bench ablation`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quadforest_bench::*;
use quadforest_core::morton;
use quadforest_core::quadrant::{
    ablation, AvxQuad, HilbertQuad, MortonQuad, Quadrant, StandardQuad,
};
use std::hint::black_box;

fn codec_inputs() -> Vec<(u32, u32, u32)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..1_000_000)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (
                (state >> 10) as u32 & 0x3_FFFF,
                (state >> 28) as u32 & 0x3_FFFF,
                (state >> 46) as u32 & 0x3_FFFF,
            )
        })
        .collect()
}

fn codec_variants(c: &mut Criterion) {
    let inputs = codec_inputs();
    let mut g = c.benchmark_group("ablation_codec3_encode");
    g.sample_size(20);
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function("magic", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &inputs {
                acc = acc.wrapping_add(morton::encode3(x, y, z));
            }
            black_box(acc)
        })
    });
    if quadforest_core::simd::has_bmi2() {
        g.bench_function("bmi2_pdep", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(x, y, z) in &inputs {
                    acc = acc.wrapping_add(morton::encode3_rt(x, y, z));
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("lut", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &inputs {
                acc = acc.wrapping_add(morton::lut::encode3(x, y, z));
            }
            black_box(acc)
        })
    });
    g.finish();

    let codes: Vec<u64> = codec_inputs()
        .iter()
        .map(|&(x, y, z)| morton::encode3(x, y, z))
        .collect();
    let mut g = c.benchmark_group("ablation_codec3_decode");
    g.sample_size(20);
    g.throughput(Throughput::Elements(codes.len() as u64));
    g.bench_function("magic", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &m in &codes {
                let (x, y, z) = morton::decode3(m);
                acc = acc.wrapping_add(x ^ y ^ z);
            }
            black_box(acc)
        })
    });
    if quadforest_core::simd::has_bmi2() {
        g.bench_function("bmi2_pext", |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &m in &codes {
                    let (x, y, z) = morton::decode3_rt(m);
                    acc = acc.wrapping_add(x ^ y ^ z);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn sfc_compare_key(c: &mut Criterion) {
    let quads = paper_workload::<MortonQuad<3>>();
    let mut g = c.benchmark_group("ablation_sfc_compare");
    g.sample_size(20);
    g.throughput(Throughput::Elements(quads.len() as u64 - 1));
    g.bench_function("rotate_key", |b| {
        b.iter(|| {
            let mut lt = 0u64;
            for w in quads.windows(2) {
                // the specialized override: one rotation + compare
                if w[0].compare_sfc(&w[1]).is_lt() {
                    lt += 1;
                }
            }
            black_box(lt)
        })
    });
    g.bench_function("decode_compare", |b| {
        b.iter(|| {
            let mut lt = 0u64;
            for w in quads.windows(2) {
                // the generic path every representation gets by default
                let ord = w[0]
                    .morton_abs()
                    .cmp(&w[1].morton_abs())
                    .then_with(|| w[0].level().cmp(&w[1].level()));
                if ord.is_lt() {
                    lt += 1;
                }
            }
            black_box(lt)
        })
    });
    g.finish();
}

fn register_mixing(c: &mut Criterion) {
    let inputs = paper_morton_inputs(3);
    let mut g = c.benchmark_group("ablation_register_mixing");
    g.sample_size(20);
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function("avx_morton_128_production", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(i, l) in &inputs {
                let q = AvxQuad::<3>::from_morton(i, l);
                acc = acc.wrapping_add(black_box(&q).level() as u64);
            }
            acc
        })
    });
    g.bench_function("avx_morton_mixed_256", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(i, l) in &inputs {
                let q = ablation::from_morton3_mixed256(i, l);
                acc = acc.wrapping_add(black_box(&q).level() as u64);
            }
            acc
        })
    });
    g.finish();
}

/// Space-filling-curve trade-off: the Morton curve's curve-order
/// operations are `O(1)` bit manipulations while the Hilbert curve's
/// require an `O(level)` state walk — the complexity difference behind
/// the paper's choice to defer alternative curves to future research.
/// (2D workload; the Hilbert representation is 2D.)
fn curve_tradeoff(c: &mut Criterion) {
    let inputs = workload::morton_inputs(2, WORKLOAD_MAX_LEVEL);
    let mut g = c.benchmark_group("ablation_curve_from_index");
    g.sample_size(20);
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function("morton_standard", |b| {
        b.iter(|| kernel_morton::<StandardQuad<2>>(&inputs))
    });
    g.bench_function("hilbert", |b| {
        b.iter(|| kernel_morton::<HilbertQuad>(&inputs))
    });
    g.finish();

    let mq = workload::complete_tree::<MortonQuad<2>>(WORKLOAD_MAX_LEVEL);
    let hq = workload::complete_tree::<HilbertQuad>(WORKLOAD_MAX_LEVEL);
    let mut g = c.benchmark_group("ablation_curve_child");
    g.sample_size(20);
    g.throughput(Throughput::Elements(mq.len() as u64));
    g.bench_function("morton_raw", |b| b.iter(|| kernel_child(&mq)));
    g.bench_function("hilbert", |b| b.iter(|| kernel_child(&hq)));
    g.finish();
}

/// Guard bench for the telemetry layer's disabled-cost contract: with no
/// recorder installed, a `telemetry::span` call site must cost under 2 ns
/// (one relaxed atomic load plus an inert guard). The guard is a hard
/// assertion, not just a reported number — instrumenting the forest hot
/// paths is only acceptable while this holds.
fn span_overhead(c: &mut Criterion) {
    use quadforest_telemetry as telemetry;
    assert!(
        telemetry::disabled(),
        "no recorder may be installed when the guard bench runs"
    );
    // Differential measurement: the same loop with and without the span
    // call site, so the loop/black_box scaffolding cancels out and only
    // the span's own cost (atomic load + branch + inert guard drop) is
    // attributed to the site.
    const N: u64 = 20_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = std::time::Instant::now();
        for i in 0..N {
            black_box(i);
        }
        let base = t.elapsed();
        let t = std::time::Instant::now();
        for i in 0..N {
            let s = telemetry::span("guard.disabled");
            black_box(&s);
            black_box(i);
        }
        let with_span = t.elapsed();
        best = best.min(with_span.saturating_sub(base).as_secs_f64() * 1e9 / N as f64);
    }
    println!("disabled span site: {best:.3} ns (contract: < 2 ns)");
    assert!(
        best < 2.0,
        "disabled span costs {best:.3} ns per site, breaking the 2 ns contract"
    );

    let mut g = c.benchmark_group("ablation_span_overhead");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("disabled", |b| {
        b.iter(|| {
            for _ in 0..1_000_000u64 {
                let s = telemetry::span("guard.disabled");
                black_box(&s);
            }
        })
    });
    g.finish();
}

/// Guard bench for the flight recorder's disabled-cost contract: with the
/// ring unarmed, a `flight::event` call site must cost under 10 ns (one
/// `OnceLock` load and an untaken branch — the argument evaluation is
/// what keeps it above the span guard's bound). Transports and the query
/// executor carry these sites unconditionally, so this is the price every
/// un-instrumented run pays.
fn flight_overhead(c: &mut Criterion) {
    use quadforest_telemetry::flight;
    assert!(
        !flight::armed(),
        "the recorder may not be armed when the guard bench runs"
    );
    // Same differential trick as `span_overhead`: identical loops with and
    // without the event site, best-of-5 so scheduler noise can only
    // inflate, never flatter, the measured site cost.
    const N: u64 = 20_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = std::time::Instant::now();
        for i in 0..N {
            black_box(i);
        }
        let base = t.elapsed();
        let t = std::time::Instant::now();
        for i in 0..N {
            flight::event(flight::FlightKind::Heartbeat, 0, black_box(i), 0);
            black_box(i);
        }
        let with_event = t.elapsed();
        best = best.min(with_event.saturating_sub(base).as_secs_f64() * 1e9 / N as f64);
    }
    println!("disabled flight event site: {best:.3} ns (contract: < 10 ns)");
    assert!(
        best < 10.0,
        "disabled flight event costs {best:.3} ns per site, breaking the 10 ns contract"
    );

    let mut g = c.benchmark_group("ablation_flight_overhead");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("disabled", |b| {
        b.iter(|| {
            for i in 0..1_000_000u64 {
                flight::event(flight::FlightKind::Heartbeat, 0, black_box(i), 0);
            }
        })
    });
    g.finish();
}

criterion_group!(
    ablation_suite,
    codec_variants,
    sfc_compare_key,
    register_mixing,
    curve_tradeoff,
    span_overhead,
    flight_overhead
);
criterion_main!(ablation_suite);
