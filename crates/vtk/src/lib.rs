//! # quadforest-vtk
//!
//! Legacy-ASCII VTK ("unstructured grid") output for forest meshes, so
//! the example applications produce files viewable in ParaView/VisIt.
//! Each leaf becomes one `VTK_PIXEL` (2D) or `VTK_VOXEL` (3D) cell;
//! per-cell scalar fields (refinement level, owner rank, user data) are
//! attached as `CELL_DATA`.
//!
//! Trees are laid out in physical space by translating each tree's unit
//! cube to its position in a user-supplied embedding (for brick
//! connectivities this is the grid position; the default places all
//! trees along the x axis).

#![warn(missing_docs)]

use quadforest_comm::Comm;
use quadforest_connectivity::TreeId;
use quadforest_core::quadrant::Quadrant;
use quadforest_forest::Forest;
use std::io::{self, Write};

/// Physical embedding of trees: maps a tree id to the translation of its
/// unit cube in physical space.
pub type TreeEmbedding = dyn Fn(TreeId) -> [f64; 3];

/// A named per-cell scalar field evaluated by
/// `(tree, index within the tree's local leaves)`.
pub type CellField<'a> = (&'a str, &'a dyn Fn(TreeId, usize) -> f64);

/// Writer options.
pub struct VtkOptions<'a> {
    /// Dataset title (second header line).
    pub title: &'a str,
    /// Tree embedding; defaults to unit spacing along x.
    pub embedding: Option<&'a TreeEmbedding>,
    /// Extra per-cell scalar fields; see [`CellField`].
    pub cell_fields: Vec<CellField<'a>>,
}

impl Default for VtkOptions<'_> {
    fn default() -> Self {
        Self {
            title: "quadforest mesh",
            embedding: None,
            cell_fields: Vec::new(),
        }
    }
}

/// Write the rank-local part of the forest as a legacy VTK unstructured
/// grid.
pub fn write_local<Q: Quadrant>(
    forest: &Forest<Q>,
    w: &mut impl Write,
    opts: &VtkOptions<'_>,
) -> io::Result<()> {
    let dim = Q::DIM;
    let corners = 1usize << dim;
    let n = forest.local_count();
    let scale = 1.0 / Q::len_at(0) as f64;
    let default_embed = |t: TreeId| [t as f64, 0.0, 0.0];

    writeln!(w, "# vtk DataFile Version 2.0")?;
    writeln!(w, "{}", opts.title)?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;

    writeln!(w, "POINTS {} double", n * corners)?;
    for (t, q) in forest.leaves() {
        let origin = match opts.embedding {
            Some(e) => e(t),
            None => default_embed(t),
        };
        let c = q.coords();
        let h = q.side() as f64 * scale;
        let base = [
            origin[0] + c[0] as f64 * scale,
            origin[1] + c[1] as f64 * scale,
            origin[2] + c[2] as f64 * scale,
        ];
        // VTK_PIXEL / VTK_VOXEL corner order: x fastest, then y, then z
        for k in 0..corners {
            let x = base[0] + ((k & 1) as f64) * h;
            let y = base[1] + (((k >> 1) & 1) as f64) * h;
            let z = base[2]
                + if dim == 3 {
                    ((k >> 2) & 1) as f64 * h
                } else {
                    0.0
                };
            writeln!(w, "{x} {y} {z}")?;
        }
    }

    writeln!(w, "CELLS {} {}", n, n * (corners + 1))?;
    for i in 0..n {
        write!(w, "{corners}")?;
        for k in 0..corners {
            write!(w, " {}", i * corners + k)?;
        }
        writeln!(w)?;
    }

    let cell_type = if dim == 3 { 11 } else { 8 }; // VTK_VOXEL / VTK_PIXEL
    writeln!(w, "CELL_TYPES {n}")?;
    for _ in 0..n {
        writeln!(w, "{cell_type}")?;
    }

    writeln!(w, "CELL_DATA {n}")?;
    writeln!(w, "SCALARS level int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (_, q) in forest.leaves() {
        writeln!(w, "{}", q.level())?;
    }
    writeln!(w, "SCALARS rank int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for _ in 0..n {
        writeln!(w, "{}", forest.rank())?;
    }
    for (name, eval) in &opts.cell_fields {
        writeln!(w, "SCALARS {name} double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        let mut idx_in_tree = vec![0usize; forest.connectivity().num_trees()];
        for (t, _) in forest.leaves() {
            let i = idx_in_tree[t as usize];
            idx_in_tree[t as usize] += 1;
            writeln!(w, "{}", eval(t, i))?;
        }
    }
    Ok(())
}

/// Write one file per rank under `prefix` (collective convenience);
/// returns all file names, rank-ordered, on every rank.
pub fn write_files<Q: Quadrant>(
    forest: &Forest<Q>,
    comm: &Comm,
    prefix: &str,
    opts: &VtkOptions<'_>,
) -> io::Result<Vec<String>> {
    let path = format!("{prefix}_{:04}.vtk", comm.rank());
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write_local(forest, &mut file, opts)?;
    file.flush()?;
    Ok(comm.allgather(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::StandardQuad;
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    #[test]
    fn vtk_2d_structure() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let mut out = Vec::new();
            write_local(&f, &mut out, &VtkOptions::default()).unwrap();
            let s = String::from_utf8(out).unwrap();
            assert!(s.starts_with("# vtk DataFile Version 2.0"));
            assert!(s.contains("POINTS 16 double"));
            assert!(s.contains("CELLS 4 20"));
            assert!(s.contains("CELL_TYPES 4"));
            assert!(s.contains("SCALARS level int 1"));
        });
    }

    #[test]
    fn vtk_3d_voxels_and_fields() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            let field = |_t: TreeId, i: usize| i as f64 * 0.5;
            let opts = VtkOptions {
                title: "test",
                embedding: None,
                cell_fields: vec![("halfindex", &field)],
            };
            let mut out = Vec::new();
            write_local(&f, &mut out, &opts).unwrap();
            let s = String::from_utf8(out).unwrap();
            assert!(s.contains("POINTS 64 double"));
            assert!(s.contains("SCALARS halfindex double 1"));
            assert!(s.contains("3.5"));
        });
    }

    #[test]
    fn vtk_coordinates_cover_unit_square() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let mut out = Vec::new();
            write_local(&f, &mut out, &VtkOptions::default()).unwrap();
            let s = String::from_utf8(out).unwrap();
            let coords: Vec<f64> = s
                .lines()
                .skip(5)
                .take(16)
                .flat_map(|l| l.split(' ').map(|v| v.parse::<f64>().unwrap()))
                .collect();
            let max = coords.iter().cloned().fold(f64::MIN, f64::max);
            let min = coords.iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(min, 0.0);
            assert_eq!(max, 1.0);
        });
    }

    #[test]
    fn brick_embedding_offsets_trees() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 0);
            let embed = |t: TreeId| [t as f64 * 1.0, 0.0, 0.0];
            let opts = VtkOptions {
                title: "brick",
                embedding: Some(&embed),
                cell_fields: vec![],
            };
            let mut out = Vec::new();
            write_local(&f, &mut out, &opts).unwrap();
            let s = String::from_utf8(out).unwrap();
            // tree 1's far corner reaches x = 2
            assert!(s.lines().any(|l| l.starts_with("2 ")));
        });
    }
}
