//! Ghost (halo) layer construction.
//!
//! The ghost layer of a rank is the set of *remote* leaves whose closed
//! domain touches the closed domain of at least one local leaf — p4est's
//! `p4est_ghost_new` with `P4EST_CONNECT_FULL` (or `_FACE` for face-only
//! adjacency). Construction is a two-round exchange:
//!
//! 1. **request**: every rank enumerates its leaves' same-size neighbor
//!    domains, resolves them through the connectivity, and asks the
//!    owner ranks of each domain's SFC range for leaves touching the
//!    contact region;
//! 2. **reply**: owners answer with their matching leaves, which the
//!    requester dedupes and sorts into the ghost array.
//!
//! All geometry runs in coordinate boxes (see `directions`), so the
//! algorithm is identical for every quadrant representation, including
//! the sign-free raw-Morton layouts.

use crate::directions::{for_each_neighbor_domain, offsets, Adjacency, Box3, NeighborScratch};
use crate::Forest;
use quadforest_comm::Comm;
use quadforest_core::quadrant::Quadrant;

/// A ghost quadrant: a remote leaf adjacent to the local domain.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GhostQuad<Q: Quadrant> {
    /// Rank owning the leaf.
    pub owner: usize,
    /// Tree containing the leaf.
    pub tree: u32,
    /// The remote leaf itself.
    pub quad: Q,
}

/// The ghost layer of a forest on one rank.
#[derive(Clone, Debug)]
pub struct GhostLayer<Q: Quadrant> {
    /// Ghosts sorted by `(tree, SFC position, level)`, deduplicated.
    pub ghosts: Vec<GhostQuad<Q>>,
}

impl<Q: Quadrant> Default for GhostLayer<Q> {
    fn default() -> Self {
        Self { ghosts: Vec::new() }
    }
}

impl<Q: Quadrant> GhostLayer<Q> {
    /// Number of ghosts.
    pub fn len(&self) -> usize {
        self.ghosts.len()
    }

    /// True when no ghosts exist (serial run or isolated rank).
    pub fn is_empty(&self) -> bool {
        self.ghosts.is_empty()
    }

    /// The ghosts living in `tree`, as a sorted slice.
    pub fn tree_ghosts(&self, tree: u32) -> &[GhostQuad<Q>] {
        let lo = self.ghosts.partition_point(|g| g.tree < tree);
        let hi = self.ghosts.partition_point(|g| g.tree <= tree);
        &self.ghosts[lo..hi]
    }

    /// Ghosts of `tree` whose subtree range overlaps the quadrant `q`
    /// (i.e. ghosts equal to, contained in, or containing `q`).
    pub fn overlapping(&self, tree: u32, q: &Q) -> &[GhostQuad<Q>] {
        let ghosts = self.tree_ghosts(tree);
        let first = q.first_descendant(Q::MAX_LEVEL).morton_abs();
        let last = q.last_descendant(Q::MAX_LEVEL).morton_abs();
        let lo =
            ghosts.partition_point(|g| g.quad.last_descendant(Q::MAX_LEVEL).morton_abs() < first);
        let hi = ghosts.partition_point(|g| g.quad.morton_abs() <= last);
        &ghosts[lo..hi]
    }
}

/// A request for leaves of `tree` overlapping the domain anchored at
/// `dom` (level `level`) whose closed domain intersects `contact`.
type Request = (u32, [i32; 3], u8, Box3);

impl<Q: Quadrant> Forest<Q> {
    /// Build the ghost layer (collective).
    pub fn ghost(&self, comm: &Comm, kind: crate::BalanceKind) -> GhostLayer<Q> {
        let _span = quadforest_telemetry::span("ghost");
        let adjacency = match kind {
            crate::BalanceKind::Face => Adjacency::Face,
            crate::BalanceKind::Full => Adjacency::Full,
        };

        // round 1: requests — batched SoA enumeration per tree (requests
        // are sorted and deduplicated below, so enumeration order does
        // not matter)
        let offs = offsets(Q::DIM, adjacency);
        let mut scratch = NeighborScratch::new();
        let mut outgoing: Vec<Vec<Request>> = (0..self.size).map(|_| Vec::new()).collect();
        for t in 0..self.trees.len() {
            for_each_neighbor_domain(
                self.connectivity(),
                t as u32,
                &self.trees[t],
                &offs,
                0,
                &mut scratch,
                |_, _, dom| {
                    let probe = Q::from_coords(dom.coords, dom.level);
                    for r in self.owners_of_subtree(dom.tree, &probe) {
                        if r != self.rank {
                            outgoing[r].push((dom.tree, dom.coords, dom.level, dom.contact));
                        }
                    }
                },
            );
        }
        for reqs in &mut outgoing {
            reqs.sort_by_key(|(t, c, l, _)| (*t, *l, c[0], c[1], c[2]));
            reqs.dedup();
        }
        quadforest_telemetry::counter_add(
            "forest.ghost.requests",
            outgoing.iter().map(|v| v.len() as u64).sum(),
        );
        let incoming = comm.alltoallv(outgoing);

        // round 2: replies
        let mut replies: Vec<Vec<(u32, Q)>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, reqs) in incoming.into_iter().enumerate() {
            for (tree, coords, level, contact) in reqs {
                let dom = Q::from_coords(coords, level);
                let range = self.overlapping_range(tree, &dom);
                for p in &self.trees[tree as usize][range] {
                    if Box3::of_quad(p).intersects(&contact, Q::DIM) {
                        replies[src].push((tree, *p));
                    }
                }
            }
        }
        let mut ghosts: Vec<GhostQuad<Q>> = Vec::new();
        for (owner, reply) in comm.alltoallv(replies).into_iter().enumerate() {
            for (tree, quad) in reply {
                ghosts.push(GhostQuad { owner, tree, quad });
            }
        }
        ghosts.sort_by(|a, b| {
            (a.tree, a.quad.morton_abs(), a.quad.level()).cmp(&(
                b.tree,
                b.quad.morton_abs(),
                b.quad.level(),
            ))
        });
        ghosts.dedup();
        quadforest_telemetry::gauge_set("forest.ghost.size", ghosts.len() as u64);
        self.guard_phase("ghost");
        GhostLayer { ghosts }
    }
}

impl<Q: Quadrant> GhostLayer<Q> {
    /// Exchange per-leaf application data: every ghost receives the
    /// value its owner holds for that leaf — the
    /// `p4est_ghost_exchange_data` equivalent. `local_data` must hold
    /// one value per local leaf in forest iteration order; the result
    /// holds one value per ghost in ghost order. Collective.
    pub fn exchange_data<T: Clone + quadforest_core::Wire + Send + 'static>(
        &self,
        forest: &Forest<Q>,
        comm: &Comm,
        local_data: &[T],
    ) -> Vec<T> {
        assert_eq!(
            local_data.len(),
            forest.local_count(),
            "one datum per local leaf required"
        );
        // global order index of each local leaf: (tree, abs, level) key
        // request each ghost's datum from its owner
        let mut requests: Vec<Vec<(u32, u64, u8)>> = (0..comm.size()).map(|_| Vec::new()).collect();
        for g in &self.ghosts {
            requests[g.owner].push((g.tree, g.quad.morton_abs(), g.quad.level()));
        }
        let incoming = comm.alltoallv(requests);
        // build the local lookup: key -> flat leaf index
        let mut index = std::collections::HashMap::new();
        for (i, (t, q)) in forest.leaves().enumerate() {
            index.insert((t, q.morton_abs(), q.level()), i);
        }
        let mut replies: Vec<Vec<T>> = (0..comm.size()).map(|_| Vec::new()).collect();
        for (src, reqs) in incoming.into_iter().enumerate() {
            for key in reqs {
                let i = index
                    .get(&key)
                    .unwrap_or_else(|| panic!("ghost request for non-local leaf {key:?}"));
                replies[src].push(local_data[*i].clone());
            }
        }
        let answers = comm.alltoallv(replies);
        // scatter answers back into ghost order
        let mut cursors = vec![0usize; comm.size()];
        self.ghosts
            .iter()
            .map(|g| {
                let c = cursors[g.owner];
                cursors[g.owner] += 1;
                answers[g.owner][c].clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directions::neighbor_domain;
    use crate::BalanceKind;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    /// Brute-force reference: gather everything everywhere and compute
    /// each rank's ghost layer by definition (closed-domain contact,
    /// including across tree faces).
    fn reference_ghosts<Q: Quadrant>(
        f: &Forest<Q>,
        comm: &Comm,
        adjacency: Adjacency,
    ) -> Vec<(u32, [i32; 3], u8)> {
        let all: Vec<(usize, u32, Q)> = comm
            .allgather(
                f.leaves()
                    .map(|(t, q)| (comm.rank(), t, *q))
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .flatten()
            .collect();
        let mut out = Vec::new();
        for (owner, gt, g) in &all {
            if *owner == comm.rank() {
                continue;
            }
            // is g adjacent to any local leaf? test via the local leaf's
            // neighbor domains (handles tree crossings symmetrically)
            let mut adjacent = false;
            'outer: for (t, q) in f.leaves() {
                for off in offsets(Q::DIM, adjacency) {
                    if let Some(dom) = neighbor_domain(f.connectivity(), t, q, off) {
                        if dom.tree == *gt {
                            let gb = Box3::of_quad(g);
                            let probe = Q::from_coords(dom.coords, dom.level);
                            if (probe.is_ancestor_of(g) || g.is_ancestor_of(&probe) || probe == *g)
                                && gb.intersects(&dom.contact, Q::DIM)
                            {
                                adjacent = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if adjacent {
                out.push((*gt, g.coords(), g.level()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn ghost_as_tuples<Q: Quadrant>(g: &GhostLayer<Q>) -> Vec<(u32, [i32; 3], u8)> {
        let mut v: Vec<_> = g
            .ghosts
            .iter()
            .map(|g| (g.tree, g.quad.coords(), g.quad.level()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn serial_run_has_no_ghosts() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            let g = f.ghost(&comm, BalanceKind::Full);
            assert!(g.is_empty());
        });
    }

    #[test]
    fn uniform_ghosts_match_reference() {
        for p in [2usize, 4, 7] {
            quadforest_comm::run(p, |comm| {
                let conn = Arc::new(Connectivity::unit(2));
                let f = Forest::<Q2>::new_uniform(conn, &comm, 3);
                let g = f.ghost(&comm, BalanceKind::Full);
                assert_eq!(
                    ghost_as_tuples(&g),
                    reference_ghosts(&f, &comm, Adjacency::Full),
                    "P = {p}"
                );
            });
        }
    }

    #[test]
    fn adaptive_ghosts_match_reference() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| q.coords()[0] == 0 && q.level() < 4);
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            let g = f.ghost(&comm, BalanceKind::Full);
            assert_eq!(
                ghost_as_tuples(&g),
                reference_ghosts(&f, &comm, Adjacency::Full)
            );
        });
    }

    #[test]
    fn face_ghosts_are_subset_of_full() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            let gf = ghost_as_tuples(&f.ghost(&comm, BalanceKind::Face));
            let gc = ghost_as_tuples(&f.ghost(&comm, BalanceKind::Full));
            assert!(gf.iter().all(|x| gc.contains(x)));
            assert!(gf.len() <= gc.len());
            assert_eq!(gf, reference_ghosts(&f, &comm, Adjacency::Face));
        });
    }

    #[test]
    fn multitree_ghosts_cross_tree_faces() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            // rank 0 owns tree 0, rank 1 owns tree 1 (16 leaves each)
            let g = f.ghost(&comm, BalanceKind::Face);
            assert_eq!(
                ghost_as_tuples(&g),
                reference_ghosts(&f, &comm, Adjacency::Face)
            );
            // the ghosts must live in the *other* tree and hug the
            // shared face
            for gq in &g.ghosts {
                assert_ne!(gq.owner, comm.rank());
            }
            assert!(!g.is_empty());
        });
    }

    #[test]
    fn morton_representation_ghosts_identical_to_standard() {
        let reference = quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            ghost_as_tuples(&f.ghost(&comm, BalanceKind::Full))
        });
        let morton = quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<MortonQuad<3>>::new_uniform(conn, &comm, 2);
            ghost_as_tuples(&f.ghost(&comm, BalanceKind::Full))
        });
        assert_eq!(reference, morton);
    }

    #[test]
    fn exchange_data_delivers_owner_values() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            f.refine(&comm, false, |_, q| q.morton_index() % 5 == 0);
            let g = f.ghost(&comm, BalanceKind::Full);
            // each leaf's datum is its identity key; ghosts must receive
            // exactly the key of the remote leaf they mirror
            let local: Vec<(usize, u32, u64, u8)> = f
                .leaves()
                .map(|(t, q)| (comm.rank(), t, q.morton_abs(), q.level()))
                .collect();
            let ghost_data = g.exchange_data(&f, &comm, &local);
            assert_eq!(ghost_data.len(), g.len());
            for (gq, datum) in g.ghosts.iter().zip(&ghost_data) {
                assert_eq!(
                    datum,
                    &(gq.owner, gq.tree, gq.quad.morton_abs(), gq.quad.level()),
                    "ghost must carry its owner's datum"
                );
            }
        });
    }

    #[test]
    fn exchange_data_roundtrip_after_balance() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            let center = [Q3::len_at(0) / 2; 3];
            f.refine(&comm, true, |_, q| {
                q.level() < 4 && q.contains_point(center)
            });
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            let g = f.ghost(&comm, BalanceKind::Face);
            let local: Vec<u8> = f.leaves().map(|(_, q)| q.level()).collect();
            let ghost_levels = g.exchange_data(&f, &comm, &local);
            for (gq, lvl) in g.ghosts.iter().zip(&ghost_levels) {
                assert_eq!(gq.quad.level(), *lvl);
            }
        });
    }

    #[test]
    fn ghosts_are_fault_oblivious() {
        use quadforest_comm::FaultPlan;
        use std::time::Duration;
        let program = |comm: quadforest_comm::Comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| q.coords()[0] == 0 && q.level() < 4);
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            ghost_as_tuples(&f.ghost(&comm, BalanceKind::Full))
        };
        let baseline = quadforest_comm::run(3, program);
        for seed in [5u64, 23] {
            let plan = FaultPlan::new(seed)
                .with_delays(0.25, Duration::from_micros(100))
                .with_reordering(0.25);
            let chaotic = quadforest_comm::run_with_faults(3, plan, program).unwrap();
            assert_eq!(baseline, chaotic, "seed {seed} changed the ghost layer");
        }
    }

    #[test]
    fn ghost_lookup_helpers() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            let g = f.ghost(&comm, BalanceKind::Full);
            assert_eq!(g.tree_ghosts(0).len(), g.len());
            for gq in &g.ghosts {
                let hits = g.overlapping(gq.tree, &gq.quad);
                assert!(hits.iter().any(|h| h.quad == gq.quad));
            }
        });
    }
}
