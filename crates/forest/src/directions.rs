//! Neighbor-direction enumeration shared by balance, ghost construction
//! and iteration.
//!
//! All cross-leaf reasoning in the high-level algorithms is done in pure
//! coordinate arithmetic (boxes and offsets), never by constructing
//! exterior quadrants — the raw-Morton representations carry no sign
//! bits, so exterior positions must not be materialized as quadrants.

use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::Quadrant;

/// Which neighbor relations an algorithm considers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Adjacency {
    /// Across faces only.
    Face,
    /// Across faces, edges (3D) and corners.
    Full,
}

/// Unit offsets `{-1,0,1}^d \ {0}` selecting same-size neighbor domains,
/// filtered by the adjacency kind. Face offsets have exactly one nonzero
/// component, edge offsets two, corner offsets `d`.
pub fn offsets(dim: u32, kind: Adjacency) -> Vec<[i32; 3]> {
    let mut out = Vec::new();
    let range = |_d: usize| -1i32..=1;
    for dz in if dim == 3 { range(2) } else { 0..=0 } {
        for dy in range(1) {
            for dx in range(0) {
                let nz = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                let keep = match kind {
                    Adjacency::Face => nz == 1,
                    Adjacency::Full => nz >= 1,
                };
                if keep {
                    out.push([dx, dy, dz]);
                }
            }
        }
    }
    out
}

/// An axis-aligned closed box in tree coordinates (possibly degenerate).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Box3 {
    /// Inclusive lower corner.
    pub lo: [i32; 3],
    /// Inclusive upper corner.
    pub hi: [i32; 3],
}

impl Box3 {
    /// Closed intersection test (shared boundary points count).
    #[inline]
    pub fn intersects(&self, other: &Box3, dim: u32) -> bool {
        (0..dim as usize).all(|a| self.lo[a] <= other.hi[a] && self.hi[a] >= other.lo[a])
    }

    /// The closed domain of a quadrant.
    #[inline]
    pub fn of_quad<Q: Quadrant>(q: &Q) -> Box3 {
        let c = q.coords();
        let h = q.side();
        Box3 {
            lo: c,
            hi: [c[0] + h, c[1] + h, if Q::DIM == 3 { c[2] + h } else { 0 }],
        }
    }

    /// Transform the box across a tree face, mapping both corners as
    /// points (`h = 0` reflection) and reordering.
    pub fn transformed(&self, tf: &quadforest_connectivity::FaceTransform, root: i32) -> Box3 {
        let a = tf.apply(self.lo, 0, root);
        let b = tf.apply(self.hi, 0, root);
        let mut lo = [0i32; 3];
        let mut hi = [0i32; 3];
        for i in 0..3 {
            lo[i] = a[i].min(b[i]);
            hi[i] = a[i].max(b[i]);
        }
        Box3 { lo, hi }
    }
}

/// A same-size neighbor domain of a quadrant, resolved against the
/// connectivity: in which tree it lives and where.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NeighborDomain {
    /// Tree holding the domain.
    pub tree: u32,
    /// Anchor of the domain (a valid quadrant anchor in that tree).
    pub coords: [i32; 3],
    /// Level (same as the originating quadrant).
    pub level: u8,
    /// Closed contact region between the originating quadrant and this
    /// domain, in the *domain's* tree frame.
    pub contact: Box3,
}

/// Compute the same-size neighbor domain of `q` in `tree` along `offset`,
/// resolving a single tree-face crossing through the connectivity.
///
/// Returns `None` when the domain lies outside the forest (physical
/// boundary) or when the offset crosses more than one tree face (edge /
/// corner tree connections are not modeled; see DESIGN.md).
pub fn neighbor_domain<Q: Quadrant>(
    conn: &Connectivity,
    tree: u32,
    q: &Q,
    offset: [i32; 3],
) -> Option<NeighborDomain> {
    let dim = Q::DIM;
    let h = q.side();
    let root = Q::len_at(0);
    let c = q.coords();
    let mut dom = [0i32; 3];
    for a in 0..3 {
        dom[a] = c[a] + offset[a] * h;
    }
    // contact box in the current frame
    let mut contact = Box3 {
        lo: [0; 3],
        hi: [0; 3],
    };
    for a in 0..3 {
        match offset[a] {
            0 => {
                contact.lo[a] = c[a];
                contact.hi[a] = c[a] + if (a as u32) < dim { h } else { 0 };
            }
            1 => {
                contact.lo[a] = c[a] + h;
                contact.hi[a] = c[a] + h;
            }
            _ => {
                contact.lo[a] = c[a];
                contact.hi[a] = c[a];
            }
        }
    }
    // which axes leave the root domain?
    let mut exit_face = None;
    let mut exits = 0;
    for (a, &d) in dom.iter().enumerate().take(dim as usize) {
        let f = if d < 0 {
            Some(2 * a as u32)
        } else if d + h > root {
            Some(2 * a as u32 + 1)
        } else {
            None
        };
        if let Some(f) = f {
            exits += 1;
            exit_face = Some(f);
        }
    }
    match exits {
        0 => Some(NeighborDomain {
            tree,
            coords: dom,
            level: q.level(),
            contact,
        }),
        1 => {
            let face = exit_face.unwrap();
            let connection = conn.neighbor(tree, face)?;
            let tf = &connection.transform;
            let out = tf.apply(dom, h, root);
            Some(NeighborDomain {
                tree: connection.tree,
                coords: out,
                level: q.level(),
                contact: contact.transformed(tf, root),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::StandardQuad;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    #[test]
    fn offset_counts() {
        assert_eq!(offsets(2, Adjacency::Face).len(), 4);
        assert_eq!(offsets(2, Adjacency::Full).len(), 8);
        assert_eq!(offsets(3, Adjacency::Face).len(), 6);
        assert_eq!(offsets(3, Adjacency::Full).len(), 26);
    }

    #[test]
    fn box_intersections() {
        let a = Box3 {
            lo: [0, 0, 0],
            hi: [4, 4, 0],
        };
        let b = Box3 {
            lo: [4, 0, 0],
            hi: [8, 4, 0],
        };
        let c = Box3 {
            lo: [5, 5, 0],
            hi: [6, 6, 0],
        };
        assert!(a.intersects(&b, 2), "closed boxes touch at x = 4");
        assert!(!a.intersects(&c, 2));
    }

    #[test]
    fn interior_face_domain() {
        let conn = Connectivity::unit(2);
        let root = Q2::len_at(0);
        let h = Q2::len_at(2);
        let q = Q2::from_coords([h, h, 0], 2);
        let d = neighbor_domain(&conn, 0, &q, [1, 0, 0]).unwrap();
        assert_eq!(d.tree, 0);
        assert_eq!(d.coords, [2 * h, h, 0]);
        assert_eq!(d.contact.lo, [2 * h, h, 0]);
        assert_eq!(d.contact.hi, [2 * h, 2 * h, 0]);
        // boundary face
        let q0 = Q2::from_coords([0, 0, 0], 2);
        assert!(neighbor_domain(&conn, 0, &q0, [-1, 0, 0]).is_none());
        let _ = root;
    }

    #[test]
    fn corner_domain_within_tree() {
        let conn = Connectivity::unit(3);
        let h = Q3::len_at(1);
        let q = Q3::from_coords([h, h, h], 1);
        let d = neighbor_domain(&conn, 0, &q, [-1, -1, -1]).unwrap();
        assert_eq!(d.coords, [0, 0, 0]);
        // contact is the single shared corner point
        assert_eq!(d.contact.lo, [h, h, h]);
        assert_eq!(d.contact.hi, [h, h, h]);
    }

    #[test]
    fn face_crossing_resolves_through_connectivity() {
        let conn = Connectivity::brick2d(2, 1, false, false);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        let q = Q2::from_coords([root - h, 0, 0], 1);
        let d = neighbor_domain(&conn, 0, &q, [1, 0, 0]).unwrap();
        assert_eq!(d.tree, 1);
        assert_eq!(d.coords, [0, 0, 0]);
        assert_eq!(d.contact.lo, [0, 0, 0]);
        assert_eq!(d.contact.hi, [0, h, 0]);
    }

    #[test]
    fn corner_crossing_two_faces_is_skipped() {
        let conn = Connectivity::brick2d(2, 2, false, false);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        let q = Q2::from_coords([root - h, root - h, 0], 1);
        // exits through +x and +y simultaneously
        assert!(neighbor_domain(&conn, 0, &q, [1, 1, 0]).is_none());
        // but single-axis crossings resolve
        assert!(neighbor_domain(&conn, 0, &q, [1, 0, 0]).is_some());
        assert!(neighbor_domain(&conn, 0, &q, [0, 1, 0]).is_some());
    }

    #[test]
    fn periodic_corner_wraps_single_axis() {
        let conn = Connectivity::periodic(2);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        // corner offset exiting only through +x (y stays inside)
        let q = Q2::from_coords([root - h, 0, 0], 1);
        let d = neighbor_domain(&conn, 0, &q, [1, 1, 0]).unwrap();
        assert_eq!(d.tree, 0);
        assert_eq!(d.coords, [0, h, 0]);
    }
}
