//! Neighbor-direction enumeration shared by balance, ghost construction
//! and iteration.
//!
//! All cross-leaf reasoning in the high-level algorithms is done in pure
//! coordinate arithmetic (boxes and offsets), never by constructing
//! exterior quadrants — the raw-Morton representations carry no sign
//! bits, so exterior positions must not be materialized as quadrants.

use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::Quadrant;

/// Which neighbor relations an algorithm considers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Adjacency {
    /// Across faces only.
    Face,
    /// Across faces, edges (3D) and corners.
    Full,
}

/// Unit offsets `{-1,0,1}^d \ {0}` selecting same-size neighbor domains,
/// filtered by the adjacency kind. Face offsets have exactly one nonzero
/// component, edge offsets two, corner offsets `d`.
pub fn offsets(dim: u32, kind: Adjacency) -> Vec<[i32; 3]> {
    let mut out = Vec::new();
    let range = |_d: usize| -1i32..=1;
    for dz in if dim == 3 { range(2) } else { 0..=0 } {
        for dy in range(1) {
            for dx in range(0) {
                let nz = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                let keep = match kind {
                    Adjacency::Face => nz == 1,
                    Adjacency::Full => nz >= 1,
                };
                if keep {
                    out.push([dx, dy, dz]);
                }
            }
        }
    }
    out
}

/// An axis-aligned closed box in tree coordinates (possibly degenerate).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Box3 {
    /// Inclusive lower corner.
    pub lo: [i32; 3],
    /// Inclusive upper corner.
    pub hi: [i32; 3],
}

impl Box3 {
    /// Closed intersection test (shared boundary points count).
    #[inline]
    pub fn intersects(&self, other: &Box3, dim: u32) -> bool {
        (0..dim as usize).all(|a| self.lo[a] <= other.hi[a] && self.hi[a] >= other.lo[a])
    }

    /// The closed domain of a quadrant.
    #[inline]
    pub fn of_quad<Q: Quadrant>(q: &Q) -> Box3 {
        let c = q.coords();
        let h = q.side();
        Box3 {
            lo: c,
            hi: [c[0] + h, c[1] + h, if Q::DIM == 3 { c[2] + h } else { 0 }],
        }
    }

    /// Transform the box across a tree face, mapping both corners as
    /// points (`h = 0` reflection) and reordering.
    pub fn transformed(&self, tf: &quadforest_connectivity::FaceTransform, root: i32) -> Box3 {
        let a = tf.apply(self.lo, 0, root);
        let b = tf.apply(self.hi, 0, root);
        let mut lo = [0i32; 3];
        let mut hi = [0i32; 3];
        for i in 0..3 {
            lo[i] = a[i].min(b[i]);
            hi[i] = a[i].max(b[i]);
        }
        Box3 { lo, hi }
    }
}

/// A same-size neighbor domain of a quadrant, resolved against the
/// connectivity: in which tree it lives and where.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NeighborDomain {
    /// Tree holding the domain.
    pub tree: u32,
    /// Anchor of the domain (a valid quadrant anchor in that tree).
    pub coords: [i32; 3],
    /// Level (same as the originating quadrant).
    pub level: u8,
    /// Closed contact region between the originating quadrant and this
    /// domain, in the *domain's* tree frame.
    pub contact: Box3,
}

/// Compute the same-size neighbor domain of `q` in `tree` along `offset`,
/// resolving a single tree-face crossing through the connectivity.
///
/// Returns `None` when the domain lies outside the forest (physical
/// boundary) or when the offset crosses more than one tree face (edge /
/// corner tree connections are not modeled; see DESIGN.md).
pub fn neighbor_domain<Q: Quadrant>(
    conn: &Connectivity,
    tree: u32,
    q: &Q,
    offset: [i32; 3],
) -> Option<NeighborDomain> {
    let dim = Q::DIM;
    let h = q.side();
    let root = Q::len_at(0);
    let c = q.coords();
    let mut dom = [0i32; 3];
    for a in 0..3 {
        dom[a] = c[a] + offset[a] * h;
    }
    // contact box in the current frame
    let mut contact = Box3 {
        lo: [0; 3],
        hi: [0; 3],
    };
    for a in 0..3 {
        match offset[a] {
            0 => {
                contact.lo[a] = c[a];
                contact.hi[a] = c[a] + if (a as u32) < dim { h } else { 0 };
            }
            1 => {
                contact.lo[a] = c[a] + h;
                contact.hi[a] = c[a] + h;
            }
            _ => {
                contact.lo[a] = c[a];
                contact.hi[a] = c[a];
            }
        }
    }
    // which axes leave the root domain?
    let mut exit_face = None;
    let mut exits = 0;
    for (a, &d) in dom.iter().enumerate().take(dim as usize) {
        let f = if d < 0 {
            Some(2 * a as u32)
        } else if d + h > root {
            Some(2 * a as u32 + 1)
        } else {
            None
        };
        if let Some(f) = f {
            exits += 1;
            exit_face = Some(f);
        }
    }
    match exits {
        0 => Some(NeighborDomain {
            tree,
            coords: dom,
            level: q.level(),
            contact,
        }),
        1 => {
            let face = exit_face.unwrap();
            let connection = conn.neighbor(tree, face)?;
            let tf = &connection.transform;
            let out = tf.apply(dom, h, root);
            Some(NeighborDomain {
                tree: connection.tree,
                coords: out,
                level: q.level(),
                contact: contact.transformed(tf, root),
            })
        }
        _ => None,
    }
}

/// Reusable buffers for [`for_each_neighbor_domain`], so per-tree
/// batched enumeration allocates only on the first (largest) block.
#[derive(Default)]
pub struct NeighborScratch {
    /// Gathered leaves (level ≥ `min_level`), SoA layout.
    soa: quadforest_core::scalar_ref::QuadSoA,
    /// Shifted neighbor anchors for the current offset.
    out: quadforest_core::scalar_ref::QuadSoA,
    /// Original leaf index of each gathered lane.
    idx: Vec<usize>,
    /// Tree-boundary classification per axis (see
    /// `Quadrant::tree_boundaries`).
    fx: Vec<i32>,
    fy: Vec<i32>,
    fz: Vec<i32>,
}

impl NeighborScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Batched equivalent of calling [`neighbor_domain`] for every leaf of
/// level ≥ `min_level` × every offset: gathers the leaves into a
/// [`QuadSoA`](quadforest_core::scalar_ref::QuadSoA) block, classifies
/// tree boundaries once with the runtime-dispatched
/// [`tree_boundaries_all`](quadforest_core::batch::tree_boundaries_all)
/// kernel, and computes the shifted anchors for each offset with one
/// [`offset_neighbor_all`](quadforest_core::batch::offset_neighbor_all)
/// sweep. Leaves whose domain stays inside the root tree — the vast
/// majority — are resolved arithmetically from the precomputed lanes;
/// only leaves touching an exited boundary fall back to the per-quadrant
/// [`neighbor_domain`] slow path (connectivity lookups and face
/// transforms).
///
/// `visit(leaf_index, offset, domain)` is called for every resolved
/// domain, in offset-major order. The set of visited `(leaf, offset,
/// domain)` triples is exactly the set the per-quadrant loop produces
/// (`balance`/`ghost` consume them order-insensitively; the equivalence
/// is property-tested against the scalar oracle).
pub fn for_each_neighbor_domain<Q: Quadrant>(
    conn: &Connectivity,
    tree: u32,
    leaves: &[Q],
    offs: &[[i32; 3]],
    min_level: u8,
    scratch: &mut NeighborScratch,
    mut visit: impl FnMut(usize, [i32; 3], &NeighborDomain),
) {
    use quadforest_core::batch;
    let dim = Q::DIM;
    let max_level = Q::MAX_LEVEL;
    scratch.soa.clear();
    scratch.soa.reserve(leaves.len());
    scratch.idx.clear();
    for (i, q) in leaves.iter().enumerate() {
        if q.level() >= min_level {
            scratch.soa.push(q.coords(), q.level() as i32);
            scratch.idx.push(i);
        }
    }
    let n = scratch.soa.len();
    if n == 0 {
        return;
    }
    scratch.out.resize(n);
    scratch.fx.resize(n, 0);
    scratch.fy.resize(n, 0);
    scratch.fz.resize(n, 0);
    batch::tree_boundaries_all(
        &scratch.soa,
        dim,
        max_level,
        [&mut scratch.fx, &mut scratch.fy, &mut scratch.fz],
    );
    for &off in offs {
        batch::offset_neighbor_all(&scratch.soa, off, max_level, &mut scratch.out);
        for i in 0..n {
            let cls = [scratch.fx[i], scratch.fy[i], scratch.fz[i]];
            // An axis exits the root exactly when the leaf touches the
            // boundary face the offset points at (-2 = root touches
            // all); this matches `neighbor_domain`'s `d < 0 || d + h >
            // root` test on the shifted anchor.
            let mut exits = 0u32;
            for (a, &d) in off.iter().enumerate().take(dim as usize) {
                if d != 0 {
                    let c = cls[a];
                    let touches = c == -2 || c == 2 * a as i32 + ((d > 0) as i32);
                    if touches {
                        exits += 1;
                    }
                }
            }
            let level = scratch.soa.level[i] as u8;
            let c = [scratch.soa.x[i], scratch.soa.y[i], scratch.soa.z[i]];
            if exits == 0 {
                // interior fast path: same arithmetic as
                // `neighbor_domain`'s exits == 0 branch
                let h = 1i32 << (max_level - level);
                let mut contact = Box3 {
                    lo: [0; 3],
                    hi: [0; 3],
                };
                for a in 0..3 {
                    match off[a] {
                        0 => {
                            contact.lo[a] = c[a];
                            contact.hi[a] = c[a] + if (a as u32) < dim { h } else { 0 };
                        }
                        1 => {
                            contact.lo[a] = c[a] + h;
                            contact.hi[a] = c[a] + h;
                        }
                        _ => {
                            contact.lo[a] = c[a];
                            contact.hi[a] = c[a];
                        }
                    }
                }
                let dom = NeighborDomain {
                    tree,
                    coords: [scratch.out.x[i], scratch.out.y[i], scratch.out.z[i]],
                    level,
                    contact,
                };
                visit(scratch.idx[i], off, &dom);
            } else {
                // boundary slow path: full connectivity resolution
                let q = Q::from_coords(c, level);
                if let Some(dom) = neighbor_domain(conn, tree, &q, off) {
                    visit(scratch.idx[i], off, &dom);
                }
            }
        }
    }
}

/// Per-quadrant oracle for [`for_each_neighbor_domain`]: the plain
/// nested loop over offsets × leaves through [`neighbor_domain`]. Kept
/// as the property-test reference for the batched path.
pub fn for_each_neighbor_domain_scalar<Q: Quadrant>(
    conn: &Connectivity,
    tree: u32,
    leaves: &[Q],
    offs: &[[i32; 3]],
    min_level: u8,
    mut visit: impl FnMut(usize, [i32; 3], &NeighborDomain),
) {
    for &off in offs {
        for (i, q) in leaves.iter().enumerate() {
            if q.level() < min_level {
                continue;
            }
            if let Some(dom) = neighbor_domain(conn, tree, q, off) {
                visit(i, off, &dom);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::StandardQuad;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    #[test]
    fn offset_counts() {
        assert_eq!(offsets(2, Adjacency::Face).len(), 4);
        assert_eq!(offsets(2, Adjacency::Full).len(), 8);
        assert_eq!(offsets(3, Adjacency::Face).len(), 6);
        assert_eq!(offsets(3, Adjacency::Full).len(), 26);
    }

    #[test]
    fn box_intersections() {
        let a = Box3 {
            lo: [0, 0, 0],
            hi: [4, 4, 0],
        };
        let b = Box3 {
            lo: [4, 0, 0],
            hi: [8, 4, 0],
        };
        let c = Box3 {
            lo: [5, 5, 0],
            hi: [6, 6, 0],
        };
        assert!(a.intersects(&b, 2), "closed boxes touch at x = 4");
        assert!(!a.intersects(&c, 2));
    }

    #[test]
    fn interior_face_domain() {
        let conn = Connectivity::unit(2);
        let root = Q2::len_at(0);
        let h = Q2::len_at(2);
        let q = Q2::from_coords([h, h, 0], 2);
        let d = neighbor_domain(&conn, 0, &q, [1, 0, 0]).unwrap();
        assert_eq!(d.tree, 0);
        assert_eq!(d.coords, [2 * h, h, 0]);
        assert_eq!(d.contact.lo, [2 * h, h, 0]);
        assert_eq!(d.contact.hi, [2 * h, 2 * h, 0]);
        // boundary face
        let q0 = Q2::from_coords([0, 0, 0], 2);
        assert!(neighbor_domain(&conn, 0, &q0, [-1, 0, 0]).is_none());
        let _ = root;
    }

    #[test]
    fn corner_domain_within_tree() {
        let conn = Connectivity::unit(3);
        let h = Q3::len_at(1);
        let q = Q3::from_coords([h, h, h], 1);
        let d = neighbor_domain(&conn, 0, &q, [-1, -1, -1]).unwrap();
        assert_eq!(d.coords, [0, 0, 0]);
        // contact is the single shared corner point
        assert_eq!(d.contact.lo, [h, h, h]);
        assert_eq!(d.contact.hi, [h, h, h]);
    }

    #[test]
    fn face_crossing_resolves_through_connectivity() {
        let conn = Connectivity::brick2d(2, 1, false, false);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        let q = Q2::from_coords([root - h, 0, 0], 1);
        let d = neighbor_domain(&conn, 0, &q, [1, 0, 0]).unwrap();
        assert_eq!(d.tree, 1);
        assert_eq!(d.coords, [0, 0, 0]);
        assert_eq!(d.contact.lo, [0, 0, 0]);
        assert_eq!(d.contact.hi, [0, h, 0]);
    }

    #[test]
    fn corner_crossing_two_faces_is_skipped() {
        let conn = Connectivity::brick2d(2, 2, false, false);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        let q = Q2::from_coords([root - h, root - h, 0], 1);
        // exits through +x and +y simultaneously
        assert!(neighbor_domain(&conn, 0, &q, [1, 1, 0]).is_none());
        // but single-axis crossings resolve
        assert!(neighbor_domain(&conn, 0, &q, [1, 0, 0]).is_some());
        assert!(neighbor_domain(&conn, 0, &q, [0, 1, 0]).is_some());
    }

    fn collect_domains<Q: Quadrant>(
        conn: &Connectivity,
        leaves: &[Q],
        offs: &[[i32; 3]],
        min_level: u8,
        batched: bool,
    ) -> Vec<(usize, [i32; 3], NeighborDomain)> {
        let mut got = Vec::new();
        if batched {
            let mut scratch = NeighborScratch::new();
            for_each_neighbor_domain(conn, 0, leaves, offs, min_level, &mut scratch, |i, o, d| {
                got.push((i, o, *d))
            });
        } else {
            for_each_neighbor_domain_scalar(conn, 0, leaves, offs, min_level, |i, o, d| {
                got.push((i, o, *d))
            });
        }
        got.sort_by_key(|(i, o, d)| (*i, *o, d.tree, d.coords));
        got
    }

    #[test]
    fn batched_enumeration_matches_scalar_oracle() {
        // adaptive leaf set: refine one corner of a level-2 complete tree
        let mut leaves = quadforest_core::workload::complete_tree::<Q2>(2);
        let corner = leaves.remove(0);
        for c in 0..4 {
            let child = corner.child(c);
            for cc in 0..4 {
                leaves.push(child.child(cc));
            }
        }
        leaves.sort_by(|a, b| a.compare_sfc(b));
        for conn in [
            Connectivity::unit(2),
            Connectivity::periodic(2),
            Connectivity::brick2d(2, 2, false, true),
        ] {
            for kind in [Adjacency::Face, Adjacency::Full] {
                let offs = offsets(2, kind);
                for min_level in [0u8, 3] {
                    let batched = collect_domains(&conn, &leaves, &offs, min_level, true);
                    let scalar = collect_domains(&conn, &leaves, &offs, min_level, false);
                    assert_eq!(batched, scalar, "kind {kind:?} min_level {min_level}");
                }
            }
        }
    }

    #[test]
    fn batched_enumeration_matches_scalar_oracle_3d() {
        let leaves = quadforest_core::workload::complete_tree::<Q3>(2);
        let conn = Connectivity::unit(3);
        let offs = offsets(3, Adjacency::Full);
        let batched = collect_domains(&conn, &leaves, &offs, 0, true);
        let scalar = collect_domains(&conn, &leaves, &offs, 0, false);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn periodic_corner_wraps_single_axis() {
        let conn = Connectivity::periodic(2);
        let h = Q2::len_at(1);
        let root = Q2::len_at(0);
        // corner offset exiting only through +x (y stays inside)
        let q = Q2::from_coords([root - h, 0, 0], 1);
        let d = neighbor_domain(&conn, 0, &q, [1, 1, 0]).unwrap();
        assert_eq!(d.tree, 0);
        assert_eq!(d.coords, [0, h, 0]);
    }
}

impl quadforest_core::Wire for Box3 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
    }

    fn decode(
        r: &mut quadforest_core::wire::WireReader<'_>,
    ) -> Result<Self, quadforest_core::wire::WireError> {
        Ok(Box3 {
            lo: <[i32; 3]>::decode(r)?,
            hi: <[i32; 3]>::decode(r)?,
        })
    }
}
