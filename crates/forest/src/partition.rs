//! Space-filling-curve partition of the global leaf sequence.
//!
//! The global leaf order is tree-major, SFC within each tree. Partition
//! redistributes leaves so that every rank holds a contiguous range of
//! that sequence with (weighted) equal share — p4est's
//! `p4est_partition`. Communication is a single personalized all-to-all
//! of leaf runs plus an allgather to refresh the partition markers.

use crate::{end_position, Forest};
use quadforest_comm::Comm;
use quadforest_connectivity::TreeId;
use quadforest_core::quadrant::Quadrant;
use quadforest_core::Wire;

impl<Q: Quadrant> Forest<Q> {
    /// Repartition for equal leaf counts. Returns the number of leaves
    /// that moved away from this rank. Collective.
    pub fn partition(&mut self, comm: &Comm) -> usize {
        self.partition_by(comm, |_, _| 1)
    }

    /// Repartition so that every rank receives (as close as possible)
    /// the same share of total `weight`. Weights must be positive.
    /// Leaves are never split, so heavy single leaves may cause residual
    /// imbalance, exactly as in p4est's weighted partition. Collective.
    pub fn partition_by(&mut self, comm: &Comm, weight: impl FnMut(TreeId, &Q) -> u64) -> usize {
        // no payload: the all-to-all ships bare (tree, leaf) runs, the
        // same message shape partition has always used
        self.partition_core(comm, weight, None::<Vec<()>>).0
    }

    /// Shared partition machinery: redistribute leaves (weighted SFC
    /// cuts), optionally with one payload value riding along per leaf.
    /// The leaf exchange always ships bare `(tree, leaf)` runs — the
    /// pre-payload message shape — and `Some` payloads travel in a
    /// second all-to-all bucketed by the same destination cuts, so they
    /// are returned in the new rank-global leaf order.
    /// `payload.len()` must equal the local leaf count.
    pub(crate) fn partition_core<P>(
        &mut self,
        comm: &Comm,
        mut weight: impl FnMut(TreeId, &Q) -> u64,
        payload: Option<Vec<P>>,
    ) -> (usize, Vec<P>)
    where
        P: Clone + Wire + Send + 'static,
    {
        let _span = quadforest_telemetry::span("partition");
        let p = self.size as u64;
        if let Some(payload) = &payload {
            assert_eq!(payload.len(), self.local_count());
        }

        // global weight prefix of this rank
        let local: Vec<(TreeId, Q, u64)> = self
            .leaves()
            .map(|(t, q)| {
                let w = weight(t, q);
                assert!(w > 0, "partition weights must be positive");
                (t, *q, w)
            })
            .collect();
        let local_weight: u64 = local.iter().map(|(_, _, w)| w).sum();
        let my_offset = comm.exscan_sum(local_weight);
        let total = comm.allreduce_sum(local_weight);

        // Destination of a leaf whose weight interval starts at `a`: the
        // largest rank r with cut(r) = floor(total*r/p) <= a.
        let cut = |r: u64| total * r / p;
        let dest_of = |a: u64| -> usize {
            let mut lo = 0u64;
            let mut hi = p - 1;
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if cut(mid) <= a {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo as usize
        };

        // bucket local leaves per destination rank (contiguous runs)
        let mut outgoing: Vec<Vec<(TreeId, Q)>> = (0..self.size).map(|_| Vec::new()).collect();
        let mut dests = Vec::with_capacity(local.len());
        let mut moved = 0usize;
        let mut a = my_offset;
        for (t, q, w) in &local {
            let dest = if total == 0 { 0 } else { dest_of(a) };
            if dest != self.rank {
                moved += 1;
            }
            outgoing[dest].push((*t, *q));
            dests.push(dest);
            a += w;
        }

        // payloads travel in their own all-to-all, bucketed by the same
        // destination cuts, so the leaf exchange keeps its bare
        // (tree, leaf) message shape when no payload is present
        let mut payload_bytes = 0usize;
        let outgoing_payload = payload.map(|payload| {
            let mut buckets: Vec<Vec<P>> = (0..self.size).map(|_| Vec::new()).collect();
            for (dest, v) in dests.iter().zip(payload) {
                if *dest != self.rank {
                    payload_bytes += v.to_wire().len();
                }
                buckets[*dest].push(v);
            }
            buckets
        });

        // exchange
        let incoming = comm.alltoallv(outgoing);
        let arrived: Vec<P> = match outgoing_payload {
            Some(buckets) => comm.alltoallv(buckets).into_iter().flatten().collect(),
            None => Vec::new(),
        };

        // rebuild trees; incoming runs arrive in source-rank order, which
        // is exactly global SFC order — and payload runs, cut by the same
        // destinations, arrive in lock-step
        for tree in &mut self.trees {
            tree.clear();
        }
        for run in incoming {
            for (t, q) in run {
                self.trees[t as usize].push(q);
            }
        }

        // refresh markers: allgather each rank's first position; empty
        // ranks inherit the next non-empty marker (p4est convention)
        let first = self.first_local_position();
        let firsts = comm.allgather(first);
        let mut markers = vec![end_position(self.trees.len()); self.size + 1];
        let mut next = end_position(self.trees.len());
        for r in (0..self.size).rev() {
            if let Some(pos) = firsts[r] {
                next = pos;
            }
            markers[r] = next;
        }
        // rank 0's range always starts at the global origin
        if self.global_count > 0 {
            markers[0] = (0, 0);
        }
        self.markers = markers;
        quadforest_telemetry::counter_add("forest.partition.sent", moved as u64);
        if payload_bytes > 0 {
            quadforest_telemetry::counter_add(
                "forest.partition.payload_bytes",
                payload_bytes as u64,
            );
        }
        quadforest_telemetry::gauge_set("forest.local_leaves", self.local_count() as u64);
        debug_assert_eq!(self.validate(), Ok(()));
        self.guard_phase("partition");
        (moved, arrived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;

    #[test]
    fn partition_balances_skewed_refinement() {
        let counts = quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // refine only the origin quadrant heavily: rank 0 ends up
            // with far more leaves than the others
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 6);
            let before = f.checksum(&comm);
            f.partition(&comm);
            assert_eq!(f.validate(), Ok(()));
            assert_eq!(
                f.checksum(&comm),
                before,
                "partition must not change leaves"
            );
            f.local_count()
        });
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "counts should equalize after partition: {counts:?}"
        );
    }

    #[test]
    fn partition_is_idempotent() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<MortonQuad<3>>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |_, q| q.morton_index() % 5 == 0);
            f.partition(&comm);
            let markers = f.markers().to_vec();
            let moved = f.partition(&comm);
            assert_eq!(moved, 0, "second partition must move nothing");
            assert_eq!(f.markers(), &markers[..]);
        });
    }

    #[test]
    fn weighted_partition_shifts_boundaries() {
        let counts = quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            // first half of the curve is 7x heavier
            f.partition_by(&comm, |_, q| if q.morton_index() < 32 { 7 } else { 1 });
            assert_eq!(f.validate(), Ok(()));
            f.local_count()
        });
        // total weight 32*7 + 32 = 256; the mid cut falls inside the
        // heavy prefix, so rank 0 holds fewer leaves than rank 1
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(
            counts[0] < counts[1],
            "heavier prefix must shrink rank 0's leaf count: {counts:?}"
        );
    }

    #[test]
    fn partition_multitree() {
        quadforest_comm::run(5, |comm| {
            let conn = Arc::new(Connectivity::brick2d(3, 1, false, false));
            let mut f = Forest::<AvxQuad<2>>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |t, q| t == 1 && q.level() < 4);
            let before = f.checksum(&comm);
            f.partition(&comm);
            assert_eq!(f.validate(), Ok(()));
            assert_eq!(f.checksum(&comm), before);
            let counts = comm.allgather(f.local_count());
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= 1);
        });
    }

    #[test]
    fn partition_with_empty_ranks() {
        quadforest_comm::run(12, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // 4 leaves over 12 ranks: most stay empty
            f.partition(&comm);
            assert_eq!(f.validate(), Ok(()));
            assert_eq!(comm.allreduce_sum(f.local_count() as u64), 4);
        });
    }

    #[test]
    fn partition_is_fault_oblivious() {
        use quadforest_comm::FaultPlan;
        use std::time::Duration;
        let program = |comm: quadforest_comm::Comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            f.partition(&comm);
            assert_eq!(f.validate(), Ok(()));
            (f.markers().to_vec(), f.checksum(&comm))
        };
        let baseline = quadforest_comm::run(4, program);
        for seed in [3u64, 17] {
            let plan = FaultPlan::new(seed)
                .with_delays(0.25, Duration::from_micros(100))
                .with_reordering(0.25);
            let chaotic = quadforest_comm::run_with_faults(4, plan, program).unwrap();
            assert_eq!(baseline, chaotic, "seed {seed} changed the partition");
        }
    }

    #[test]
    fn new_refined_composes() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_refined(conn, &comm, 1, |_, q| {
                q.level() < 3 && q.coords()[1] == 0
            });
            assert_eq!(f.validate(), Ok(()));
            assert!(f.global_count() > 4);
        });
    }
}
