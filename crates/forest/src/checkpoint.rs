//! Crash-consistent on-disk checkpoints: generations of per-rank shards
//! plus a manifest, every file CRC32-guarded and written atomically.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   gen-00000001/
//!     shard-00000.qfs     one per saving rank: a PortableForest stream
//!     shard-00001.qfs
//!     manifest.qfm        written LAST — its presence commits the generation
//!   gen-00000002/
//!     ...
//! ```
//!
//! Each shard is exactly the version-2 [`PortableForest`] byte stream
//! (self-describing, CRC32-terminated). The manifest records the global
//! shape plus each shard's leaf count, byte length, and CRC, and carries
//! its own trailing CRC. Every file is written to a `.tmp` sibling and
//! `rename`d into place, and the manifest is written only after every
//! shard is durably named — so a generation directory without a valid
//! manifest is, by construction, an aborted save and is skipped.
//!
//! ## Restore semantics
//!
//! [`Forest::load_checkpoint`] walks generations newest-first and picks
//! the first one whose manifest AND all shards verify (length + CRC);
//! corrupted generations are skipped (counted in
//! `forest.checkpoint.fallbacks`) rather than trusted. The chosen
//! checkpoint loads into **any** quadrant representation and **any**
//! communicator size: when the rank count matches the save, each rank
//! reads back its own shard (exact markers restored); otherwise leaves
//! are re-sliced along the SFC into `P_load` equal ranges and the
//! partition markers rebuilt — repartition-on-load, the property the
//! restartable-campaign workflow in Isaac et al. relies on.

use crate::crc::crc32;
use crate::io::Cursor;
use crate::{end_position, Forest, IoError, PortableForest, SfcPosition};
use bytes::{Buf, BufMut, BytesMut};
use quadforest_comm::Comm;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::Quadrant;
use quadforest_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const MANIFEST_MAGIC: &[u8; 4] = b"QFMF";
/// Manifest version written. Version 2 added the application `step`
/// field; version-1 manifests (no step) still load with `step = 0`.
const MANIFEST_VERSION: u32 = 2;
/// Oldest manifest version still accepted on load.
const MANIFEST_MIN_VERSION: u32 = 1;
const MANIFEST_NAME: &str = "manifest.qfm";
/// Bytes per serialized shard record in the manifest.
const SHARD_RECORD_BYTES: usize = 20;

/// Integrity metadata for one checkpoint shard, as recorded in the
/// manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Leaves stored in the shard.
    pub leaf_count: u64,
    /// Exact shard file length in bytes.
    pub byte_len: u64,
    /// CRC32 of the whole shard file.
    pub crc: u32,
}

/// The committed description of one checkpoint generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Generation number (monotone per checkpoint directory).
    pub generation: u64,
    /// Spatial dimension of the saved forest.
    pub dim: u32,
    /// Tree count of the connectivity the forest was built over.
    pub num_trees: u64,
    /// Global leaf count at save time.
    pub global_count: u64,
    /// Communicator size at save time (`P_save` = shard count).
    pub size: u64,
    /// Application-defined progress counter recorded with the
    /// generation (e.g. a solver's time-step count). Authoritative on
    /// restore — generation numbers may skip after aborted saves, so
    /// progress must never be inferred from them. `0` when the saver
    /// did not provide one (including all version-1 manifests).
    pub step: u64,
    /// Per-shard integrity records, indexed by saving rank.
    pub shards: Vec<ShardMeta>,
}

impl CheckpointManifest {
    fn to_bytes(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(52 + self.shards.len() * SHARD_RECORD_BYTES + 4);
        b.put_slice(MANIFEST_MAGIC);
        b.put_u32_le(MANIFEST_VERSION);
        b.put_u64_le(self.generation);
        b.put_u32_le(self.dim);
        b.put_u64_le(self.num_trees);
        b.put_u64_le(self.global_count);
        b.put_u64_le(self.size);
        b.put_u64_le(self.step);
        b.put_u64_le(self.shards.len() as u64);
        for s in &self.shards {
            b.put_u64_le(s.leaf_count);
            b.put_u64_le(s.byte_len);
            b.put_u32_le(s.crc);
        }
        let crc = crc32(&b);
        b.put_u32_le(crc);
        b.to_vec()
    }

    /// Parse and CRC-verify a manifest. Corrupt bytes return a typed
    /// [`IoError`], never panic.
    pub fn from_bytes(data: &[u8]) -> Result<Self, IoError> {
        let mut cur = Cursor(data);
        cur.need(8)?;
        let mut magic = [0u8; 4];
        cur.0.copy_to_slice(&mut magic);
        if &magic != MANIFEST_MAGIC {
            return Err(IoError::BadMagic { found: magic });
        }
        let version = cur.u32()?;
        if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
            return Err(IoError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        if data.len() < 12 {
            return Err(IoError::Truncated {
                needed: 12,
                remaining: data.len(),
            });
        }
        let body = &data[..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(IoError::ChecksumMismatch { stored, computed });
        }
        cur.0 = &body[8..];
        let generation = cur.u64()?;
        let dim = cur.u32()?;
        let num_trees = cur.u64()?;
        let global_count = cur.u64()?;
        let size = cur.u64()?;
        let step = if version >= 2 { cur.u64()? } else { 0 };
        let n_shards = cur.count("shard", SHARD_RECORD_BYTES)?;
        if n_shards as u64 != size {
            return Err(IoError::CountMismatch {
                what: "shard",
                found: n_shards as u64,
                expected: size,
            });
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(ShardMeta {
                leaf_count: cur.u64()?,
                byte_len: cur.u64()?,
                crc: cur.u32()?,
            });
        }
        if cur.0.remaining() > 0 {
            return Err(IoError::CountMismatch {
                what: "trailing byte",
                found: cur.0.remaining() as u64,
                expected: 0,
            });
        }
        // checked sum: a hostile manifest must not overflow-panic here
        let mut total = 0u64;
        for s in &shards {
            total = total
                .checked_add(s.leaf_count)
                .filter(|t| *t <= global_count)
                .ok_or(IoError::CountMismatch {
                    what: "shard leaf",
                    found: s.leaf_count,
                    expected: global_count,
                })?;
        }
        if total != global_count {
            return Err(IoError::CountMismatch {
                what: "shard leaf",
                found: total,
                expected: global_count,
            });
        }
        Ok(Self {
            generation,
            dim,
            num_trees,
            global_count,
            size,
            step,
            shards,
        })
    }
}

/// Provenance of a restored checkpoint: which generation was elected
/// and the application `step` counter its manifest recorded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Generation the restore came from.
    pub generation: u64,
    /// Application progress counter saved with that generation (`0`
    /// for version-1 manifests and savers that passed none).
    pub step: u64,
}

fn generation_dir(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("gen-{generation:08}"))
}

fn shard_path(gen_dir: &Path, rank: usize) -> PathBuf {
    gen_dir.join(format!("shard-{rank:05}.qfs"))
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling, then
/// `rename` into place. A crash mid-write leaves only the tmp file,
/// which no reader ever looks at.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), IoError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| IoError::storage(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| IoError::storage(path, e))?;
    Ok(())
}

/// Generation numbers present under `dir` (committed or not), ascending.
/// A missing directory is an empty list, not an error.
pub fn list_generations(dir: impl AsRef<Path>) -> Vec<u64> {
    let mut gens: Vec<u64> = match std::fs::read_dir(dir.as_ref()) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("gen-"))
                    .and_then(|n| n.parse().ok())
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable();
    gens.dedup();
    gens
}

/// Rank 0: allocate the next generation number and create its directory.
fn prepare_generation(dir: &Path) -> Result<u64, IoError> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::storage(dir, e))?;
    let generation = list_generations(dir).last().copied().unwrap_or(0) + 1;
    let gen_dir = generation_dir(dir, generation);
    std::fs::create_dir_all(&gen_dir).map_err(|e| IoError::storage(&gen_dir, e))?;
    Ok(generation)
}

/// Rank 0: walk generations newest-first and return the newest one whose
/// manifest and every shard pass verification. Invalid generations are
/// skipped and counted in `forest.checkpoint.fallbacks`.
fn pick_generation(dir: &Path) -> Result<(CheckpointManifest, u64), IoError> {
    let mut last_err = None;
    for generation in list_generations(dir).into_iter().rev() {
        match verify_generation(dir, generation) {
            Ok(manifest) => return Ok((manifest, generation)),
            Err(e) => {
                telemetry::counter_add("forest.checkpoint.fallbacks", 1);
                last_err = Some(e);
            }
        }
    }
    // surface the newest generation's failure when everything is bad —
    // more actionable than a bare "nothing found"
    Err(last_err.unwrap_or(IoError::NoCheckpoint {
        dir: dir.display().to_string(),
    }))
}

/// Verify one generation end-to-end: manifest parse + CRC, then every
/// shard's length and CRC against the manifest.
fn verify_generation(dir: &Path, generation: u64) -> Result<CheckpointManifest, IoError> {
    let gen_dir = generation_dir(dir, generation);
    let mpath = gen_dir.join(MANIFEST_NAME);
    let mbytes = std::fs::read(&mpath).map_err(|e| IoError::storage(&mpath, e))?;
    let manifest = CheckpointManifest::from_bytes(&mbytes)?;
    if manifest.generation != generation {
        return Err(IoError::CountMismatch {
            what: "generation",
            found: manifest.generation,
            expected: generation,
        });
    }
    for (rank, meta) in manifest.shards.iter().enumerate() {
        let spath = shard_path(&gen_dir, rank);
        let sbytes = std::fs::read(&spath).map_err(|e| IoError::storage(&spath, e))?;
        if sbytes.len() as u64 != meta.byte_len {
            return Err(IoError::Truncated {
                needed: meta.byte_len as usize,
                remaining: sbytes.len(),
            });
        }
        let computed = crc32(&sbytes);
        if computed != meta.crc {
            return Err(IoError::ChecksumMismatch {
                stored: meta.crc,
                computed,
            });
        }
    }
    Ok(manifest)
}

impl<Q: Quadrant> Forest<Q> {
    /// Save a new checkpoint generation under `dir` (collective).
    ///
    /// Every rank writes its partition as one shard; rank 0 commits the
    /// generation by writing the manifest last. All files go through
    /// temp-file + rename, so a crash at any point leaves either a fully
    /// committed generation or one that restore skips. Returns the new
    /// generation number on every rank, or the first error any rank hit.
    pub fn save_checkpoint(&self, comm: &Comm, dir: impl AsRef<Path>) -> Result<u64, IoError> {
        self.save_checkpoint_bytes(comm, dir.as_ref(), self.to_portable().to_bytes(), 0)
    }

    /// [`Forest::save_checkpoint`] with per-leaf payloads: every shard
    /// carries a version-3 payload section (the `Wire` encoding of each
    /// leaf's `T`), so [`Forest::load_checkpoint_with_data`] can restore
    /// solver state alongside the mesh. `step` is an application-defined
    /// progress counter (e.g. the solver's time-step count) committed in
    /// the manifest and handed back on restore — generation numbers may
    /// skip after aborted saves, so restart logic must read progress
    /// from here, never infer it from the generation. Collective.
    pub fn save_checkpoint_with_data<T: quadforest_core::Wire>(
        &self,
        comm: &Comm,
        dir: impl AsRef<Path>,
        data: &crate::LeafData<T>,
        step: u64,
    ) -> Result<u64, IoError> {
        self.save_checkpoint_bytes(
            comm,
            dir.as_ref(),
            self.to_portable_with_data(data).to_bytes(),
            step,
        )
    }

    /// Shared checkpoint-save machinery over an already-serialized
    /// shard stream.
    fn save_checkpoint_bytes(
        &self,
        comm: &Comm,
        dir: &Path,
        bytes: bytes::Bytes,
        step: u64,
    ) -> Result<u64, IoError> {
        let _span = telemetry::span("checkpoint");
        let start = Instant::now();

        // rank 0 allocates the generation and creates its directory
        let root_prep = (comm.rank() == 0).then(|| prepare_generation(dir));
        let generation = comm.bcast(0, root_prep)?;
        let gen_dir = generation_dir(dir, generation);

        // every rank writes its own shard atomically
        let written =
            write_atomic(&shard_path(&gen_dir, comm.rank()), &bytes).map(|()| ShardMeta {
                leaf_count: self.local_count() as u64,
                byte_len: bytes.len() as u64,
                crc: crc32(&bytes),
            });

        // rank 0 collects shard metadata and commits the manifest LAST;
        // any rank's write failure aborts the commit
        let gathered = comm.gather(0, written);
        let root_commit = gathered.map(|metas| {
            metas
                .into_iter()
                .collect::<Result<Vec<ShardMeta>, IoError>>()
                .and_then(|shards| {
                    let manifest = CheckpointManifest {
                        generation,
                        dim: Q::DIM,
                        num_trees: self.connectivity().num_trees() as u64,
                        global_count: self.global_count(),
                        size: comm.size() as u64,
                        step,
                        shards,
                    };
                    write_atomic(&gen_dir.join(MANIFEST_NAME), &manifest.to_bytes())
                })
        });
        let outcome = comm.bcast(0, root_commit);

        telemetry::histogram_record("forest.checkpoint.bytes", bytes.len() as u64);
        telemetry::histogram_record(
            "forest.checkpoint.write_ns",
            start.elapsed().as_nanos() as u64,
        );
        telemetry::counter_add("forest.checkpoint.saves", 1);
        outcome.map(|()| generation)
    }

    /// Restore the newest valid checkpoint under `dir` (collective).
    ///
    /// Generations whose manifest or shards fail CRC/length verification
    /// are skipped in favour of older ones. The saved stream loads into
    /// any quadrant representation; when the communicator size differs
    /// from `P_save`, leaves are repartitioned into equal SFC ranges and
    /// markers rebuilt. Returns the forest and the generation it came
    /// from; errors are agreed collectively, so every rank returns the
    /// same `Err` rather than some ranks proceeding with a ghost forest.
    pub fn load_checkpoint(
        conn: Arc<Connectivity>,
        comm: &Comm,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, u64), IoError> {
        let (forest, _payload, info) = Self::load_checkpoint_raw(conn, comm, dir.as_ref())?;
        Ok((forest, info.generation))
    }

    /// [`Forest::load_checkpoint`] that also restores per-leaf payloads
    /// saved by [`Forest::save_checkpoint_with_data`]. The payload
    /// section is re-sliced across rank counts exactly like the leaves,
    /// so `P_load` may differ from `P_save`. The returned
    /// [`CheckpointInfo`] carries the elected generation and the saver's
    /// `step` counter. Loading a payload-less (version-2) generation
    /// fails with [`IoError::MissingPayload`]; a payload that does not
    /// decode as `T` fails with [`IoError::PayloadCorrupt`]. Collective.
    pub fn load_checkpoint_with_data<T: quadforest_core::Wire>(
        conn: Arc<Connectivity>,
        comm: &Comm,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, crate::LeafData<T>, CheckpointInfo), IoError> {
        let (forest, payload, info) = Self::load_checkpoint_raw(conn, comm, dir.as_ref())?;
        // decode locally, then agree on the outcome so one rank's
        // corrupt payload fails the load everywhere
        let decoded = payload.ok_or(IoError::MissingPayload).and_then(|items| {
            items
                .iter()
                .enumerate()
                .map(|(i, raw)| {
                    T::from_wire(raw).map_err(|e| IoError::PayloadCorrupt {
                        leaf: i as u64,
                        detail: e.to_string(),
                    })
                })
                .collect::<Result<Vec<T>, IoError>>()
        });
        let verdicts = comm.allgather(decoded.as_ref().err().cloned());
        if let Some(e) = verdicts.into_iter().flatten().next() {
            return Err(e);
        }
        let items = decoded.expect("no rank reported an error");
        let data = crate::LeafData::from_vec(&forest, items);
        Ok((forest, data, info))
    }

    /// Shared restore machinery: elect a generation, load mesh plus the
    /// raw (undecoded) payload section if one is present.
    #[allow(clippy::type_complexity)]
    fn load_checkpoint_raw(
        conn: Arc<Connectivity>,
        comm: &Comm,
        dir: &Path,
    ) -> Result<(Self, Option<Vec<Vec<u8>>>, CheckpointInfo), IoError> {
        let _span = telemetry::span("restore");
        let start = Instant::now();

        // rank 0 verifies and elects a generation for everyone
        let root_pick = (comm.rank() == 0).then(|| pick_generation(dir));
        let (manifest, generation) = comm.bcast(0, root_pick)?;
        if manifest.dim != Q::DIM {
            return Err(IoError::DimensionMismatch {
                stream: manifest.dim,
                representation: Q::DIM,
            });
        }
        if manifest.num_trees != conn.num_trees() as u64 {
            return Err(IoError::TreeCountMismatch {
                stream: manifest.num_trees,
                connectivity: conn.num_trees() as u64,
            });
        }
        let gen_dir = generation_dir(dir, generation);

        let loaded = if manifest.size == comm.size() as u64 {
            Self::load_own_shard(conn, comm, &gen_dir)
        } else {
            Self::load_repartitioned(conn, comm, &gen_dir, &manifest)
        };

        // agree on the outcome: one rank's read failure fails the load
        // everywhere instead of leaving survivors mid-collective
        let verdicts = comm.allgather(loaded.as_ref().err().cloned());
        if let Some(e) = verdicts.into_iter().flatten().next() {
            return Err(e);
        }
        let (forest, payload) = loaded.expect("no rank reported an error");

        telemetry::histogram_record("forest.restore.ns", start.elapsed().as_nanos() as u64);
        telemetry::counter_add("forest.checkpoint.restores", 1);
        telemetry::gauge_set("forest.local_leaves", forest.local_count() as u64);
        Ok((
            forest,
            payload,
            CheckpointInfo {
                generation,
                step: manifest.step,
            },
        ))
    }

    /// Fast path: `P_load == P_save` — read back exactly the shard this
    /// rank saved, markers, payload and all.
    #[allow(clippy::type_complexity)]
    fn load_own_shard(
        conn: Arc<Connectivity>,
        comm: &Comm,
        gen_dir: &Path,
    ) -> Result<(Self, Option<Vec<Vec<u8>>>), IoError> {
        let spath = shard_path(gen_dir, comm.rank());
        let bytes = std::fs::read(&spath).map_err(|e| IoError::storage(&spath, e))?;
        telemetry::histogram_record("forest.restore.bytes", bytes.len() as u64);
        let mut portable = PortableForest::from_bytes(&bytes)?;
        let payload = portable.payload.take();
        Ok((Self::from_portable(conn, comm, &portable)?, payload))
    }

    /// Slow path: `P_load != P_save` — slice the global SFC leaf
    /// sequence into `P_load` equal ranges, read only the overlapping
    /// shards, and rebuild the partition markers from scratch.
    #[allow(clippy::type_complexity)]
    fn load_repartitioned(
        conn: Arc<Connectivity>,
        comm: &Comm,
        gen_dir: &Path,
        manifest: &CheckpointManifest,
    ) -> Result<(Self, Option<Vec<Vec<u8>>>), IoError> {
        let (rank, size) = (comm.rank(), comm.size());
        let n = manifest.global_count;
        let local = Self::read_slice(&conn, comm, gen_dir, manifest);

        // The marker allgather must run on EVERY rank, even one whose
        // local reads failed — otherwise survivors would pair this
        // collective with the failed rank's verdict exchange.
        let my_first = local.as_ref().ok().and_then(|(_, first, _)| *first);
        let firsts = comm.allgather(my_first);
        let (trees, _, payload) = local?;

        // rebuild markers exactly as partition() does: reverse-fill
        // empty ranks from the next occupied one, pin rank 0 to the
        // global origin
        let mut markers = vec![end_position(trees.len()); size + 1];
        let mut next = end_position(trees.len());
        for r in (0..size).rev() {
            if let Some(pos) = firsts[r] {
                next = pos;
            }
            markers[r] = next;
        }
        if n > 0 {
            markers[0] = (0, 0);
        }

        let f = Self::assemble(conn, rank, size, trees, n, markers);
        f.validate()?;
        Ok((f, payload))
    }

    /// Read this rank's equal-share SFC slice `[N·r/P, N·(r+1)/P)` out
    /// of the overlapping shards. Purely local; returns the per-tree
    /// leaf arrays, the first leaf's global position, and the matching
    /// payload slice (`None` when any overlapping shard is
    /// payload-less).
    #[allow(clippy::type_complexity)]
    fn read_slice(
        conn: &Arc<Connectivity>,
        comm: &Comm,
        gen_dir: &Path,
        manifest: &CheckpointManifest,
    ) -> Result<(Vec<Vec<Q>>, Option<SfcPosition>, Option<Vec<Vec<u8>>>), IoError> {
        let (rank, size) = (comm.rank(), comm.size());
        let n = manifest.global_count;
        let lo = n * rank as u64 / size as u64;
        let hi = n * (rank as u64 + 1) / size as u64;

        // global leaf-index offset of each shard
        let mut offset = 0u64;
        let mut trees: Vec<Vec<Q>> = vec![Vec::new(); conn.num_trees()];
        let mut first_pos: Option<SfcPosition> = None;
        let mut payload: Option<Vec<Vec<u8>>> = Some(Vec::new());
        for (shard_rank, meta) in manifest.shards.iter().enumerate() {
            let (shard_lo, shard_hi) = (offset, offset + meta.leaf_count);
            offset = shard_hi;
            if shard_hi <= lo || shard_lo >= hi {
                continue;
            }
            let spath = shard_path(gen_dir, shard_rank);
            let bytes = std::fs::read(&spath).map_err(|e| IoError::storage(&spath, e))?;
            telemetry::histogram_record("forest.restore.bytes", bytes.len() as u64);
            let portable = PortableForest::from_bytes(&bytes)?;
            if portable.leaves.len() as u64 != meta.leaf_count {
                return Err(IoError::CountMismatch {
                    what: "shard leaf",
                    found: portable.leaves.len() as u64,
                    expected: meta.leaf_count,
                });
            }
            // my slice of this shard, in global SFC (tree-major) order
            let from = lo.saturating_sub(shard_lo) as usize;
            let to = (hi.min(shard_hi) - shard_lo) as usize;
            for &(t, c, l) in &portable.leaves[from..to] {
                if t as usize >= trees.len() || l > Q::MAX_LEVEL {
                    return Err(IoError::CorruptLeaf {
                        tree: t,
                        coords: c,
                        level: l,
                    });
                }
                let q = Q::from_coords(c, l);
                if first_pos.is_none() {
                    first_pos = Some((t, q.morton_abs()));
                }
                trees[t as usize].push(q);
            }
            // payloads ride the exact same slice cuts as their leaves;
            // one payload-less shard makes the whole restore payload-less
            match (&mut payload, portable.payload) {
                (Some(acc), Some(items)) => acc.extend_from_slice(&items[from..to]),
                _ => payload = None,
            }
        }
        Ok((trees, first_pos, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let m = CheckpointManifest {
            generation: 7,
            dim: 2,
            num_trees: 3,
            global_count: 30,
            size: 2,
            step: 40,
            shards: vec![
                ShardMeta {
                    leaf_count: 12,
                    byte_len: 260,
                    crc: 0xDEAD_BEEF,
                },
                ShardMeta {
                    leaf_count: 18,
                    byte_len: 362,
                    crc: 0x1234_5678,
                },
            ],
        };
        let bytes = m.to_bytes();
        assert_eq!(CheckpointManifest::from_bytes(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                CheckpointManifest::from_bytes(&bad).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
        assert!(matches!(
            CheckpointManifest::from_bytes(&bytes[..10]),
            Err(IoError::Truncated { .. })
        ));
    }

    #[test]
    fn version1_manifest_loads_with_step_zero() {
        // hand-rolled version-1 layout: no step field after `size`
        let mut b = BytesMut::new();
        b.put_slice(MANIFEST_MAGIC);
        b.put_u32_le(1); // version 1
        b.put_u64_le(3); // generation
        b.put_u32_le(2); // dim
        b.put_u64_le(1); // num_trees
        b.put_u64_le(12); // global_count
        b.put_u64_le(1); // size
        b.put_u64_le(1); // n_shards
        b.put_u64_le(12); // leaf_count
        b.put_u64_le(300); // byte_len
        b.put_u32_le(0xFEED_F00D); // shard crc
        let crc = crc32(&b);
        b.put_u32_le(crc);
        let m = CheckpointManifest::from_bytes(&b).unwrap();
        assert_eq!(m.generation, 3);
        assert_eq!(m.step, 0, "v1 manifests carry no step");
        assert_eq!(m.shards.len(), 1);
    }

    #[test]
    fn manifest_rejects_leaf_count_drift() {
        let m = CheckpointManifest {
            generation: 1,
            dim: 2,
            num_trees: 1,
            global_count: 99, // != 12 + 18
            size: 2,
            step: 0,
            shards: vec![
                ShardMeta {
                    leaf_count: 12,
                    byte_len: 1,
                    crc: 0,
                },
                ShardMeta {
                    leaf_count: 18,
                    byte_len: 1,
                    crc: 0,
                },
            ],
        };
        assert!(matches!(
            CheckpointManifest::from_bytes(&m.to_bytes()),
            Err(IoError::CountMismatch {
                what: "shard leaf",
                ..
            })
        ));
    }

    #[test]
    fn list_generations_handles_noise() {
        let dir = std::env::temp_dir().join(format!("qf-gen-list-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(list_generations(&dir).is_empty(), "missing dir is empty");
        for name in ["gen-00000002", "gen-00000010", "not-a-gen", "gen-bogus"] {
            std::fs::create_dir_all(dir.join(name)).unwrap();
        }
        assert_eq!(list_generations(&dir), vec![2, 10]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// Wire encodings so recovery programs can ship manifests between rank
// processes on the socket backend (the manifest's own on-disk format
// above stays the CRC-framed layout, unchanged).

impl quadforest_core::Wire for ShardMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leaf_count.encode(out);
        self.byte_len.encode(out);
        self.crc.encode(out);
    }

    fn decode(
        r: &mut quadforest_core::wire::WireReader<'_>,
    ) -> Result<Self, quadforest_core::wire::WireError> {
        Ok(ShardMeta {
            leaf_count: u64::decode(r)?,
            byte_len: u64::decode(r)?,
            crc: u32::decode(r)?,
        })
    }
}

impl quadforest_core::Wire for CheckpointManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.generation.encode(out);
        self.dim.encode(out);
        self.num_trees.encode(out);
        self.global_count.encode(out);
        self.size.encode(out);
        self.step.encode(out);
        self.shards.encode(out);
    }

    fn decode(
        r: &mut quadforest_core::wire::WireReader<'_>,
    ) -> Result<Self, quadforest_core::wire::WireError> {
        Ok(CheckpointManifest {
            generation: u64::decode(r)?,
            dim: u32::decode(r)?,
            num_trees: u64::decode(r)?,
            global_count: u64::decode(r)?,
            size: u64::decode(r)?,
            step: u64::decode(r)?,
            shards: Vec::<ShardMeta>::decode(r)?,
        })
    }
}
