//! Interface (face) iteration.
//!
//! Visits every face interface involving at least one local leaf exactly
//! once per rank: physical boundary faces, equal-size interior faces,
//! and hanging faces (one coarse leaf against a set of finer leaves).
//! Remote sides are taken from a [`GhostLayer`].
//!
//! Unlike classic p4est iteration, this implementation does **not**
//! require the mesh to be 2:1 balanced — the fine side of an interface
//! may be arbitrarily deep (item 4 of the paper's follow-up list: "a
//! mesh iteration algorithm that is functional in the presence of
//! non-2:1-balanced meshes").
//!
//! Emission rules (per rank, deterministic):
//! * boundary faces: emitted by the owning leaf;
//! * equal-size pairs: emitted by the side with the smaller global SFC
//!   position when both are local, and by the local side when the other
//!   is a ghost;
//! * hanging interfaces: emitted by the coarse side when it is local;
//!   when the coarse side is a ghost, by the SFC-first local leaf of the
//!   fine group.

use crate::directions::{neighbor_domain, Box3};
use crate::{Forest, GhostLayer};
use quadforest_core::quadrant::Quadrant;

/// One side of an interface.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaceSide<Q: Quadrant> {
    /// Tree of this side's leaf.
    pub tree: u32,
    /// The leaf.
    pub quad: Q,
    /// The leaf's face through which the interface is seen.
    pub face: u32,
    /// True when the leaf is a ghost (remote).
    pub is_ghost: bool,
}

/// An interface between leaves, or a domain-boundary face.
#[derive(Clone, Debug)]
pub enum Interface<Q: Quadrant> {
    /// A face on the physical domain boundary.
    Boundary(FaceSide<Q>),
    /// An interior interface: the primary side and every leaf touching
    /// it from the opposite side (one for conforming faces, several
    /// when the opposite side is finer).
    Interior(FaceSide<Q>, Vec<FaceSide<Q>>),
}

/// The face of the neighbor-tree domain through which `q` is seen, given
/// that `q` sees the domain through its own face `f`. For intra-tree
/// interfaces this is simply the opposite face; across a tree connection
/// it is the connected face of the neighbor tree composed with the
/// transform's axis mapping — derived here geometrically by comparing
/// contact-box position within the domain.
fn opposite_face(dim: u32, dom_coords: [i32; 3], dom_h: i32, contact: &Box3) -> u32 {
    for (a, &dc) in dom_coords.iter().enumerate().take(dim as usize) {
        if contact.lo[a] == contact.hi[a] {
            // degenerate axis: the contact plane
            return if contact.lo[a] == dc {
                2 * a as u32
            } else {
                debug_assert_eq!(contact.lo[a], dc + dom_h);
                2 * a as u32 + 1
            };
        }
    }
    unreachable!("face contact must be degenerate along exactly one axis")
}

/// Iterate all face interfaces involving local leaves; see the module
/// documentation for the exactly-once emission rules.
///
/// For hanging interfaces whose fine group spans several remote ranks,
/// supply a **full** (corner-adjacent) ghost layer so the emitting rank
/// sees every group member — the same requirement p4est's iterate has.
pub fn iterate_faces<Q: Quadrant>(
    forest: &Forest<Q>,
    ghost: &GhostLayer<Q>,
    mut visit: impl FnMut(Interface<Q>),
) {
    let conn = forest.connectivity();
    for (t, q) in forest.leaves() {
        for f in 0..Q::NUM_FACES {
            let mut off = [0i32; 3];
            off[(f / 2) as usize] = if f & 1 == 1 { 1 } else { -1 };
            let Some(dom) = neighbor_domain(conn, t, q, off) else {
                visit(Interface::Boundary(FaceSide {
                    tree: t,
                    quad: *q,
                    face: f,
                    is_ghost: false,
                }));
                continue;
            };
            let probe = Q::from_coords(dom.coords, dom.level);
            let back_face = opposite_face(Q::DIM, dom.coords, probe.side(), &dom.contact);

            // collect the opposite side: local leaves and ghosts whose
            // subtree overlaps the domain and whose closed box touches
            // the contact region
            let mut others: Vec<FaceSide<Q>> = Vec::new();
            let range = forest.overlapping_range(dom.tree, &probe);
            for p in &forest.tree_leaves(dom.tree)[range] {
                if Box3::of_quad(p).intersects(&dom.contact, Q::DIM) {
                    others.push(FaceSide {
                        tree: dom.tree,
                        quad: *p,
                        face: back_face,
                        is_ghost: false,
                    });
                }
            }
            for g in ghost.overlapping(dom.tree, &probe) {
                if Box3::of_quad(&g.quad).intersects(&dom.contact, Q::DIM) {
                    others.push(FaceSide {
                        tree: dom.tree,
                        quad: g.quad,
                        face: back_face,
                        is_ghost: true,
                    });
                }
            }
            if others.is_empty() {
                // The opposite region is owned remotely but no ghost was
                // supplied (e.g. iteration without a ghost layer): skip.
                continue;
            }

            let my_side = FaceSide {
                tree: t,
                quad: *q,
                face: f,
                is_ghost: false,
            };
            let my_pos = (t, q.morton_abs());

            if others.len() == 1 && others[0].quad.level() == q.level() {
                // conforming pair
                let p = &others[0];
                let emit = p.is_ghost || my_pos < (p.tree, p.quad.morton_abs());
                if emit {
                    visit(Interface::Interior(my_side, others));
                }
            } else if others.len() == 1 && others[0].quad.level() < q.level() {
                // q is on the fine side of a hanging interface
                let p = others[0];
                if !p.is_ghost {
                    continue; // the coarse local side will emit it
                }
                // Coarse ghost: emit once from the SFC-first *local*
                // member of the fine group. The fine group lives inside
                // the mirror of p on our side of the plane, which is
                // exactly q's ancestor at p's level (the unique aligned
                // box of p's size containing q and touching the plane).
                let group = fine_group(forest, ghost, t, q, f, p.quad.level());
                let first_local = group
                    .iter()
                    .filter(|s| !s.is_ghost)
                    .map(|s| s.quad.morton_abs())
                    .min()
                    .expect("q itself is a local group member");
                if first_local == q.morton_abs() {
                    visit(Interface::Interior(p, group));
                }
            } else {
                // q is the coarse side: others are the fine group
                visit(Interface::Interior(my_side, others));
            }
        }
    }
}

/// The contact region in *our* tree frame: the face of `q` itself.
fn own_contact<Q: Quadrant>(q: &Q, f: u32) -> Box3 {
    let c = q.coords();
    let h = q.side();
    let mut b = Box3 {
        lo: c,
        hi: [c[0] + h, c[1] + h, if Q::DIM == 3 { c[2] + h } else { 0 }],
    };
    let a = (f / 2) as usize;
    if f & 1 == 1 {
        b.lo[a] = c[a] + h;
    } else {
        b.hi[a] = c[a];
    }
    b
}

/// The full fine group (local and ghost members) of `q` across its face
/// `f` against a coarser opposite leaf at `coarse_level`: all leaves on
/// q's side adjacent to that coarse leaf. They live inside the mirror
/// of the coarse leaf, `q.ancestor(coarse_level)`, and touch the face
/// plane patch of that ancestor.
fn fine_group<Q: Quadrant>(
    forest: &Forest<Q>,
    ghost: &GhostLayer<Q>,
    tree: u32,
    q: &Q,
    f: u32,
    coarse_level: u8,
) -> Vec<FaceSide<Q>> {
    debug_assert!(coarse_level < q.level());
    let anc = q.ancestor(coarse_level);
    let patch = own_contact(&anc, f);
    let mut sides: Vec<FaceSide<Q>> = Vec::new();
    let range = forest.overlapping_range(tree, &anc);
    for p in &forest.tree_leaves(tree)[range] {
        if Box3::of_quad(p).intersects(&patch, Q::DIM) {
            sides.push(FaceSide {
                tree,
                quad: *p,
                face: f,
                is_ghost: false,
            });
        }
    }
    for g in ghost.overlapping(tree, &anc) {
        if Box3::of_quad(&g.quad).intersects(&patch, Q::DIM) {
            sides.push(FaceSide {
                tree,
                quad: g.quad,
                face: f,
                is_ghost: true,
            });
        }
    }
    sides.sort_by_key(|s| (s.quad.morton_abs(), s.quad.level()));
    sides.dedup();
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    fn count_interfaces<Q: Quadrant>(f: &Forest<Q>, g: &GhostLayer<Q>) -> (usize, usize, usize) {
        let (mut boundary, mut conforming, mut hanging) = (0, 0, 0);
        iterate_faces(f, g, |iface| match iface {
            Interface::Boundary(_) => boundary += 1,
            Interface::Interior(_, others) => {
                if others.len() == 1 {
                    conforming += 1;
                } else {
                    hanging += 1;
                }
            }
        });
        (boundary, conforming, hanging)
    }

    #[test]
    fn uniform_2d_counts() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let g = GhostLayer::default();
            let (b, c, h) = count_interfaces(&f, &g);
            // 4x4 grid: boundary faces 16, interior faces 2*4*3 = 24
            assert_eq!(b, 16);
            assert_eq!(c, 24);
            assert_eq!(h, 0);
        });
    }

    #[test]
    fn uniform_3d_counts() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            let g = GhostLayer::default();
            let (b, c, h) = count_interfaces(&f, &g);
            // 2x2x2: boundary 24, interior 12
            assert_eq!(b, 24);
            assert_eq!(c, 12);
            assert_eq!(h, 0);
        });
    }

    #[test]
    fn hanging_interface_emitted_once_with_all_fines() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // refine only quadrant 0 -> its +x face against quadrant 1 is
            // hanging with two fine leaves
            f.refine(&comm, false, |_, q| q.morton_index() == 0);
            let g = GhostLayer::default();
            let mut hangs = Vec::new();
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(primary, others) = iface {
                    if others.len() > 1 {
                        hangs.push((primary, others));
                    }
                }
            });
            // two hanging faces: +x and +y of the refined quadrant
            assert_eq!(hangs.len(), 2);
            for (primary, others) in hangs {
                assert_eq!(primary.quad.level(), 1, "coarse side is primary");
                assert_eq!(others.len(), 2);
                assert!(others.iter().all(|s| s.quad.level() == 2));
                assert!(others.iter().all(|s| !s.is_ghost));
            }
        });
    }

    #[test]
    fn non_balanced_mesh_iterates() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // 3-level jump at the domain center: no balance call
            let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
            f.refine(&comm, true, |_, q| {
                q.contains_point(center) && q.level() < 4
            });
            assert!(f.is_balanced_local(BalanceKind::Face).is_err());
            let g = GhostLayer::default();
            let mut seen_deep_hang = false;
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(primary, others) = iface {
                    let dl = others
                        .iter()
                        .map(|s| s.quad.level())
                        .max()
                        .unwrap()
                        .saturating_sub(primary.quad.level());
                    if dl >= 2 {
                        seen_deep_hang = true;
                        // all fine leaves on the face must be present
                        assert!(others.len() >= 2);
                    }
                }
            });
            assert!(seen_deep_hang, "expected an interface with level jump >= 2");
        });
    }

    #[test]
    fn every_interior_face_counted_exactly_once() {
        // Sum over interfaces of (number of fine-side members) must equal
        // the count of (leaf, face) pairs that are interior and finest.
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |_, q| q.morton_index() % 3 == 0);
            let g = GhostLayer::default();
            let mut emitted: Vec<((u32, u64, u8), (u32, u64, u8))> = Vec::new();
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(p, others) = iface {
                    for o in others {
                        let a = (p.tree, p.quad.morton_abs(), p.quad.level());
                        let b = (o.tree, o.quad.morton_abs(), o.quad.level());
                        let key = if a < b { (a, b) } else { (b, a) };
                        emitted.push(key);
                    }
                }
            });
            let n = emitted.len();
            emitted.sort();
            emitted.dedup();
            assert_eq!(emitted.len(), n, "an adjacent leaf pair was emitted twice");
        });
    }

    #[test]
    fn multitree_interfaces_cross_faces() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let g = GhostLayer::default();
            let mut cross = 0;
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(p, others) = iface {
                    if others.iter().any(|o| o.tree != p.tree) {
                        cross += 1;
                    }
                }
            });
            // two leaves on each side of the shared tree face
            assert_eq!(cross, 2);
        });
    }

    #[test]
    fn distributed_interfaces_cover_rank_boundaries() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            let g = f.ghost(&comm, BalanceKind::Face);
            let mut ghost_faces = 0;
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(p, others) = iface {
                    if p.is_ghost || others.iter().any(|o| o.is_ghost) {
                        ghost_faces += 1;
                    }
                }
            });
            assert!(
                ghost_faces > 0,
                "rank-boundary interfaces must appear via ghosts"
            );
        });
    }

    #[test]
    fn hanging_interface_across_rank_boundary() {
        // 2D unit square, uniform level 1 with the curve-last quadrant
        // refined: 3 coarse + 4 fine leaves. With P = 2 the coarse
        // leaves land on rank 0 and the fine family on rank 1, so the
        // two hanging interfaces (q1|fines and q2|fines) straddle the
        // rank boundary. Each rank must emit each interface it touches
        // exactly once, with the full fine group attached.
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            f.refine(&comm, false, |_, q| q.morton_index() == 3);
            f.partition(&comm);
            // verify the intended distribution: 7 leaves -> 3 + 4
            assert_eq!(f.global_count(), 7);
            let counts = comm.allgather(f.local_count());
            assert_eq!(counts, vec![3, 4]);
            let g = f.ghost(&comm, BalanceKind::Face);
            // key hanging interfaces by their coarse side
            let mut seen: Vec<((u64, u8), usize)> = Vec::new();
            iterate_faces(&f, &g, |iface| {
                if let Interface::Interior(p, others) = iface {
                    if others.len() > 1 {
                        assert_eq!(others.len(), 2, "two fine leaves per face in 2D");
                        assert!(p.quad.level() < others[0].quad.level());
                        let key = (p.quad.morton_abs(), p.quad.level());
                        if let Some(e) = seen.iter_mut().find(|(k, _)| *k == key) {
                            e.1 += 1;
                        } else {
                            seen.push((key, 1));
                        }
                    }
                }
            });
            // both hanging interfaces touch both ranks; each rank emits
            // each exactly once
            assert_eq!(seen.len(), 2, "rank {} saw {seen:?}", comm.rank());
            assert!(
                seen.iter().all(|(_, n)| *n == 1),
                "duplicate emission on rank {}: {seen:?}",
                comm.rank()
            );
        });
    }

    #[test]
    fn boundary_faces_match_tree_boundaries() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let g = GhostLayer::default();
            iterate_faces(&f, &g, |iface| {
                if let Interface::Boundary(side) = iface {
                    let tb = side.quad.tree_boundaries();
                    let axis = (side.face / 2) as usize;
                    assert_eq!(
                        tb[axis], side.face as i32,
                        "boundary emission must agree with Algorithm 12"
                    );
                }
            });
        });
    }
}
