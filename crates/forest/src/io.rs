//! Portable forest serialization — the `p4est_save` / `p4est_load`
//! equivalent.
//!
//! A forest is serialized representation-independently as `(tree,
//! coordinates, level)` triples plus the partition markers, so a forest
//! saved from one quadrant representation loads into any other (the
//! virtual-interface property extends to storage). The format is a
//! self-describing little-endian binary stream with a magic header and
//! version.

use crate::{Forest, SfcPosition};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use quadforest_comm::Comm;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::Quadrant;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"QFOR";
const VERSION: u32 = 1;

/// Representation-independent image of one rank's forest partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableForest {
    /// Spatial dimension.
    pub dim: u32,
    /// Number of trees in the connectivity.
    pub num_trees: u64,
    /// Global leaf count.
    pub global_count: u64,
    /// Communicator size the forest was saved from.
    pub size: u64,
    /// Partition markers (`size + 1` entries).
    pub markers: Vec<SfcPosition>,
    /// This rank's leaves: `(tree, coords, level)`.
    pub leaves: Vec<(u32, [i32; 3], u8)>,
}

impl PortableForest {
    /// Serialize to a binary buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + self.leaves.len() * 18);
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_u32_le(self.dim);
        b.put_u64_le(self.num_trees);
        b.put_u64_le(self.global_count);
        b.put_u64_le(self.size);
        b.put_u64_le(self.markers.len() as u64);
        for (t, a) in &self.markers {
            b.put_u32_le(*t);
            b.put_u64_le(*a);
        }
        b.put_u64_le(self.leaves.len() as u64);
        for (t, c, l) in &self.leaves {
            b.put_u32_le(*t);
            b.put_i32_le(c[0]);
            b.put_i32_le(c[1]);
            b.put_i32_le(c[2]);
            b.put_u8(*l);
        }
        b.freeze()
    }

    /// Deserialize from a binary buffer.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, String> {
        let need = |data: &[u8], n: usize| {
            if data.remaining() < n {
                Err(format!("truncated stream: need {n} more bytes"))
            } else {
                Ok(())
            }
        };
        need(data, 8)?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(format!("bad magic {magic:?}"));
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        need(data, 4 + 8 * 4)?;
        let dim = data.get_u32_le();
        let num_trees = data.get_u64_le();
        let global_count = data.get_u64_le();
        let size = data.get_u64_le();
        let n_markers = data.get_u64_le() as usize;
        if n_markers != size as usize + 1 {
            return Err(format!("marker count {n_markers} != size+1"));
        }
        need(data, n_markers * 12)?;
        let markers = (0..n_markers)
            .map(|_| (data.get_u32_le(), data.get_u64_le()))
            .collect();
        need(data, 8)?;
        let n_leaves = data.get_u64_le() as usize;
        need(data, n_leaves * 17)?;
        let leaves = (0..n_leaves)
            .map(|_| {
                let t = data.get_u32_le();
                let c = [data.get_i32_le(), data.get_i32_le(), data.get_i32_le()];
                let l = data.get_u8();
                (t, c, l)
            })
            .collect();
        Ok(Self {
            dim,
            num_trees,
            global_count,
            size,
            markers,
            leaves,
        })
    }
}

impl<Q: Quadrant> Forest<Q> {
    /// Capture this rank's partition in portable form.
    pub fn to_portable(&self) -> PortableForest {
        PortableForest {
            dim: Q::DIM,
            num_trees: self.connectivity().num_trees() as u64,
            global_count: self.global_count(),
            size: self.size() as u64,
            markers: self.markers().to_vec(),
            leaves: self
                .leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect(),
        }
    }

    /// Reconstruct a forest from its portable image. The communicator
    /// must have the same size as at save time, and `conn` must be the
    /// connectivity the forest was built over (dimension and tree count
    /// are checked).
    pub fn from_portable(
        conn: Arc<Connectivity>,
        comm: &Comm,
        portable: &PortableForest,
    ) -> Result<Self, String> {
        if portable.dim != Q::DIM {
            return Err(format!(
                "dimension mismatch: stream {} vs representation {}",
                portable.dim,
                Q::DIM
            ));
        }
        if portable.num_trees != conn.num_trees() as u64 {
            return Err(format!(
                "tree count mismatch: stream {} vs connectivity {}",
                portable.num_trees,
                conn.num_trees()
            ));
        }
        if portable.size != comm.size() as u64 {
            return Err(format!(
                "communicator size mismatch: stream {} vs run {}",
                portable.size,
                comm.size()
            ));
        }
        let mut trees: Vec<Vec<Q>> = vec![Vec::new(); conn.num_trees()];
        for (t, c, l) in &portable.leaves {
            if *t as usize >= trees.len() || *l > Q::MAX_LEVEL {
                return Err(format!("corrupt leaf record ({t}, {c:?}, {l})"));
            }
            trees[*t as usize].push(Q::from_coords(*c, *l));
        }
        let f = Self::assemble(
            conn,
            comm.rank(),
            comm.size(),
            trees,
            portable.global_count,
            portable.markers.clone(),
        );
        f.validate()?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};

    type Q2 = StandardQuad<2>;

    fn adaptive_forest(comm: &Comm) -> Forest<Q2> {
        let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
        let mut f = Forest::<Q2>::new_uniform(conn, comm, 2);
        let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
        f.refine(comm, true, |t, q| {
            t == 0 && q.level() < 4 && q.contains_point(center)
        });
        f.balance(comm, BalanceKind::Face);
        f.partition(comm);
        f
    }

    #[test]
    fn bytes_roundtrip() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let bytes = p.to_bytes();
            let q = PortableForest::from_bytes(&bytes).unwrap();
            assert_eq!(p, q);
        });
    }

    #[test]
    fn load_into_same_representation() {
        quadforest_comm::run(3, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let conn = f.connectivity().clone();
            let g = Forest::<Q2>::from_portable(conn, &comm, &p).unwrap();
            assert_eq!(g.checksum(&comm), f.checksum(&comm));
            assert_eq!(g.global_count(), f.global_count());
            assert_eq!(g.markers(), f.markers());
        });
    }

    #[test]
    fn load_into_other_representations() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let conn = f.connectivity().clone();
            let reference = f.checksum(&comm);
            let m = Forest::<MortonQuad<2>>::from_portable(conn.clone(), &comm, &p).unwrap();
            assert_eq!(m.checksum(&comm), reference);
            let a = Forest::<AvxQuad<2>>::from_portable(conn, &comm, &p).unwrap();
            assert_eq!(a.checksum(&comm), reference);
        });
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        quadforest_comm::run(1, |comm| {
            let f = adaptive_forest(&comm);
            let bytes = f.to_portable().to_bytes();
            assert!(PortableForest::from_bytes(&bytes[..3]).is_err());
            let mut bad = bytes.to_vec();
            bad[0] = b'X';
            assert!(PortableForest::from_bytes(&bad).is_err());
            let truncated = &bytes[..bytes.len() - 5];
            assert!(PortableForest::from_bytes(truncated).is_err());
        });
    }

    #[test]
    fn wrong_context_is_rejected() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            // wrong dimension
            let conn3 = Arc::new(Connectivity::unit(3));
            assert!(
                Forest::<MortonQuad<3>>::from_portable(conn3, &comm, &p).is_err(),
                "3D representation must reject a 2D stream"
            );
            // wrong tree count
            let conn1 = Arc::new(Connectivity::unit(2));
            assert!(Forest::<Q2>::from_portable(conn1, &comm, &p).is_err());
        });
    }
}
