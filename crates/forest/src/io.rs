//! Portable forest serialization — the `p4est_save` / `p4est_load`
//! equivalent.
//!
//! A forest is serialized representation-independently as `(tree,
//! coordinates, level)` triples plus the partition markers, so a forest
//! saved from one quadrant representation loads into any other (the
//! virtual-interface property extends to storage). The format is a
//! self-describing little-endian binary stream with a magic header, a
//! version, and a trailing CRC32 guard over the entire stream — any
//! single-bit flip or truncation is rejected with a typed [`IoError`],
//! never a panic or a silent mis-load. This stream is also the shard
//! payload of the on-disk checkpoint format (see
//! [`checkpoint`](crate::Forest::save_checkpoint)).

use crate::crc::crc32;
use crate::{Forest, IoError, SfcPosition};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use quadforest_comm::Comm;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::Quadrant;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"QFOR";
/// Stream format version written for payload-less forests. Version 2
/// added the trailing CRC32 guard; version 1 streams (no guard) are
/// rejected.
pub(crate) const VERSION: u32 = 2;
/// Stream format version written when a payload section is present:
/// after the leaf records, one length-prefixed opaque byte string per
/// leaf (the `Wire` encoding of the application's payload type).
/// Payload-less version-2 streams remain loadable.
pub(crate) const VERSION_PAYLOAD: u32 = 3;

/// Bytes per serialized marker / leaf record.
const MARKER_BYTES: usize = 12;
const LEAF_BYTES: usize = 17;
/// Minimum bytes per payload record (the 8-byte length prefix).
const PAYLOAD_MIN_BYTES: usize = 8;

/// Representation-independent image of one rank's forest partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableForest {
    /// Spatial dimension.
    pub dim: u32,
    /// Number of trees in the connectivity.
    pub num_trees: u64,
    /// Global leaf count.
    pub global_count: u64,
    /// Communicator size the forest was saved from.
    pub size: u64,
    /// Partition markers (`size + 1` entries).
    pub markers: Vec<SfcPosition>,
    /// This rank's leaves: `(tree, coords, level)`.
    pub leaves: Vec<(u32, [i32; 3], u8)>,
    /// Optional per-leaf payloads, index-aligned with `leaves`: the
    /// opaque [`Wire`](quadforest_core::Wire) encoding of the
    /// application's payload type. `None` for payload-less forests
    /// (serialized as version 2, byte-identical to previous builds);
    /// `Some` streams are written as version 3.
    pub payload: Option<Vec<Vec<u8>>>,
}

/// Bounds-checked read cursor: every decode step goes through
/// [`Cursor::need`], so a truncated or length-lying stream surfaces as
/// [`IoError::Truncated`] instead of a panic inside the `bytes` crate.
/// Shared with the checkpoint manifest parser.
pub(crate) struct Cursor<'a>(pub(crate) &'a [u8]);

impl<'a> Cursor<'a> {
    pub(crate) fn need(&self, n: usize) -> Result<(), IoError> {
        if self.0.remaining() < n {
            Err(IoError::Truncated {
                needed: n,
                remaining: self.0.remaining(),
            })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, IoError> {
        self.need(1)?;
        Ok(self.0.get_u8())
    }

    pub(crate) fn u32(&mut self) -> Result<u32, IoError> {
        self.need(4)?;
        Ok(self.0.get_u32_le())
    }

    fn i32(&mut self) -> Result<i32, IoError> {
        self.need(4)?;
        Ok(self.0.get_i32_le())
    }

    pub(crate) fn u64(&mut self) -> Result<u64, IoError> {
        self.need(8)?;
        Ok(self.0.get_u64_le())
    }

    /// A length prefix that must describe `record_bytes`-sized records
    /// still present in the stream. Checked with saturating arithmetic
    /// so a hostile 2^64-ish count cannot overflow the bounds check.
    pub(crate) fn count(
        &mut self,
        what: &'static str,
        record_bytes: usize,
    ) -> Result<usize, IoError> {
        let n = self.u64()?;
        let implied = (n as u128).saturating_mul(record_bytes as u128);
        if implied > self.0.remaining() as u128 {
            return Err(IoError::CountMismatch {
                what,
                found: n,
                expected: (self.0.remaining() / record_bytes) as u64,
            });
        }
        Ok(n as usize)
    }
}

impl PortableForest {
    /// Serialize to a binary buffer: CRC32-terminated version 2, or
    /// version 3 when a payload section is present. A `payload: None`
    /// forest serializes byte-identically to previous (pre-payload)
    /// builds.
    pub fn to_bytes(&self) -> Bytes {
        let payload_bytes: usize = self
            .payload
            .as_ref()
            .map(|p| 8 + p.iter().map(|v| 8 + v.len()).sum::<usize>())
            .unwrap_or(0);
        let mut b = BytesMut::with_capacity(
            48 + self.markers.len() * MARKER_BYTES
                + self.leaves.len() * LEAF_BYTES
                + payload_bytes
                + 4,
        );
        b.put_slice(MAGIC);
        b.put_u32_le(if self.payload.is_some() {
            VERSION_PAYLOAD
        } else {
            VERSION
        });
        b.put_u32_le(self.dim);
        b.put_u64_le(self.num_trees);
        b.put_u64_le(self.global_count);
        b.put_u64_le(self.size);
        b.put_u64_le(self.markers.len() as u64);
        for (t, a) in &self.markers {
            b.put_u32_le(*t);
            b.put_u64_le(*a);
        }
        b.put_u64_le(self.leaves.len() as u64);
        for (t, c, l) in &self.leaves {
            b.put_u32_le(*t);
            b.put_i32_le(c[0]);
            b.put_i32_le(c[1]);
            b.put_i32_le(c[2]);
            b.put_u8(*l);
        }
        if let Some(payload) = &self.payload {
            debug_assert_eq!(payload.len(), self.leaves.len());
            b.put_u64_le(payload.len() as u64);
            for item in payload {
                b.put_u64_le(item.len() as u64);
                b.put_slice(item);
            }
        }
        let crc = crc32(&b);
        b.put_u32_le(crc);
        b.freeze()
    }

    /// Deserialize from a binary buffer. Corrupt input — truncation,
    /// bit flips (caught by the CRC32 guard), hostile length prefixes —
    /// returns a typed [`IoError`] and never panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, IoError> {
        let mut cur = Cursor(data);
        cur.need(8)?;
        let mut magic = [0u8; 4];
        cur.0.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(IoError::BadMagic { found: magic });
        }
        let version = cur.u32()?;
        if version != VERSION && version != VERSION_PAYLOAD {
            return Err(IoError::UnsupportedVersion {
                found: version,
                supported: VERSION_PAYLOAD,
            });
        }
        // verify the trailing CRC over everything before it, up front:
        // after this point any parse failure is a format bug, not rot
        if data.len() < 12 {
            return Err(IoError::Truncated {
                needed: 12,
                remaining: data.len(),
            });
        }
        let body = &data[..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(IoError::ChecksumMismatch { stored, computed });
        }
        // restrict the cursor to the guarded body
        cur.0 = &body[8..];
        let dim = cur.u32()?;
        let num_trees = cur.u64()?;
        let global_count = cur.u64()?;
        let size = cur.u64()?;
        let n_markers = cur.count("marker", MARKER_BYTES)?;
        if n_markers as u64 != size.saturating_add(1) {
            return Err(IoError::CountMismatch {
                what: "marker",
                found: n_markers as u64,
                expected: size.saturating_add(1),
            });
        }
        let mut markers = Vec::with_capacity(n_markers);
        for _ in 0..n_markers {
            markers.push((cur.u32()?, cur.u64()?));
        }
        let n_leaves = cur.count("leaf", LEAF_BYTES)?;
        let mut leaves = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            let t = cur.u32()?;
            let c = [cur.i32()?, cur.i32()?, cur.i32()?];
            let l = cur.u8()?;
            leaves.push((t, c, l));
        }
        let payload = if version == VERSION_PAYLOAD {
            let n_payload = cur.count("payload", PAYLOAD_MIN_BYTES)?;
            if n_payload != n_leaves {
                return Err(IoError::CountMismatch {
                    what: "payload",
                    found: n_payload as u64,
                    expected: n_leaves as u64,
                });
            }
            let mut payload = Vec::with_capacity(n_payload);
            for _ in 0..n_payload {
                let len = cur.u64()?;
                // bounds before allocation: a hostile length must not
                // reserve memory it cannot back with input bytes
                if len > cur.0.remaining() as u64 {
                    return Err(IoError::Truncated {
                        needed: len as usize,
                        remaining: cur.0.remaining(),
                    });
                }
                let len = len as usize;
                let mut item = vec![0u8; len];
                cur.0.copy_to_slice(&mut item);
                payload.push(item);
            }
            Some(payload)
        } else {
            None
        };
        if cur.0.remaining() > 0 {
            return Err(IoError::CountMismatch {
                what: "trailing byte",
                found: cur.0.remaining() as u64,
                expected: 0,
            });
        }
        Ok(Self {
            dim,
            num_trees,
            global_count,
            size,
            markers,
            leaves,
            payload,
        })
    }
}

impl<Q: Quadrant> Forest<Q> {
    /// Capture this rank's partition in portable form (no payload
    /// section; serializes as a version-2 stream).
    pub fn to_portable(&self) -> PortableForest {
        PortableForest {
            dim: Q::DIM,
            num_trees: self.connectivity().num_trees() as u64,
            global_count: self.global_count(),
            size: self.size() as u64,
            markers: self.markers().to_vec(),
            leaves: self
                .leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect(),
            payload: None,
        }
    }

    /// Capture this rank's partition with its per-leaf payloads in
    /// portable form (serializes as a version-3 stream). Each payload
    /// is stored as the opaque `Wire` encoding of `T`, so the stream
    /// can be re-sliced across rank counts without knowing `T`.
    pub fn to_portable_with_data<T: quadforest_core::Wire>(
        &self,
        data: &crate::LeafData<T>,
    ) -> PortableForest {
        data.check_aligned(self, "to_portable_with_data");
        let mut p = self.to_portable();
        p.payload = Some(data.iter().map(|v| v.to_wire()).collect());
        p
    }

    /// Reconstruct a forest from its portable image. The communicator
    /// must have the same size as at save time (use
    /// [`Forest::load_checkpoint`] for repartition-on-load), and `conn`
    /// must be the connectivity the forest was built over (dimension
    /// and tree count are checked).
    pub fn from_portable(
        conn: Arc<Connectivity>,
        comm: &Comm,
        portable: &PortableForest,
    ) -> Result<Self, IoError> {
        if portable.dim != Q::DIM {
            return Err(IoError::DimensionMismatch {
                stream: portable.dim,
                representation: Q::DIM,
            });
        }
        if portable.num_trees != conn.num_trees() as u64 {
            return Err(IoError::TreeCountMismatch {
                stream: portable.num_trees,
                connectivity: conn.num_trees() as u64,
            });
        }
        if portable.size != comm.size() as u64 {
            return Err(IoError::SizeMismatch {
                stream: portable.size,
                communicator: comm.size() as u64,
            });
        }
        let mut trees: Vec<Vec<Q>> = vec![Vec::new(); conn.num_trees()];
        for (t, c, l) in &portable.leaves {
            if *t as usize >= trees.len() || *l > Q::MAX_LEVEL {
                return Err(IoError::CorruptLeaf {
                    tree: *t,
                    coords: *c,
                    level: *l,
                });
            }
            trees[*t as usize].push(Q::from_coords(*c, *l));
        }
        let f = Self::assemble(
            conn,
            comm.rank(),
            comm.size(),
            trees,
            portable.global_count,
            portable.markers.clone(),
        );
        f.validate()?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};

    type Q2 = StandardQuad<2>;

    fn adaptive_forest(comm: &Comm) -> Forest<Q2> {
        let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
        let mut f = Forest::<Q2>::new_uniform(conn, comm, 2);
        let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
        f.refine(comm, true, |t, q| {
            t == 0 && q.level() < 4 && q.contains_point(center)
        });
        f.balance(comm, BalanceKind::Face);
        f.partition(comm);
        f
    }

    #[test]
    fn bytes_roundtrip() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let bytes = p.to_bytes();
            let q = PortableForest::from_bytes(&bytes).unwrap();
            assert_eq!(p, q);
        });
    }

    #[test]
    fn load_into_same_representation() {
        quadforest_comm::run(3, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let conn = f.connectivity().clone();
            let g = Forest::<Q2>::from_portable(conn, &comm, &p).unwrap();
            assert_eq!(g.checksum(&comm), f.checksum(&comm));
            assert_eq!(g.global_count(), f.global_count());
            assert_eq!(g.markers(), f.markers());
        });
    }

    #[test]
    fn load_into_other_representations() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            let conn = f.connectivity().clone();
            let reference = f.checksum(&comm);
            let m = Forest::<MortonQuad<2>>::from_portable(conn.clone(), &comm, &p).unwrap();
            assert_eq!(m.checksum(&comm), reference);
            let a = Forest::<AvxQuad<2>>::from_portable(conn, &comm, &p).unwrap();
            assert_eq!(a.checksum(&comm), reference);
        });
    }

    #[test]
    fn corrupt_streams_are_rejected_with_typed_errors() {
        quadforest_comm::run(1, |comm| {
            let f = adaptive_forest(&comm);
            let bytes = f.to_portable().to_bytes();
            assert!(matches!(
                PortableForest::from_bytes(&bytes[..3]),
                Err(IoError::Truncated { .. })
            ));
            let mut bad = bytes.to_vec();
            bad[0] = b'X';
            assert!(matches!(
                PortableForest::from_bytes(&bad),
                Err(IoError::BadMagic { .. })
            ));
            // a bit flip anywhere in the body trips the CRC guard
            let mut flipped = bytes.to_vec();
            flipped[20] ^= 0x40;
            assert!(matches!(
                PortableForest::from_bytes(&flipped),
                Err(IoError::ChecksumMismatch { .. })
            ));
            // truncation that removes whole records still fails the CRC
            let truncated = &bytes[..bytes.len() - 5];
            assert!(PortableForest::from_bytes(truncated).is_err());
            // wrong version is named, not guessed at
            let mut versioned = bytes.to_vec();
            versioned[4] = 99;
            assert!(matches!(
                PortableForest::from_bytes(&versioned),
                Err(IoError::UnsupportedVersion { found: 99, .. })
            ));
        });
    }

    #[test]
    fn hostile_length_prefix_is_rejected_not_allocated() {
        quadforest_comm::run(1, |comm| {
            let f = adaptive_forest(&comm);
            let bytes = f.to_portable().to_bytes().to_vec();
            // overwrite the marker-count field (offset 32) with u64::MAX;
            // the CRC is recomputed so only the count check can object
            let mut evil = bytes.clone();
            evil[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
            let len = evil.len();
            let crc = crc32(&evil[..len - 4]);
            evil[len - 4..].copy_from_slice(&crc.to_le_bytes());
            assert!(matches!(
                PortableForest::from_bytes(&evil),
                Err(IoError::CountMismatch { what: "marker", .. })
            ));
        });
    }

    #[test]
    fn wrong_context_is_rejected() {
        quadforest_comm::run(2, |comm| {
            let f = adaptive_forest(&comm);
            let p = f.to_portable();
            // wrong dimension
            let conn3 = Arc::new(Connectivity::unit(3));
            assert!(
                matches!(
                    Forest::<MortonQuad<3>>::from_portable(conn3, &comm, &p),
                    Err(IoError::DimensionMismatch { .. })
                ),
                "3D representation must reject a 2D stream"
            );
            // wrong tree count
            let conn1 = Arc::new(Connectivity::unit(2));
            assert!(matches!(
                Forest::<Q2>::from_portable(conn1, &comm, &p),
                Err(IoError::TreeCountMismatch { .. })
            ));
        });
    }
}
