//! Parallel 2:1 balance.
//!
//! A forest is 2:1 balanced when no leaf is adjacent (across the chosen
//! relations: faces, or faces+edges+corners) to a leaf more than one
//! refinement level away. Balancing only ever *refines* (as in p4est):
//! the algorithm ripples refinement outward from fine regions until the
//! constraint holds globally.
//!
//! The implementation alternates local fixed-point rounds with a
//! constraint exchange: each leaf `q` emits, for every neighbor domain
//! `n` of its own size, the constraint "any leaf overlapping `n` must
//! have level ≥ `level(q) − 1`". Constraints targeting remote SFC ranges
//! are shipped to their owner ranks; a global allreduce detects the
//! fixed point. Convergence is guaranteed because levels are bounded by
//! [`Quadrant::MAX_LEVEL`] and every round only refines.
//!
//! Inter-tree constraints propagate across *face* connections (including
//! edge/corner offsets that exit through a single tree face); tree-edge
//! and tree-corner connections are not modeled (see DESIGN.md).

use crate::directions::{
    for_each_neighbor_domain, neighbor_domain, offsets, Adjacency, NeighborScratch,
};
use crate::Forest;
use quadforest_comm::Comm;
use quadforest_core::quadrant::Quadrant;

/// Which neighbor relations the 2:1 constraint covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BalanceKind {
    /// Faces only (p4est's `P4EST_CONNECT_FACE`).
    Face,
    /// Faces, edges (3D) and corners (`P4EST_CONNECT_FULL`).
    Full,
}

impl BalanceKind {
    fn adjacency(self) -> Adjacency {
        match self {
            BalanceKind::Face => Adjacency::Face,
            BalanceKind::Full => Adjacency::Full,
        }
    }
}

/// A balance constraint: leaves overlapping the domain anchored at
/// `coords` (level `level`) in `tree` must be at least `level - 1` deep.
type Constraint = (u32, [i32; 3], u8);

impl<Q: Quadrant> Forest<Q> {
    /// 2:1-balance the forest (collective). Returns the number of leaves
    /// refined on this rank.
    pub fn balance(&mut self, comm: &Comm, kind: BalanceKind) -> usize {
        let _span = quadforest_telemetry::span("balance");
        let adjacency = kind.adjacency();
        let offs = offsets(Q::DIM, adjacency);
        let mut scratch = NeighborScratch::new();
        let mut refined_total = 0;
        loop {
            let _round = quadforest_telemetry::span("balance.round");
            quadforest_telemetry::counter_add("forest.balance.rounds", 1);
            // local fixed point
            refined_total += self.balance_local(adjacency);

            // emit constraints whose target range is (partly) remote;
            // leaves below level 2 cannot constrain anyone below level 1
            // and are skipped by the enumeration's level floor
            let mut outgoing: Vec<Vec<Constraint>> = (0..self.size).map(|_| Vec::new()).collect();
            for t in 0..self.trees.len() {
                for_each_neighbor_domain(
                    self.connectivity(),
                    t as u32,
                    &self.trees[t],
                    &offs,
                    2,
                    &mut scratch,
                    |_, _, dom| {
                        let probe = Q::from_coords(dom.coords, dom.level);
                        for r in self.owners_of_subtree(dom.tree, &probe) {
                            if r != self.rank {
                                outgoing[r].push((dom.tree, dom.coords, dom.level));
                            }
                        }
                    },
                );
            }
            quadforest_telemetry::counter_add(
                "forest.balance.constraints_sent",
                outgoing.iter().map(|v| v.len() as u64).sum(),
            );
            let incoming = comm.alltoallv(outgoing);

            // apply remote constraints in one batch
            let remote: Vec<Constraint> = incoming.into_iter().flatten().collect();
            let changed = self.apply_constraints(&remote) > 0;
            if changed {
                // remote-induced refinement may cascade locally
                refined_total += self.balance_local(adjacency);
            }

            let global_changed = comm.allreduce(changed as u64, |a, b| a | b);
            // one final quiet round proves the fixed point; since
            // balance_local always runs to a local fixed point and
            // constraints only flow through the exchange, a round with no
            // remote-induced changes anywhere is the global fixed point.
            if global_changed == 0 {
                break;
            }
        }
        self.refresh_global(comm);
        debug_assert_eq!(self.validate(), Ok(()));
        self.guard_phase("balance");
        refined_total
    }

    /// Enforce the 2:1 constraint among local leaves until stable.
    /// Each round gathers all constraints, marks every violator, and
    /// splits them in one rebuild per tree (one level per round; rounds
    /// repeat to the fixed point). Returns the number of leaves refined.
    fn balance_local(&mut self, adjacency: Adjacency) -> usize {
        let offs = offsets(Q::DIM, adjacency);
        let mut scratch = NeighborScratch::new();
        let mut refined = 0;
        loop {
            // collect constraints from all local leaves of level ≥ 2,
            // one batched SoA sweep per tree
            let mut constraints: Vec<Constraint> = Vec::new();
            for t in 0..self.trees.len() {
                for_each_neighbor_domain(
                    self.connectivity(),
                    t as u32,
                    &self.trees[t],
                    &offs,
                    2,
                    &mut scratch,
                    |_, _, dom| constraints.push((dom.tree, dom.coords, dom.level)),
                );
            }
            let changed = self.apply_constraints(&constraints);
            refined += changed;
            if changed == 0 {
                return refined;
            }
        }
    }

    /// Mark every local leaf violating any of `constraints` and split
    /// the marked leaves once (one level). One rebuild per affected
    /// tree. Returns the number of splits.
    fn apply_constraints(&mut self, constraints: &[Constraint]) -> usize {
        // per-tree violator marks
        let mut marks: Vec<Vec<bool>> = self.trees.iter().map(|t| vec![false; t.len()]).collect();
        let mut any = false;
        for &(tree, coords, level) in constraints {
            if level < 2 {
                continue;
            }
            let dom = Q::from_coords(coords, level);
            let range = self.overlapping_range(tree, &dom);
            let leaves = &self.trees[tree as usize];
            let min_level = level - 1;
            for i in range {
                if leaves[i].level() < min_level && !marks[tree as usize][i] {
                    marks[tree as usize][i] = true;
                    any = true;
                }
            }
        }
        if !any {
            return 0;
        }
        let mut split = 0;
        for (t, tree_marks) in marks.into_iter().enumerate() {
            if !tree_marks.iter().any(|&m| m) {
                continue;
            }
            let old = std::mem::take(&mut self.trees[t]);
            let mut out: Vec<Q> =
                Vec::with_capacity(old.len() + tree_marks.iter().filter(|&&m| m).count() * 7);
            for (q, marked) in old.into_iter().zip(tree_marks) {
                if marked {
                    split += 1;
                    for c in 0..Q::NUM_CHILDREN {
                        out.push(q.child(c));
                    }
                } else {
                    out.push(q);
                }
            }
            self.trees[t] = out;
        }
        split
    }

    /// Check the 2:1 property over the locally visible mesh (local
    /// leaves plus an optional ghost layer), returning the first
    /// violation found. Used by tests; collective-free.
    pub fn is_balanced_local(&self, kind: BalanceKind) -> Result<(), String> {
        for (t, q) in self.leaves() {
            if q.level() < 2 {
                continue;
            }
            for off in offsets(Q::DIM, kind.adjacency()) {
                let Some(dom) = neighbor_domain(self.connectivity(), t, q, off) else {
                    continue;
                };
                let probe = Q::from_coords(dom.coords, dom.level);
                let range = self.overlapping_range(dom.tree, &probe);
                for p in &self.trees[dom.tree as usize][range] {
                    if p.level() + 1 < q.level() {
                        return Err(format!(
                            "leaf {q:?} in tree {t} (level {}) neighbors {p:?} in tree {} (level {})",
                            q.level(),
                            dom.tree,
                            p.level()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    /// Serial balance of a point refinement: refining the single path of
    /// quadrants containing the domain center produces leaves hugging
    /// the center from one side, directly adjacent to level-1 leaves on
    /// the other — a hard 2:1 violation that must ripple outward.
    #[test]
    fn balance_point_refinement_2d() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
            f.refine(&comm, true, |_, q| {
                q.contains_point(center) && q.level() < 6
            });
            assert!(
                f.is_balanced_local(BalanceKind::Face).is_err(),
                "a 5-level jump at the center must violate 2:1"
            );
            let n = f.balance(&comm, BalanceKind::Face);
            assert!(n > 0);
            assert_eq!(f.validate(), Ok(()));
            f.is_balanced_local(BalanceKind::Face).unwrap();
        });
    }

    #[test]
    fn balance_full_is_stronger_than_face() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let build = |comm: &quadforest_comm::Comm| {
                let conn = Arc::new(Connectivity::unit(2));
                let mut f = Forest::<Q2>::new_uniform(conn, comm, 1);
                let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
                f.refine(comm, true, |_, q| q.contains_point(center) && q.level() < 7);
                f
            };
            let mut face = build(&comm);
            face.balance(&comm, BalanceKind::Face);
            let mut full = build(&comm);
            full.balance(&comm, BalanceKind::Full);
            full.is_balanced_local(BalanceKind::Full).unwrap();
            assert!(
                full.global_count() >= face.global_count(),
                "full balance can only add leaves over face balance"
            );
            // face-balanced mesh generally violates the corner condition
            assert!(face.is_balanced_local(BalanceKind::Full).is_err());
            let _ = conn;
        });
    }

    #[test]
    fn balance_3d_with_edges() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            f.balance(&comm, BalanceKind::Full);
            assert_eq!(f.validate(), Ok(()));
            f.is_balanced_local(BalanceKind::Full).unwrap();
        });
    }

    #[test]
    fn balance_is_idempotent() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 1);
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            f.balance(&comm, BalanceKind::Face);
            let count = f.global_count();
            let n = f.balance(&comm, BalanceKind::Face);
            assert_eq!(n, 0, "balanced forest must not refine again");
            assert_eq!(f.global_count(), count);
        });
    }

    #[test]
    fn balance_across_tree_faces() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // refine deeply against the shared face from tree 0's side
            let root = Q2::len_at(0);
            f.refine(&comm, true, |t, q| {
                t == 0 && q.coords()[0] + q.side() == root && q.coords()[1] == 0 && q.level() < 6
            });
            f.balance(&comm, BalanceKind::Face);
            f.is_balanced_local(BalanceKind::Face).unwrap();
            // tree 1 must have been refined near its -x face
            let deep_in_tree1 = f
                .tree_leaves(1)
                .iter()
                .filter(|q| q.coords()[0] == 0)
                .map(|q| q.level())
                .max()
                .unwrap();
            assert!(
                deep_in_tree1 >= 4,
                "balance must ripple into tree 1, got max level {deep_in_tree1}"
            );
        });
    }

    #[test]
    fn balance_distributed_matches_serial() {
        // The balanced forest must be identical for every rank count.
        let serial = quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| {
                q.coords()[0] == 0 && q.coords()[1] == 0 && q.level() < 6
            });
            f.balance(&comm, BalanceKind::Face);
            f.checksum(&comm)
        })[0];
        for p in [2usize, 3, 5] {
            let sums = quadforest_comm::run(p, |comm| {
                let conn = Arc::new(Connectivity::unit(2));
                let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
                f.refine(&comm, true, |_, q| {
                    q.coords()[0] == 0 && q.coords()[1] == 0 && q.level() < 6
                });
                f.balance(&comm, BalanceKind::Face);
                assert_eq!(f.validate(), Ok(()));
                f.checksum(&comm)
            });
            assert!(
                sums.iter().all(|s| *s == serial),
                "P = {p}: balanced forest differs from serial result"
            );
        }
    }

    #[test]
    fn balance_periodic_wraps() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::periodic(2));
            let mut f = Forest::<AvxQuad<2>>::new_uniform(conn, &comm, 1);
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            f.balance(&comm, BalanceKind::Face);
            f.is_balanced_local(BalanceKind::Face).unwrap();
            // the far side of the periodic domain must feel the ripple
            let root = Q2::len_at(0);
            let far = f
                .tree_leaves(0)
                .iter()
                .filter(|q| q.coords()[0] + q.side() == root && q.coords()[1] == 0)
                .map(|q| q.level())
                .max()
                .unwrap();
            assert!(far >= 3, "periodic wrap missing: far-side max level {far}");
        });
    }

    #[test]
    fn balance_is_fault_oblivious() {
        use quadforest_comm::FaultPlan;
        use std::time::Duration;
        let program = |comm: quadforest_comm::Comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| {
                q.coords()[0] == 0 && q.coords()[1] == 0 && q.level() < 6
            });
            f.balance(&comm, BalanceKind::Face);
            assert_eq!(f.validate(), Ok(()));
            f.checksum(&comm)
        };
        let baseline = quadforest_comm::run(3, program);
        for seed in [2u64, 29] {
            let plan = FaultPlan::new(seed)
                .with_delays(0.25, Duration::from_micros(100))
                .with_reordering(0.25);
            let chaotic = quadforest_comm::run_with_faults(3, plan, program).unwrap();
            assert_eq!(baseline, chaotic, "seed {seed} changed the balanced mesh");
        }
    }

    #[test]
    fn already_balanced_uniform_is_untouched() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 3);
            let before = f.checksum(&comm);
            let n = f.balance(&comm, BalanceKind::Full);
            assert_eq!(n, 0);
            assert_eq!(f.checksum(&comm), before);
        });
    }
}
