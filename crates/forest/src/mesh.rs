//! Static neighbor tables — the `p4est_mesh` equivalent.
//!
//! Applications that sweep the mesh many times (matrix-free operators,
//! flux loops) do not want to re-derive adjacency through searches on
//! every pass. [`Mesh::build`] runs the interface iterator once and
//! materializes, for every local leaf and face, an O(1)-indexable
//! neighbor record: the domain boundary, a single conforming or coarser
//! neighbor, or the list of finer leaves on a hanging face — each
//! pointing into the local leaf array or the ghost layer.

use crate::{iterate_faces, Forest, GhostLayer, Interface};
use quadforest_core::quadrant::Quadrant;
use std::collections::HashMap;

/// Reference to a leaf: local (index into forest iteration order) or
/// ghost (index into [`GhostLayer::ghosts`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LeafRef {
    /// Index into the local leaves (forest iteration order).
    Local(usize),
    /// Index into the ghost array.
    Ghost(usize),
}

/// What lies across one face of a local leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshNeighbor {
    /// The physical domain boundary.
    Boundary,
    /// One neighbor of the same size or coarser.
    One(LeafRef),
    /// A hanging face: the finer leaves touching it, in SFC order.
    Hanging(Vec<LeafRef>),
    /// Not visible from this rank (possible only when the mesh was
    /// built without a sufficient ghost layer).
    Unknown,
}

/// Per-leaf, per-face neighbor tables for the local partition.
#[derive(Clone, Debug)]
pub struct Mesh {
    /// `neighbors[leaf][face]`, leaf in forest iteration order.
    pub neighbors: Vec<Vec<MeshNeighbor>>,
}

impl Mesh {
    /// Build the tables from one pass of [`iterate_faces`]. Supply a
    /// **full** ghost layer for complete cross-rank information.
    pub fn build<Q: Quadrant>(forest: &Forest<Q>, ghost: &GhostLayer<Q>) -> Mesh {
        let nf = Q::NUM_FACES as usize;
        let mut neighbors: Vec<Vec<MeshNeighbor>> = (0..forest.local_count())
            .map(|_| vec![MeshNeighbor::Unknown; nf])
            .collect();
        let local_index: HashMap<(u32, u64, u8), usize> = forest
            .leaves()
            .enumerate()
            .map(|(i, (t, q))| ((t, q.morton_abs(), q.level()), i))
            .collect();
        let ghost_index: HashMap<(u32, u64, u8), usize> = ghost
            .ghosts
            .iter()
            .enumerate()
            .map(|(i, g)| ((g.tree, g.quad.morton_abs(), g.quad.level()), i))
            .collect();
        let resolve = |tree: u32, q: &Q, is_ghost: bool| -> LeafRef {
            let key = (tree, q.morton_abs(), q.level());
            if is_ghost {
                LeafRef::Ghost(ghost_index[&key])
            } else {
                LeafRef::Local(local_index[&key])
            }
        };

        iterate_faces(forest, ghost, |iface| match iface {
            Interface::Boundary(s) => {
                let i = local_index[&(s.tree, s.quad.morton_abs(), s.quad.level())];
                neighbors[i][s.face as usize] = MeshNeighbor::Boundary;
            }
            Interface::Interior(p, others) => {
                let p_ref = resolve(p.tree, &p.quad, p.is_ghost);
                // fill the primary side
                if !p.is_ghost {
                    let i = local_index[&(p.tree, p.quad.morton_abs(), p.quad.level())];
                    let entry = if others.len() == 1 {
                        MeshNeighbor::One(resolve(
                            others[0].tree,
                            &others[0].quad,
                            others[0].is_ghost,
                        ))
                    } else {
                        MeshNeighbor::Hanging(
                            others
                                .iter()
                                .map(|o| resolve(o.tree, &o.quad, o.is_ghost))
                                .collect(),
                        )
                    };
                    neighbors[i][p.face as usize] = entry;
                }
                // fill each local opposite side: its neighbor across the
                // shared face is the primary (same size or coarser)
                for o in &others {
                    if !o.is_ghost {
                        let i = local_index[&(o.tree, o.quad.morton_abs(), o.quad.level())];
                        neighbors[i][o.face as usize] = MeshNeighbor::One(p_ref);
                    }
                }
            }
        });
        Mesh { neighbors }
    }

    /// Verify that every (leaf, face) slot was filled — true whenever
    /// the ghost layer covered all rank boundaries.
    pub fn is_complete(&self) -> bool {
        self.neighbors
            .iter()
            .all(|faces| faces.iter().all(|n| *n != MeshNeighbor::Unknown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_comm::Comm;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;

    fn build_mesh<Q: Quadrant>(f: &Forest<Q>, comm: &Comm) -> (Mesh, GhostLayer<Q>) {
        let g = f.ghost(comm, BalanceKind::Full);
        (Mesh::build(f, &g), g)
    }

    #[test]
    fn uniform_mesh_neighbors_match_geometry() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            let (mesh, _) = build_mesh(&f, &comm);
            assert!(mesh.is_complete());
            let leaves: Vec<Q2> = f.leaves().map(|(_, q)| *q).collect();
            for (i, q) in leaves.iter().enumerate() {
                for face in 0..4u32 {
                    match &mesh.neighbors[i][face as usize] {
                        MeshNeighbor::Boundary => {
                            assert!(q.face_neighbor_inside(face).is_none());
                        }
                        MeshNeighbor::One(LeafRef::Local(j)) => {
                            let expect = q.face_neighbor(face);
                            assert_eq!(leaves[*j], expect, "leaf {i} face {face}");
                        }
                        other => panic!("uniform serial mesh: unexpected {other:?}"),
                    }
                }
            }
        });
    }

    #[test]
    fn hanging_mesh_entries() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            f.refine(&comm, false, |_, q| q.morton_index() == 0);
            let (mesh, _) = build_mesh(&f, &comm);
            assert!(mesh.is_complete());
            let leaves: Vec<Q2> = f.leaves().map(|(_, q)| *q).collect();
            let mut hanging_seen = 0;
            for (i, q) in leaves.iter().enumerate() {
                for face in 0..4usize {
                    match &mesh.neighbors[i][face] {
                        MeshNeighbor::Hanging(fines) => {
                            hanging_seen += 1;
                            assert_eq!(q.level(), 1, "only coarse leaves hang");
                            assert_eq!(fines.len(), 2);
                            for r in fines {
                                let LeafRef::Local(j) = r else {
                                    panic!("serial run")
                                };
                                assert_eq!(leaves[*j].level(), 2);
                            }
                        }
                        MeshNeighbor::One(LeafRef::Local(j)) => {
                            // fine leaves may point at a coarser neighbor
                            assert!(leaves[*j].level() + 1 >= q.level());
                        }
                        MeshNeighbor::Boundary => {}
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            // the refined quadrant's +x and +y faces hang
            assert_eq!(hanging_seen, 2);
        });
    }

    #[test]
    fn distributed_mesh_is_complete_and_symmetric() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            let center = [
                MortonQuad::<2>::len_at(0) / 2,
                MortonQuad::<2>::len_at(0) / 2,
                0,
            ];
            f.refine(&comm, true, |_, q| {
                q.level() < 4 && q.contains_point(center)
            });
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            let (mesh, ghost) = build_mesh(&f, &comm);
            assert!(
                mesh.is_complete(),
                "rank {}: every face slot must be filled",
                comm.rank()
            );
            // local symmetry: if leaf a lists local leaf b across face
            // f as a conforming One(), then b lists a back across f^1
            let leaves: Vec<MortonQuad<2>> = f.leaves().map(|(_, q)| *q).collect();
            for (i, q) in leaves.iter().enumerate() {
                for face in 0..4usize {
                    if let MeshNeighbor::One(LeafRef::Local(j)) = mesh.neighbors[i][face] {
                        if leaves[j].level() == q.level() {
                            assert_eq!(
                                mesh.neighbors[j][face ^ 1],
                                MeshNeighbor::One(LeafRef::Local(i)),
                                "conforming symmetry {i} <-> {j}"
                            );
                        }
                    }
                }
            }
            let _ = ghost;
        });
    }

    #[test]
    fn periodic_mesh_has_no_boundary() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::periodic(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let (mesh, _) = build_mesh(&f, &comm);
            assert!(mesh.is_complete());
            for faces in &mesh.neighbors {
                for n in faces {
                    assert_ne!(*n, MeshNeighbor::Boundary);
                }
            }
        });
    }
}
