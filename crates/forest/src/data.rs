//! Per-leaf application payloads: storage aligned with the rank-global
//! leaf order, adapt-time mapping (interpolate on refine, conservative
//! projection on coarsen), and partition-time migration.
//!
//! This is the data-bearing half of AMR: a [`LeafData`] vector holds one
//! `T` per local leaf, in exactly the order [`Forest::leaves`] yields
//! them. Whenever the mesh changes shape the data must follow:
//!
//! * [`Forest::refine_mapped`] / [`Forest::coarsen_mapped`] /
//!   [`Forest::balance_mapped`] adapt the mesh and then replay the
//!   old→new leaf transition through a [`DataMapper`], in the style of
//!   `p4est_utils_post_gridadapt_map_data`: a simultaneous walk over the
//!   old and new leaf sequences where equal leaves copy, refined leaves
//!   interpolate parent→children, and coarsened families project
//!   children→parent.
//! * [`Forest::partition_mapped`] piggybacks payloads on the SFC
//!   partition: each migrating leaf ships its `T` in a payload
//!   all-to-all cut by the same destination ranges as the leaf
//!   exchange, so data arrives already in global leaf order (and
//!   payload-less partitions keep their original message shape).
//!
//! Mappers may be called through several levels at once (recursive
//! refinement, multi-level coarsening): the walk descends the implied
//! ancestor chain one level at a time, so a mapper only ever sees a
//! single parent↔child step.

use crate::Forest;
use quadforest_comm::Comm;
use quadforest_connectivity::TreeId;
use quadforest_core::quadrant::Quadrant;
use quadforest_core::Wire;
use quadforest_telemetry as telemetry;

/// Per-leaf payload storage for one rank, index-aligned with the
/// rank-global leaf order (tree-major, SFC within each tree — the order
/// of [`Forest::leaves`]). Entry `i` belongs to the `i`-th local leaf.
#[derive(Clone, Debug, PartialEq)]
pub struct LeafData<T> {
    items: Vec<T>,
}

impl<T> LeafData<T> {
    /// Build payloads for every local leaf of `forest` by calling `init`
    /// in rank-global leaf order.
    pub fn init<Q: Quadrant>(forest: &Forest<Q>, mut init: impl FnMut(TreeId, &Q) -> T) -> Self {
        Self {
            items: forest.leaves().map(|(t, q)| init(t, q)).collect(),
        }
    }

    /// Adopt an existing vector as payload storage. Panics unless its
    /// length equals `forest.local_count()`.
    pub fn from_vec<Q: Quadrant>(forest: &Forest<Q>, items: Vec<T>) -> Self {
        assert_eq!(
            items.len(),
            forest.local_count(),
            "LeafData length must match the local leaf count"
        );
        Self { items }
    }

    /// Number of stored payloads (= local leaf count when aligned).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no payloads are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The payloads as a slice, in rank-global leaf order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// The payloads as a mutable slice, in rank-global leaf order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Iterate payloads in rank-global leaf order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Iterate payloads mutably in rank-global leaf order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.items.iter_mut()
    }

    /// Consume the store, returning the raw vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }

    /// Panic with a phase name unless the store is aligned with
    /// `forest` (one payload per local leaf).
    pub fn check_aligned<Q: Quadrant>(&self, forest: &Forest<Q>, phase: &str) {
        assert_eq!(
            self.items.len(),
            forest.local_count(),
            "LeafData out of sync with forest in {phase}: {} payloads vs {} leaves",
            self.items.len(),
            forest.local_count()
        );
    }
}

impl<T> std::ops::Index<usize> for LeafData<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.items[i]
    }
}

impl<T> std::ops::IndexMut<usize> for LeafData<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.items[i]
    }
}

/// How payloads cross refinement levels. Implementations decide the
/// numerics (piecewise-constant injection, bilinear interpolation,
/// conservative averaging, …); the forest decides *which* leaves map
/// where.
///
/// Contract: for a conservative quantity, `coarsen` applied to the
/// values produced by `refine` over one complete family must return the
/// original parent value (the refine→coarsen round trip is the
/// identity). The conservation proptests in `quadforest-pde` pin this
/// for the patch mapper.
pub trait DataMapper<Q: Quadrant, T> {
    /// Produce the payload of one `child` (child index `child_id` in SFC
    /// order) from its `parent`'s payload. Called `2^d` times per
    /// refined leaf, once per child.
    fn refine(&self, tree: TreeId, parent: &Q, value: &T, child: &Q, child_id: u32) -> T;

    /// Project a complete sibling family onto its `parent`. `values` are
    /// the children's payloads ordered by child index (SFC order).
    fn coarsen(&self, tree: TreeId, parent: &Q, values: &[T]) -> T;
}

/// Reduce a contiguous run of old leaves — exactly the descendants of
/// `node` — to a single payload for `node`, applying `mapper.coarsen`
/// bottom-up one level at a time.
fn project<Q: Quadrant, T: Clone, M: DataMapper<Q, T>>(
    tree: TreeId,
    node: &Q,
    olds: &[Q],
    vals: &[T],
    mapper: &M,
) -> T {
    if olds.len() == 1 && olds[0].level() == node.level() {
        return vals[0].clone();
    }
    debug_assert!(olds.len() >= Q::NUM_CHILDREN as usize);
    let mut child_vals: Vec<T> = Vec::with_capacity(Q::NUM_CHILDREN as usize);
    let mut lo = 0usize;
    for c in 0..Q::NUM_CHILDREN {
        let child = node.child(c);
        let last = child.last_descendant(Q::MAX_LEVEL).morton_abs();
        let hi = lo + olds[lo..].partition_point(|q| q.morton_abs() <= last);
        child_vals.push(project(tree, &child, &olds[lo..hi], &vals[lo..hi], mapper));
        lo = hi;
    }
    mapper.coarsen(tree, node, &child_vals)
}

/// Expand `node`'s payload onto a contiguous run of new leaves — exactly
/// the descendants of `node` — applying `mapper.refine` top-down one
/// level at a time.
fn fill<Q: Quadrant, T: Clone, M: DataMapper<Q, T>>(
    tree: TreeId,
    node: &Q,
    value: &T,
    news: &[Q],
    out: &mut Vec<T>,
    mapper: &M,
) {
    if news.len() == 1 && news[0].level() == node.level() {
        out.push(value.clone());
        return;
    }
    let mut lo = 0usize;
    for c in 0..Q::NUM_CHILDREN {
        let child = node.child(c);
        let last = child.last_descendant(Q::MAX_LEVEL).morton_abs();
        let hi = lo + news[lo..].partition_point(|q| q.morton_abs() <= last);
        if lo < hi {
            let cv = mapper.refine(tree, node, value, &child, c);
            fill(tree, &child, &cv, &news[lo..hi], out, mapper);
        }
        lo = hi;
    }
}

/// Map payloads across one local adaptation: walk the old and new leaf
/// sequences of every tree simultaneously (both are SFC-sorted and
/// cover the same SFC range — refine/coarsen/balance never move leaves
/// between ranks), copying equal leaves, interpolating refined ones and
/// projecting coarsened families through `mapper`.
pub fn map_adapted<Q: Quadrant, T: Clone, M: DataMapper<Q, T>>(
    old: &Forest<Q>,
    new: &Forest<Q>,
    old_data: &LeafData<T>,
    mapper: &M,
) -> LeafData<T> {
    old_data.check_aligned(old, "map_adapted");
    let mut out: Vec<T> = Vec::with_capacity(new.local_count());
    let mut base = 0usize; // offset of the current tree in old_data
    for t in 0..old.connectivity().num_trees() {
        let tree = t as TreeId;
        let olds = old.tree_leaves(tree);
        let news = new.tree_leaves(tree);
        let vals = &old_data.as_slice()[base..base + olds.len()];
        base += olds.len();
        let (mut i, mut j) = (0usize, 0usize);
        while i < olds.len() && j < news.len() {
            let (o, n) = (&olds[i], &news[j]);
            if o.level() == n.level() && o.morton_abs() == n.morton_abs() {
                out.push(vals[i].clone());
                i += 1;
                j += 1;
            } else if o.level() < n.level() {
                // old leaf was refined: collect its new descendants
                debug_assert!(o.is_ancestor_of(n));
                let last = o.last_descendant(Q::MAX_LEVEL).morton_abs();
                let hi = j + news[j..].partition_point(|q| q.morton_abs() <= last);
                fill(tree, o, &vals[i], &news[j..hi], &mut out, mapper);
                i += 1;
                j = hi;
            } else {
                // old leaves were coarsened into the new leaf
                debug_assert!(n.is_ancestor_of(o));
                let last = n.last_descendant(Q::MAX_LEVEL).morton_abs();
                let hi = i + olds[i..].partition_point(|q| q.morton_abs() <= last);
                out.push(project(tree, n, &olds[i..hi], &vals[i..hi], mapper));
                i = hi;
                j += 1;
            }
        }
        debug_assert_eq!(i, olds.len(), "old/new leaf walks must end together");
        debug_assert_eq!(j, news.len(), "old/new leaf walks must end together");
    }
    telemetry::counter_add("forest.map.leaves", out.len() as u64);
    LeafData { items: out }
}

impl<Q: Quadrant> Forest<Q> {
    /// [`Forest::refine`] that carries payloads: adapt the mesh, then
    /// map `data` onto the new leaves through `mapper`. Returns the
    /// number of leaves refined on this rank.
    pub fn refine_mapped<T: Clone>(
        &mut self,
        comm: &Comm,
        recursive: bool,
        flag: impl FnMut(TreeId, &Q) -> bool,
        data: &mut LeafData<T>,
        mapper: &impl DataMapper<Q, T>,
    ) -> usize {
        data.check_aligned(self, "refine_mapped");
        let old = self.clone();
        let n = self.refine(comm, recursive, flag);
        *data = map_adapted(&old, self, data, mapper);
        n
    }

    /// [`Forest::coarsen`] that carries payloads: adapt the mesh, then
    /// project `data` onto the new leaves through `mapper`. Returns the
    /// number of families merged on this rank.
    pub fn coarsen_mapped<T: Clone>(
        &mut self,
        comm: &Comm,
        recursive: bool,
        flag: impl FnMut(TreeId, &[Q]) -> bool,
        data: &mut LeafData<T>,
        mapper: &impl DataMapper<Q, T>,
    ) -> usize {
        data.check_aligned(self, "coarsen_mapped");
        let old = self.clone();
        let n = self.coarsen(comm, recursive, flag);
        *data = map_adapted(&old, self, data, mapper);
        n
    }

    /// [`Forest::balance`] that carries payloads: enforce 2:1 balance
    /// (refinement only), then interpolate `data` onto the new leaves
    /// through `mapper`. Returns the number of leaves refined on this
    /// rank.
    pub fn balance_mapped<T: Clone>(
        &mut self,
        comm: &Comm,
        kind: crate::BalanceKind,
        data: &mut LeafData<T>,
        mapper: &impl DataMapper<Q, T>,
    ) -> usize {
        data.check_aligned(self, "balance_mapped");
        let old = self.clone();
        let n = self.balance(comm, kind);
        *data = map_adapted(&old, self, data, mapper);
        n
    }

    /// [`Forest::partition`] that carries payloads: every migrating leaf
    /// ships its `T` in a payload all-to-all cut by the same destination
    /// ranges as the leaf exchange, so `data` arrives on the new owner
    /// already in rank-global leaf order. Returns the number of leaves
    /// that moved away from this rank. Collective.
    pub fn partition_mapped<T>(&mut self, comm: &Comm, data: &mut LeafData<T>) -> usize
    where
        T: Clone + Wire + Send + 'static,
    {
        data.check_aligned(self, "partition_mapped");
        let payload = std::mem::take(&mut data.items);
        let (moved, arrived) = self.partition_core(comm, |_, _| 1, Some(payload));
        data.items = arrived;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;

    /// Equal-split mapper over a scalar "mass": refine divides the
    /// parent mass equally among children, coarsen sums — the canonical
    /// conservative pair.
    struct MassMapper;
    impl<Q: Quadrant> DataMapper<Q, f64> for MassMapper {
        fn refine(&self, _t: TreeId, _p: &Q, v: &f64, _c: &Q, _id: u32) -> f64 {
            v / Q::NUM_CHILDREN as f64
        }
        fn coarsen(&self, _t: TreeId, _p: &Q, vs: &[f64]) -> f64 {
            vs.iter().sum()
        }
    }

    fn total(comm: &Comm, data: &LeafData<f64>) -> f64 {
        let local: f64 = data.iter().sum();
        comm.allreduce(local, |a, b| a + b)
    }

    #[test]
    fn refine_mapped_conserves_mass() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let mut data = LeafData::init(&f, |_, q| 1.0 + q.morton_index() as f64);
            let before = total(&comm, &data);
            f.refine_mapped(
                &comm,
                true,
                |_, q| q.level() < 4 && q.morton_index() % 3 == 0,
                &mut data,
                &MassMapper,
            );
            data.check_aligned(&f, "test");
            assert!((total(&comm, &data) - before).abs() < 1e-9);
        });
    }

    #[test]
    fn refine_then_coarsen_mapped_round_trips() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let mut data = LeafData::init(&f, |_, q| q.morton_index() as f64 + 0.5);
            let orig = data.clone();
            f.refine_mapped(&comm, false, |_, _| true, &mut data, &MassMapper);
            f.coarsen_mapped(&comm, false, |_, _| true, &mut data, &MassMapper);
            assert_eq!(f.global_count(), 4);
            for (a, b) in data.iter().zip(orig.iter()) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        });
    }

    #[test]
    fn balance_mapped_keeps_alignment_and_mass() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            let mut data = LeafData::init(&f, |_, _| 1.0);
            let before = total(&comm, &data);
            f.refine_mapped(
                &comm,
                true,
                |_, q| q.coords() == [0, 0, 0] && q.level() < 6,
                &mut data,
                &MassMapper,
            );
            f.balance_mapped(&comm, BalanceKind::Face, &mut data, &MassMapper);
            data.check_aligned(&f, "test");
            assert!((total(&comm, &data) - before).abs() < 1e-9);
        });
    }

    #[test]
    fn partition_mapped_migrates_payloads() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let mut data = LeafData::init(&f, |_, _| 0.0);
            f.refine_mapped(
                &comm,
                true,
                |_, q| q.coords() == [0, 0, 0] && q.level() < 6,
                &mut data,
                &MassMapper,
            );
            // tag every payload with its global SFC identity
            for ((t, q), v) in f.leaves().zip(data.iter_mut()) {
                *v = (t as u64 * 1_000_000 + q.morton_abs() + q.level() as u64) as f64;
            }
            let before = total(&comm, &data);
            f.partition_mapped(&comm, &mut data);
            data.check_aligned(&f, "test");
            // every payload still rides its own leaf
            for ((t, q), v) in f.leaves().zip(data.iter()) {
                let want = (t as u64 * 1_000_000 + q.morton_abs() + q.level() as u64) as f64;
                assert_eq!(*v, want);
            }
            assert_eq!(total(&comm, &data), before);
            // and the partition is equal
            let counts = comm.allgather(f.local_count());
            let (max, min) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
            assert!(max - min <= 1);
        });
    }

    #[test]
    fn multi_level_coarsen_projects_subtrees() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            let mut data = LeafData::init(&f, |_, _| 1.0);
            let before = total(&comm, &data);
            // recursive coarsen collapses several levels in one call
            f.coarsen_mapped(&comm, true, |_, _| true, &mut data, &MassMapper);
            assert_eq!(f.global_count(), 1);
            assert_eq!(data.len(), f.local_count());
            assert!((total(&comm, &data) - before).abs() < 1e-9);
        });
    }
}
