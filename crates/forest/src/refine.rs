//! Callback-driven refinement and coarsening (local adaptation).

use crate::{end_position, Forest};
use quadforest_comm::Comm;
use quadforest_connectivity::{Connectivity, TreeId};
use quadforest_core::quadrant::Quadrant;
use std::sync::Arc;

impl<Q: Quadrant> Forest<Q> {
    /// Build the minimal complete forest containing every seed quadrant
    /// as a leaf (coarser elsewhere) — octree construction from a point
    /// set, à la Sundar et al. / `p4est_new` from seeds. Seeds may be
    /// supplied redundantly and on any rank; overlapping seeds keep the
    /// finest. The result is partitioned equally. Collective.
    pub fn from_seeds(
        conn: Arc<Connectivity>,
        comm: &Comm,
        seeds: impl IntoIterator<Item = (TreeId, Q)>,
    ) -> Self {
        assert_eq!(conn.dim(), Q::DIM);
        let k = conn.num_trees();
        // gather all seeds everywhere (seed sets are small by contract)
        let mine: Vec<(TreeId, Q)> = seeds.into_iter().collect();
        let all: Vec<(TreeId, Q)> = comm.allgather(mine).into_iter().flatten().collect();
        let mut per_tree: Vec<Vec<Q>> = vec![Vec::new(); k];
        for (t, q) in all {
            assert!((t as usize) < k, "seed tree {t} out of range");
            per_tree[t as usize].push(q);
        }
        // complete each tree; every rank computes the same global forest,
        // then keeps an equal contiguous share
        let completed: Vec<Vec<Q>> = per_tree
            .into_iter()
            .map(quadforest_core::linear::complete_octree)
            .collect();
        let total: u64 = completed.iter().map(|v| v.len() as u64).sum();
        let (rank, size) = (comm.rank(), comm.size());
        let lo = total * rank as u64 / size as u64;
        let hi = total * (rank as u64 + 1) / size as u64;
        let mut trees: Vec<Vec<Q>> = vec![Vec::new(); k];
        let mut firsts: Vec<Option<(u32, u64)>> = vec![None; size];
        let mut g = 0u64;
        for (t, leaves) in completed.into_iter().enumerate() {
            for q in leaves {
                // record the partition marker of whichever rank starts here
                for (r, first) in firsts.iter_mut().enumerate() {
                    if total * r as u64 / size as u64 == g {
                        first.get_or_insert((
                            t as u32,
                            q.first_descendant(Q::MAX_LEVEL).morton_abs(),
                        ));
                    }
                }
                if g >= lo && g < hi {
                    trees[t].push(q);
                }
                g += 1;
            }
        }
        let mut markers = vec![end_position(k); size + 1];
        let mut next = end_position(k);
        for r in (0..size).rev() {
            if let Some(pos) = firsts[r] {
                next = pos;
            }
            markers[r] = next;
        }
        if total > 0 {
            markers[0] = (0, 0);
        }
        let f = Self::assemble(conn, rank, size, trees, total, markers);
        debug_assert_eq!(f.validate(), Ok(()));
        f
    }
}

impl<Q: Quadrant> Forest<Q> {
    /// Refine local leaves for which `flag` returns `true`, replacing
    /// each with its `2^d` children in SFC order. With `recursive =
    /// true`, freshly created children are offered to `flag` again
    /// (bounded by [`Quadrant::MAX_LEVEL`]). Collective only in the
    /// final global-count update; the adaptation itself is local, as in
    /// p4est.
    ///
    /// Returns the number of leaves refined on this rank.
    pub fn refine(
        &mut self,
        comm: &Comm,
        recursive: bool,
        mut flag: impl FnMut(TreeId, &Q) -> bool,
    ) -> usize {
        let _span = quadforest_telemetry::span("refine");
        let mut refined = 0;
        for t in 0..self.trees.len() {
            let tree = t as TreeId;
            let old = std::mem::take(&mut self.trees[t]);
            let mut out = Vec::with_capacity(old.len());
            // explicit stack for recursive refinement keeps SFC order:
            // children are pushed in reverse so they pop in curve order
            let mut stack: Vec<Q> = Vec::new();
            for q in old {
                stack.push(q);
                while let Some(cur) = stack.pop() {
                    let split = cur.level() < Q::MAX_LEVEL
                        && flag(tree, &cur)
                        && (recursive || cur.level() == q.level());
                    if split {
                        refined += 1;
                        for c in (0..Q::NUM_CHILDREN).rev() {
                            stack.push(cur.child(c));
                        }
                        if !recursive {
                            // non-recursive: children go straight out
                            while let Some(ch) = stack.pop() {
                                out.push(ch);
                            }
                        }
                    } else {
                        out.push(cur);
                    }
                }
            }
            self.trees[t] = out;
        }
        self.refresh_global(comm);
        quadforest_telemetry::counter_add("forest.refined", refined as u64);
        self.guard_phase("refine");
        refined
    }

    /// Coarsen: replace complete sibling families whose members all
    /// satisfy `flag` with their parent. With `recursive = true`, newly
    /// formed parents may merge again. Families split across rank
    /// boundaries are left untouched (as p4est does without
    /// `partition_for_coarsening`).
    ///
    /// Returns the number of families merged on this rank.
    pub fn coarsen(
        &mut self,
        comm: &Comm,
        recursive: bool,
        mut flag: impl FnMut(TreeId, &[Q]) -> bool,
    ) -> usize {
        let _span = quadforest_telemetry::span("coarsen");
        let nc = Q::NUM_CHILDREN as usize;
        let mut merged = 0;
        for t in 0..self.trees.len() {
            let tree = t as TreeId;
            loop {
                let leaves = &self.trees[t];
                let mut out: Vec<Q> = Vec::with_capacity(leaves.len());
                let mut changed = false;
                let mut i = 0;
                while i < leaves.len() {
                    let q = leaves[i];
                    if q.level() > 0
                        && q.child_id() == 0
                        && i + nc <= leaves.len()
                        && Q::is_family(&leaves[i..i + nc])
                        && flag(tree, &leaves[i..i + nc])
                    {
                        out.push(q.parent());
                        merged += 1;
                        changed = true;
                        i += nc;
                    } else {
                        out.push(q);
                        i += 1;
                    }
                }
                self.trees[t] = out;
                if !(recursive && changed) {
                    break;
                }
            }
        }
        self.refresh_global(comm);
        quadforest_telemetry::counter_add("forest.coarsened", merged as u64);
        self.guard_phase("coarsen");
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{AvxQuad, MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q3 = StandardQuad<3>;
    type Q2 = StandardQuad<2>;

    #[test]
    fn refine_all_once() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            let n = f.refine(&comm, false, |_, _| true);
            assert_eq!(n, 8);
            assert_eq!(f.global_count(), 64);
            assert_eq!(f.validate(), Ok(()));
            assert!(f.leaves().all(|(_, q)| q.level() == 2));
        });
    }

    #[test]
    fn refine_recursive_to_level() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 0);
            f.refine(&comm, true, |_, q| q.level() < 3);
            assert_eq!(f.global_count(), 64);
            assert!(f.leaves().all(|(_, q)| q.level() == 3));
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn refine_non_recursive_does_not_cascade() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 0);
            // flag always true, but non-recursive: one generation only
            f.refine(&comm, false, |_, _| true);
            assert_eq!(f.global_count(), 4);
            assert!(f.leaves().all(|(_, q)| q.level() == 1));
        });
    }

    #[test]
    fn refine_local_corner_produces_graded_mesh() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // keep refining the quadrant touching the origin
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            assert_eq!(f.validate(), Ok(()));
            // levels 1..=5 all present, exactly one origin leaf at level 5
            let mut level_counts = [0usize; 6];
            for (_, q) in f.leaves() {
                level_counts[q.level() as usize] += 1;
            }
            assert_eq!(level_counts, [0, 3, 3, 3, 3, 4]);
        });
    }

    #[test]
    fn refine_keeps_sfc_order_across_representations() {
        quadforest_comm::run(1, |comm| {
            let conn2 = Arc::new(Connectivity::unit(3));
            let conn3 = Arc::new(Connectivity::unit(3));
            let mut a = Forest::<Q3>::new_uniform(conn2, &comm, 1);
            let mut b = Forest::<MortonQuad<3>>::new_uniform(conn3, &comm, 1);
            let flag = |q_level: u8, idx: u64| q_level < 3 && idx % 3 == 0;
            a.refine(&comm, true, |_, q| flag(q.level(), q.morton_index()));
            b.refine(&comm, true, |_, q| flag(q.level(), q.morton_index()));
            let la: Vec<_> = a
                .leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect();
            let lb: Vec<_> = b
                .leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect();
            assert_eq!(la, lb);
            assert_eq!(a.validate(), Ok(()));
            assert_eq!(b.validate(), Ok(()));
        });
    }

    #[test]
    fn coarsen_undoes_refine() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<AvxQuad<3>>::new_uniform(conn, &comm, 2);
            let before = f.checksum(&comm);
            f.refine(&comm, false, |_, _| true);
            assert_eq!(f.global_count(), 512);
            let merged = f.coarsen(&comm, false, |_, _| true);
            assert_eq!(merged, 64);
            assert_eq!(f.global_count(), 64);
            assert_eq!(f.checksum(&comm), before);
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn coarsen_recursive_collapses_to_roots() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            f.coarsen(&comm, true, |_, _| true);
            assert_eq!(f.global_count(), 2, "one root leaf per tree");
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn coarsen_respects_flag() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            // only merge families whose parent would be in the lower-left
            let merged = f.coarsen(&comm, false, |_, fam| fam[0].coords()[0] == 0);
            assert!(merged > 0);
            assert_eq!(f.validate(), Ok(()));
            assert!(f.leaves().any(|(_, q)| q.level() == 1));
            assert!(f.leaves().any(|(_, q)| q.level() == 2));
        });
    }

    #[test]
    fn coarsen_skips_split_families() {
        // With P=2 on 8 leaves of one level-1 family... a level-1 family
        // of tree 0 spans both ranks; coarsening must leave it alone.
        let counts = quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            let merged = f.coarsen(&comm, false, |_, _| true);
            assert_eq!(merged, 0, "split family must not merge");
            assert_eq!(f.validate(), Ok(()));
            f.global_count()
        });
        assert!(counts.iter().all(|&c| c == 8));
    }

    #[test]
    fn from_seeds_builds_minimal_forest() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            // each rank contributes one seed; redundant copies are fine
            let seed0 = Q2::root().child(0).child(3).child(2);
            let seed1 = Q2::root().child(2).child(1);
            let mine = match comm.rank() {
                0 => vec![(0, seed0)],
                1 => vec![(1, seed1)],
                _ => vec![(0, seed0)], // duplicate
            };
            let f = Forest::<Q2>::from_seeds(conn, &comm, mine);
            assert_eq!(f.validate(), Ok(()));
            // the seeds are leaves of the global forest
            let all = f.gather_all(&comm);
            assert!(all.contains(&(0, seed0)));
            assert!(all.contains(&(1, seed1)));
            // tree 1 without deep seeds stays coarse around its seed
            assert!(all.iter().filter(|(t, _)| *t == 1).count() < 16);
            // partition is equal
            let counts = comm.allgather(f.local_count());
            let (max, min) = (*counts.iter().max().unwrap(), *counts.iter().min().unwrap());
            assert!(max - min <= 1);
        });
    }

    #[test]
    fn from_seeds_no_seeds_gives_roots() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::brick2d(3, 1, false, false));
            let f = Forest::<MortonQuad<2>>::from_seeds(conn, &comm, []);
            assert_eq!(f.global_count(), 3, "one root leaf per tree");
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn from_seeds_overlapping_keeps_finest() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let coarse = Q2::root().child(1);
            let fine = coarse.child(2).child(0);
            let f = Forest::<Q2>::from_seeds(conn, &comm, [(0, coarse), (0, fine)]);
            let all = f.gather_all(&comm);
            assert!(all.contains(&(0, fine)));
            assert!(!all.contains(&(0, coarse)), "ancestor seed must give way");
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn refine_distributed_preserves_partition_ranges() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |_, q| q.morton_index() % 2 == 0);
            assert_eq!(f.validate(), Ok(()));
            // every local leaf must still be in the local marker range
            for (t, q) in f.leaves() {
                assert!(f.is_local_position(Forest::<Q3>::position_of(t, q)));
            }
            assert_eq!(f.global_count(), comm.allreduce_sum(f.local_count() as u64));
        });
    }
}
