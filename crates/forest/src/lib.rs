//! # quadforest-forest
//!
//! The distributed forest-of-octrees AMR workflow: the substrate the
//! paper's quadrant representations are measured inside. A [`Forest`] is
//! a disjoint union of leaves over a [`Connectivity`] of logically cubic
//! trees, partitioned between (simulated) MPI ranks in space-filling
//! curve order — exactly p4est's model: leaves only, ancestors built on
//! demand, self-sufficient quadrant data allowing random access.
//!
//! High-level algorithms are written **once**, generically over the
//! [`Quadrant`] trait, so any representation (standard, raw Morton,
//! AVX2/SIMD, 128-bit Morton) drives the same code paths — the virtual
//! interface at the heart of the paper.
//!
//! Provided algorithms:
//!
//! * [`Forest::new_uniform`] / [`Forest::new_refined`] — creation,
//! * [`Forest::refine`] / [`Forest::coarsen`] — callback-driven local
//!   adaptation,
//! * [`Forest::balance`] — parallel 2:1 balance,
//! * [`Forest::partition`] — (weighted) SFC partition,
//! * [`Forest::ghost`] — ghost/halo layer construction,
//! * [`iterate_faces`] — interface iteration (faces between leaves), tolerant
//!   of non-2:1-balanced meshes (item 4 of the paper's follow-up list),
//! * [`Forest::search`] — top-down local search / point location,
//! * [`Forest::nodes`] — global corner-node numbering (hanging nodes
//!   resolved into dependency lists),
//! * [`Forest::to_portable`] / [`Forest::from_portable`] — save/load.
//!
//! # Example
//!
//! ```
//! use quadforest_forest::{BalanceKind, Forest};
//! use quadforest_connectivity::Connectivity;
//! use quadforest_core::quadrant::{MortonQuad, Quadrant};
//! use std::sync::Arc;
//!
//! // two simulated MPI ranks over a periodic unit square
//! let counts = quadforest_comm::run(2, |comm| {
//!     let conn = Arc::new(Connectivity::periodic(2));
//!     let mut forest = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
//!     forest.refine(&comm, true, |_tree, q| {
//!         q.level() < 4 && q.morton_index() == 0
//!     });
//!     forest.balance(&comm, BalanceKind::Face);
//!     forest.partition(&comm);
//!     forest.validate().unwrap();
//!     forest.local_count()
//! });
//! assert_eq!(counts.len(), 2);
//! assert!(counts.iter().sum::<usize>() > 16);
//! ```

#![warn(missing_docs)]

mod balance;
mod checkpoint;
mod crc;
mod data;
pub mod directions;
mod error;
mod ghost;
mod io;
mod iterate;
mod mesh;
mod nodes;
mod partition;
mod refine;
mod search;
mod validate;

pub use checkpoint::{list_generations, CheckpointInfo, CheckpointManifest, ShardMeta};
pub use crc::crc32;
pub use data::{map_adapted, DataMapper, LeafData};
pub use error::{InvariantError, IoError};
pub use io::PortableForest;

pub use balance::BalanceKind;
pub use ghost::{GhostLayer, GhostQuad};
pub use iterate::{iterate_faces, FaceSide, Interface};
pub use mesh::{LeafRef, Mesh, MeshNeighbor};
pub use nodes::{LocalNodes, NodeKey, NodeRef};
pub use search::SearchAction;

use quadforest_comm::Comm;
use quadforest_connectivity::{Connectivity, TreeId};
use quadforest_core::quadrant::Quadrant;
use quadforest_telemetry as telemetry;
use std::sync::Arc;

/// A global space-filling-curve position: `(tree, index at maximum
/// level)`. Lexicographic order is the global leaf order.
pub type SfcPosition = (u32, u64);

/// Global mesh statistics returned by [`Forest::stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestStats {
    /// Global leaf count `N`.
    pub global_count: u64,
    /// Smallest per-rank leaf count (load-balance indicator).
    pub min_local: u64,
    /// Largest per-rank leaf count.
    pub max_local: u64,
    /// Coarsest populated level.
    pub min_level: u8,
    /// Finest populated level.
    pub max_level: u8,
    /// Leaves per level, indices `0..=MAX_LEVEL`.
    pub level_histogram: Vec<u64>,
}

/// The sentinel position one past the end of the forest.
fn end_position(num_trees: usize) -> SfcPosition {
    (num_trees as u32, 0)
}

/// Process-global switch for phase-boundary invariant guards.
static PHASE_GUARDS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable or disable phase-boundary guards process-wide. When enabled,
/// every high-level phase (refine, coarsen, balance, partition, ghost)
/// runs [`Forest::validate`] on its result before returning; a
/// violation aborts the phase with a panic naming the phase and the
/// exact [`InvariantError`], which the comm layer converts into a typed
/// world abort. Off by default — the full-sweep validation is `O(N)`
/// per phase.
pub fn set_phase_guards(enabled: bool) {
    PHASE_GUARDS.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// True when phase-boundary guards are enabled (see
/// [`set_phase_guards`]).
pub fn phase_guards_enabled() -> bool {
    PHASE_GUARDS.load(std::sync::atomic::Ordering::Relaxed)
}

/// A distributed (simulated-MPI) forest of quadtrees/octrees over a
/// shared [`Connectivity`], generic over the quadrant representation.
#[derive(Clone, Debug)]
pub struct Forest<Q: Quadrant> {
    conn: Arc<Connectivity>,
    rank: usize,
    size: usize,
    /// Per-tree sorted leaf arrays; length = number of trees. Only the
    /// SFC range owned by this rank is populated.
    trees: Vec<Vec<Q>>,
    /// Global number of leaves `N`.
    global_count: u64,
    /// Partition markers, length `size + 1`: `markers[r]` is the global
    /// SFC position where rank `r`'s range begins (p4est's
    /// `global_first_position`); `markers[size]` is the end sentinel.
    /// Empty ranks carry the same marker as their successor.
    markers: Vec<SfcPosition>,
}

impl<Q: Quadrant> Forest<Q> {
    // -- construction ----------------------------------------------------

    /// Create a forest holding the uniform refinement of every tree at
    /// `level`, partitioned equally in SFC order across the communicator.
    pub fn new_uniform(conn: Arc<Connectivity>, comm: &Comm, level: u8) -> Self {
        let _span = telemetry::span("new_uniform");
        assert_eq!(conn.dim(), Q::DIM, "connectivity dimension mismatch");
        assert!(level <= Q::MAX_LEVEL);
        let k = conn.num_trees() as u64;
        let per_tree = Q::uniform_count(level);
        let n = k * per_tree;
        let (rank, size) = (comm.rank(), comm.size());
        let lo = n * rank as u64 / size as u64;
        let hi = n * (rank as u64 + 1) / size as u64;
        let mut trees = vec![Vec::new(); conn.num_trees()];
        let mut g = lo;
        while g < hi {
            let t = (g / per_tree) as usize;
            let within = g % per_tree;
            let stop = ((t as u64 + 1) * per_tree).min(hi);
            let tree = &mut trees[t];
            tree.reserve((stop - g) as usize);
            let mut q = Q::from_morton(within, level);
            for i in within..(stop - t as u64 * per_tree) {
                tree.push(q);
                if i + 1 < per_tree && t as u64 * per_tree + i + 1 < stop {
                    q = q.successor();
                }
            }
            g = stop;
        }
        let shift = Q::DIM * (Q::MAX_LEVEL - level) as u32;
        let markers = (0..=size as u64)
            .map(|r| {
                let g = n * r / size as u64;
                if g >= n {
                    end_position(conn.num_trees())
                } else {
                    ((g / per_tree) as u32, (g % per_tree) << shift)
                }
            })
            .collect();
        let f = Self {
            conn,
            rank,
            size,
            trees,
            global_count: n,
            markers,
        };
        telemetry::gauge_set("forest.local_leaves", f.local_count() as u64);
        debug_assert_eq!(f.validate(), Ok(()));
        f
    }

    /// Create a uniform forest at `init_level`, then [`Forest::refine`]
    /// recursively with `flag` and re-[`Forest::partition`] — the usual
    /// p4est `p4est_new` + refine + partition opening sequence.
    pub fn new_refined(
        conn: Arc<Connectivity>,
        comm: &Comm,
        init_level: u8,
        mut flag: impl FnMut(TreeId, &Q) -> bool,
    ) -> Self {
        let mut f = Self::new_uniform(conn, comm, init_level);
        f.refine(comm, true, |t, q| flag(t, q));
        f.partition(comm);
        f
    }

    // -- interrogation ---------------------------------------------------

    /// The connectivity shared by all ranks.
    pub fn connectivity(&self) -> &Arc<Connectivity> {
        &self.conn
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Global number of leaves `N`.
    pub fn global_count(&self) -> u64 {
        self.global_count
    }

    /// Number of leaves stored on this rank.
    pub fn local_count(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }

    /// The sorted leaves of `tree` on this rank.
    pub fn tree_leaves(&self, tree: TreeId) -> &[Q] {
        &self.trees[tree as usize]
    }

    /// Iterate `(tree, &leaf)` over all local leaves in global order.
    pub fn leaves(&self) -> impl Iterator<Item = (TreeId, &Q)> {
        self.trees
            .iter()
            .enumerate()
            .flat_map(|(t, v)| v.iter().map(move |q| (t as TreeId, q)))
    }

    /// Deepest refinement level among local leaves.
    pub fn local_max_level(&self) -> u8 {
        self.leaves().map(|(_, q)| q.level()).max().unwrap_or(0)
    }

    /// The partition markers (`P + 1` global SFC positions).
    pub fn markers(&self) -> &[SfcPosition] {
        &self.markers
    }

    /// The global SFC position of a quadrant in `tree`.
    pub fn position_of(tree: TreeId, q: &Q) -> SfcPosition {
        (tree, q.morton_abs())
    }

    /// The rank owning the leaf at global SFC position `pos`.
    pub fn owner_of_position(&self, pos: SfcPosition) -> usize {
        // partition_point: first marker > pos, minus one.
        let r = self.markers.as_slice().partition_point(|m| *m <= pos);
        r.saturating_sub(1).min(self.size - 1)
    }

    /// All ranks whose range intersects the subtree of `q` in `tree`
    /// (the owners of any present or future descendant of `q`).
    pub fn owners_of_subtree(&self, tree: TreeId, q: &Q) -> std::ops::RangeInclusive<usize> {
        let first = Self::position_of(tree, &q.first_descendant(Q::MAX_LEVEL));
        let last = Self::position_of(tree, &q.last_descendant(Q::MAX_LEVEL));
        self.owner_of_position(first)..=self.owner_of_position(last)
    }

    /// True when the global SFC position lies in this rank's range.
    pub fn is_local_position(&self, pos: SfcPosition) -> bool {
        self.markers[self.rank] <= pos && pos < self.markers[self.rank + 1]
    }

    /// Locate the local leaf that is, or contains, or descends from `q`:
    /// returns the index range of local leaves of `tree` overlapping
    /// `q`'s domain.
    pub fn overlapping_range(&self, tree: TreeId, q: &Q) -> std::ops::Range<usize> {
        let leaves = &self.trees[tree as usize];
        let first = q.first_descendant(Q::MAX_LEVEL).morton_abs();
        let last = q.last_descendant(Q::MAX_LEVEL).morton_abs();
        // Leaves are disjoint and SFC-sorted; a leaf overlaps q iff its
        // own subtree range intersects [first, last]. Because one of the
        // two must contain the other, that reduces to:
        let lo = leaves.partition_point(|p| p.last_descendant(Q::MAX_LEVEL).morton_abs() < first);
        let hi = leaves.partition_point(|p| p.morton_abs() <= last);
        lo..hi
    }

    /// A position-independent checksum of the global leaf set, equal on
    /// every rank (used to verify partition invariance).
    pub fn checksum(&self, comm: &Comm) -> u64 {
        let mut local: u64 = 0;
        for (t, q) in self.leaves() {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for w in [t as u64, q.morton_abs(), q.level() as u64] {
                h ^= w;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            local = local.wrapping_add(h);
        }
        comm.allreduce(local, |a, b| a.wrapping_add(*b))
    }

    /// Gather the whole forest's leaves on every rank (testing/IO helper;
    /// collective).
    pub fn gather_all(&self, comm: &Comm) -> Vec<(TreeId, Q)> {
        let local: Vec<(TreeId, Q)> = self.leaves().map(|(t, q)| (t, *q)).collect();
        let gathered = comm.allgather(local);
        gathered.into_iter().flatten().collect()
    }

    /// Per-level leaf counts on this rank only, indices `0..=MAX_LEVEL`
    /// (no communication).
    pub fn local_level_histogram(&self) -> Vec<u64> {
        let mut local = vec![0u64; Q::MAX_LEVEL as usize + 1];
        for (_, q) in self.leaves() {
            local[q.level() as usize] += 1;
        }
        local
    }

    /// Global per-level leaf histogram (collective): entry `ℓ` counts
    /// the leaves at refinement level `ℓ` across all ranks.
    pub fn level_histogram(&self, comm: &Comm) -> Vec<u64> {
        comm.allreduce(self.local_level_histogram(), |a, b| {
            a.iter().zip(b).map(|(x, y)| x + y).collect()
        })
    }

    /// Global mesh statistics (collective). A **single** allgather
    /// carries both the per-rank leaf counts and the per-rank level
    /// histograms; the stats and the global histogram are derived from
    /// that one exchange rather than issuing separate collectives.
    pub fn stats(&self, comm: &Comm) -> ForestStats {
        let _span = telemetry::span("stats");
        let gathered = comm.allgather((self.local_count() as u64, self.local_level_histogram()));
        let mut hist = vec![0u64; Q::MAX_LEVEL as usize + 1];
        for (_, h) in &gathered {
            for (dst, v) in hist.iter_mut().zip(h) {
                *dst += v;
            }
        }
        let min_level = hist.iter().position(|&c| c > 0).unwrap_or(0) as u8;
        let max_level = hist.iter().rposition(|&c| c > 0).unwrap_or(0) as u8;
        telemetry::gauge_set("forest.global_leaves", self.global_count);
        telemetry::gauge_set("forest.local_leaves", self.local_count() as u64);
        telemetry::gauge_set("forest.max_level", max_level as u64);
        ForestStats {
            global_count: self.global_count,
            min_local: gathered.iter().map(|(c, _)| *c).min().unwrap(),
            max_local: gathered.iter().map(|(c, _)| *c).max().unwrap(),
            min_level,
            max_level,
            level_histogram: hist,
        }
    }

    /// Recompute partition markers and the global count after a local
    /// change in leaf counts (collective).
    fn refresh_global(&mut self, comm: &Comm) {
        self.global_count = comm.allreduce_sum(self.local_count() as u64);
        // markers stay valid across refine/coarsen (the SFC ranges do not
        // move), but assert the first local leaf is still within range.
        debug_assert!(self
            .leaves()
            .next()
            .map(|(t, q)| self.is_local_position(Self::position_of(t, q)))
            .unwrap_or(true));
    }

    /// First local leaf's global position, or `None` when empty.
    fn first_local_position(&self) -> Option<SfcPosition> {
        self.leaves().next().map(|(t, q)| Self::position_of(t, q))
    }

    /// Run the phase-boundary guard, if enabled: validate the forest
    /// and abort the phase on invariant drift. Called at the end of
    /// every high-level phase.
    pub(crate) fn guard_phase(&self, phase: &'static str) {
        if !phase_guards_enabled() {
            return;
        }
        telemetry::counter_add("forest.guard.checks", 1);
        if let Err(e) = self.validate() {
            panic!("phase guard '{phase}' failed: {e}");
        }
    }

    /// Assemble a forest from parts (deserialization path); the caller
    /// validates afterwards.
    pub(crate) fn assemble(
        conn: Arc<Connectivity>,
        rank: usize,
        size: usize,
        trees: Vec<Vec<Q>>,
        global_count: u64,
        markers: Vec<SfcPosition>,
    ) -> Self {
        Self {
            conn,
            rank,
            size,
            trees,
            global_count,
            markers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};

    type Q3 = StandardQuad<3>;
    type M3 = MortonQuad<3>;

    #[test]
    fn uniform_serial() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            assert_eq!(f.global_count(), 64);
            assert_eq!(f.local_count(), 64);
            assert_eq!(f.validate(), Ok(()));
            let leaves: Vec<_> = f.leaves().collect();
            for (i, (t, q)) in leaves.iter().enumerate() {
                assert_eq!(*t, 0);
                assert_eq!(q.morton_index(), i as u64);
            }
        });
    }

    #[test]
    fn uniform_distributed_counts() {
        for p in [2usize, 3, 5, 8] {
            let counts = quadforest_comm::run(p, |comm| {
                let conn = Arc::new(Connectivity::unit(3));
                let f = Forest::<M3>::new_uniform(conn, &comm, 2);
                assert_eq!(f.validate(), Ok(()));
                assert_eq!(f.global_count(), 64);
                f.local_count() as u64
            });
            assert_eq!(counts.iter().sum::<u64>(), 64);
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            assert!(max - min <= 1, "equal partition expected, got {counts:?}");
        }
    }

    #[test]
    fn uniform_multitree() {
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::brick2d(3, 2, false, false));
            let f = Forest::<StandardQuad<2>>::new_uniform(conn, &comm, 1);
            assert_eq!(f.global_count(), 24);
            assert_eq!(f.validate(), Ok(()));
        });
    }

    #[test]
    fn owner_of_position_matches_markers() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 3);
            for (t, q) in f.leaves() {
                let pos = Forest::<Q3>::position_of(t, q);
                assert_eq!(f.owner_of_position(pos), comm.rank());
                assert!(f.is_local_position(pos));
            }
        });
    }

    #[test]
    fn overlapping_range_finds_descendants() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 3);
            // the subtree of a level-1 quadrant holds 4^... = 2^(3*2) leaves
            let anc = Q3::from_morton(3, 1);
            let range = f.overlapping_range(0, &anc);
            assert_eq!(range.len(), 64);
            for q in &f.tree_leaves(0)[range] {
                assert!(anc.is_ancestor_of(q));
            }
        });
    }

    #[test]
    fn checksum_is_rank_count_invariant() {
        let base = quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            Forest::<Q3>::new_uniform(conn, &comm, 3).checksum(&comm)
        })[0];
        for p in [2usize, 7] {
            let sums = quadforest_comm::run(p, |comm| {
                let conn = Arc::new(Connectivity::unit(3));
                Forest::<Q3>::new_uniform(conn, &comm, 3).checksum(&comm)
            });
            assert!(sums.iter().all(|s| *s == base));
        }
    }

    #[test]
    fn rank_death_during_construction_is_typed() {
        // a rank that dies inside the collective construction sequence
        // must yield a WorldError naming it, not hang the other ranks
        let err = quadforest_comm::try_run(4, |comm| {
            if comm.rank() == 3 {
                panic!("chaos: construction casualty");
            }
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            Ok(f.checksum(&comm))
        })
        .unwrap_err();
        assert_eq!(err.origin, 3);
        assert!(err.origin_panicked());
        assert!(err.reason.contains("construction casualty"));
    }

    #[test]
    fn stats_issues_a_single_collective() {
        use quadforest_telemetry::MetricKind;
        quadforest_comm::run(3, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |_, q| q.morton_index() % 3 == 0);
            telemetry::begin_rank(comm.rank());
            let colls = |snap: &quadforest_telemetry::MetricsSnapshot| {
                snap.get("comm.collectives", MetricKind::Counter)
                    .map(|e| e.scalar())
                    .unwrap_or(0)
            };
            let before = colls(&telemetry::rank_snapshot());
            let s = f.stats(&comm);
            let after = colls(&telemetry::rank_snapshot());
            let _ = telemetry::finish_rank();
            assert_eq!(
                after - before,
                1,
                "stats must derive everything from one allgather"
            );
            // and the derived numbers must match the dedicated paths
            assert_eq!(s.level_histogram, f.level_histogram(&comm));
            assert_eq!(s.global_count, f.global_count());
            let counts = comm.allgather(f.local_count() as u64);
            assert_eq!(s.min_local, *counts.iter().min().unwrap());
            assert_eq!(s.max_local, *counts.iter().max().unwrap());
            assert_eq!(s.max_level, 3);
        });
    }

    #[test]
    fn pipeline_phases_record_spans_on_every_rank() {
        let reports = quadforest_comm::run(2, |comm| {
            telemetry::begin_rank(comm.rank());
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| q.coords() == [0, 0, 0] && q.level() < 5);
            f.balance(&comm, BalanceKind::Face);
            f.partition(&comm);
            let _g = f.ghost(&comm, BalanceKind::Face);
            let _s = f.stats(&comm);
            telemetry::finish_rank().expect("recorder was installed")
        });
        for rep in &reports {
            assert!(rep.spans_well_nested(), "rank {}", rep.rank);
            assert_eq!(rep.nesting_errors, 0);
            for phase in [
                "new_uniform",
                "refine",
                "balance",
                "partition",
                "ghost",
                "stats",
            ] {
                assert!(
                    rep.spans.iter().any(|s| s.name == phase),
                    "rank {} missing span '{phase}'",
                    rep.rank
                );
            }
            // balance rounds nest inside the balance span
            let round = rep
                .spans
                .iter()
                .find(|s| s.name == "balance.round")
                .expect("at least one balance round");
            assert_eq!(round.depth, 1);
            // phase gauges and counters landed in the per-rank registry
            use quadforest_telemetry::MetricKind;
            assert!(rep
                .metrics
                .get("forest.refined", MetricKind::Counter)
                .is_some());
            assert!(rep
                .metrics
                .get("forest.ghost.size", MetricKind::Gauge)
                .is_some());
        }
    }

    #[test]
    fn empty_ranks_are_tolerated() {
        // more ranks than leaves
        quadforest_comm::run(16, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            assert_eq!(f.global_count(), 8);
            assert_eq!(f.validate(), Ok(()));
            assert_eq!(comm.allreduce_sum(f.local_count() as u64), 8);
        });
    }
}
