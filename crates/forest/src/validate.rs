//! Structural invariant checking for distributed forests.

use crate::{end_position, Forest, InvariantError, SfcPosition};
use quadforest_core::quadrant::Quadrant;

impl<Q: Quadrant> Forest<Q> {
    /// Verify the linear-octree invariants of the local partition:
    ///
    /// * markers are monotone and end at the sentinel,
    /// * every leaf is structurally valid and inside the unit tree,
    /// * leaves are sorted in SFC order, pairwise disjoint, and their
    ///   union tiles this rank's marker range exactly (no gaps, no
    ///   overlap, no spill) — checked in one sweep by walking expected
    ///   SFC positions.
    ///
    /// Violations surface as a typed [`InvariantError`] naming the
    /// exact broken invariant, so phase guards and restore paths can
    /// report *what* drifted, not just that something did.
    pub fn validate(&self) -> Result<(), InvariantError> {
        let k = self.trees.len();
        // marker monotonicity
        if self.markers.len() != self.size + 1 {
            return Err(InvariantError::MarkerLength {
                got: self.markers.len(),
                expected: self.size + 1,
            });
        }
        for (i, w) in self.markers.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(InvariantError::MarkersNotMonotone {
                    index: i,
                    marker: w[0],
                    next: w[1],
                });
            }
        }
        let last = *self.markers.last().expect("markers length checked above");
        if last != end_position(k) {
            return Err(InvariantError::BadEndSentinel {
                got: last,
                expected: end_position(k),
            });
        }

        // sweep: the local leaves must tile [markers[rank], markers[rank+1])
        let lo = self.markers[self.rank];
        let hi = self.markers[self.rank + 1];
        let mut expected: SfcPosition = lo;
        let per_tree = 1u64 << (Q::DIM * Q::MAX_LEVEL as u32);
        for (t, q) in self.leaves() {
            if !q.is_valid() {
                return Err(InvariantError::InvalidLeaf {
                    tree: t,
                    coords: q.coords(),
                    level: q.level(),
                });
            }
            let first = (t, q.first_descendant(Q::MAX_LEVEL).morton_abs());
            let last = (t, q.last_descendant(Q::MAX_LEVEL).morton_abs());
            if first != expected {
                return Err(InvariantError::GapOrOverlap {
                    tree: t,
                    expected,
                    found: first,
                });
            }
            // advance past this leaf
            expected = if last.1 + 1 == per_tree {
                (t + 1, 0)
            } else {
                (t, last.1 + 1)
            };
        }
        // the walk may legitimately end at a tree boundary that the next
        // rank's marker expresses as (t+1, 0)
        if expected != hi {
            return Err(InvariantError::IncompleteRange {
                walked_to: expected,
                range_end: hi,
            });
        }
        Ok(())
    }
}
