//! Structural invariant checking for distributed forests.

use crate::{end_position, Forest, SfcPosition};
use quadforest_core::quadrant::Quadrant;

impl<Q: Quadrant> Forest<Q> {
    /// Verify the linear-octree invariants of the local partition:
    ///
    /// * markers are monotone and end at the sentinel,
    /// * every leaf is structurally valid and inside the unit tree,
    /// * leaves are sorted in SFC order, pairwise disjoint, and their
    ///   union tiles this rank's marker range exactly (no gaps, no
    ///   overlap, no spill) — checked in one sweep by walking expected
    ///   SFC positions.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.trees.len();
        // marker monotonicity
        if self.markers.len() != self.size + 1 {
            return Err(format!(
                "markers length {} != P+1 = {}",
                self.markers.len(),
                self.size + 1
            ));
        }
        for w in self.markers.windows(2) {
            if w[0] > w[1] {
                return Err(format!("markers not monotone: {:?} > {:?}", w[0], w[1]));
            }
        }
        if *self.markers.last().unwrap() != end_position(k) {
            return Err(format!(
                "last marker {:?} is not the end sentinel {:?}",
                self.markers.last().unwrap(),
                end_position(k)
            ));
        }

        // sweep: the local leaves must tile [markers[rank], markers[rank+1])
        let lo = self.markers[self.rank];
        let hi = self.markers[self.rank + 1];
        let mut expected: SfcPosition = lo;
        let per_tree = 1u64 << (Q::DIM * Q::MAX_LEVEL as u32);
        for (t, q) in self.leaves() {
            if !q.is_valid() {
                return Err(format!("invalid leaf {q:?} in tree {t}"));
            }
            let first = (t, q.first_descendant(Q::MAX_LEVEL).morton_abs());
            let last = (t, q.last_descendant(Q::MAX_LEVEL).morton_abs());
            if first != expected {
                return Err(format!(
                    "gap or overlap: expected position {expected:?}, leaf {q:?} in tree {t} starts at {first:?}"
                ));
            }
            // advance past this leaf
            expected = if last.1 + 1 == per_tree {
                (t + 1, 0)
            } else {
                (t, last.1 + 1)
            };
        }
        // the walk may legitimately end at a tree boundary that the next
        // rank's marker expresses as (t+1, 0)
        if expected != hi {
            return Err(format!(
                "local range incomplete: walk ended at {expected:?}, marker range ends at {hi:?}"
            ));
        }
        Ok(())
    }
}
