//! Global corner-node numbering for lowest-order continuous elements —
//! the `p4est_nodes` / `p4est_lnodes(degree 1)` equivalent mentioned in
//! the paper's introduction ("node numberings for low- and high-order
//! continuous elements").
//!
//! Every leaf contributes its `2^d` corners. Corners shared between
//! leaves (also across tree faces and periodic identifications) receive
//! one global number; corners of fine leaves that lie strictly inside a
//! face or edge of a coarser neighbor are **hanging**: they carry no
//! number of their own but a dependency list of independent nodes (the
//! corners of the coarse entity they hang on), with equal interpolation
//! weights — the standard conforming-interpolation constraint.
//!
//! Requires a 2:1-balanced forest and a **full** (corner-adjacent) ghost
//! layer, so that every leaf touching a local node is visible locally;
//! classification is then rank-independent by construction.

use crate::directions::Box3;
use crate::{Forest, GhostLayer};
use quadforest_comm::Comm;
use quadforest_core::quadrant::Quadrant;

/// Canonical identity of a node: the lexicographically smallest
/// `(tree, point)` among all images of the point under the inter-tree
/// face identifications.
pub type NodeKey = (u32, [i32; 3]);

/// A leaf corner's reference into the node numbering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// An independent node: index into [`LocalNodes::keys`] /
    /// [`LocalNodes::global_ids`].
    Independent(u32),
    /// A hanging node: depends on these independent nodes (local
    /// indices) with equal weights.
    Hanging(Vec<u32>),
}

/// The node numbering visible on one rank.
#[derive(Clone, Debug)]
pub struct LocalNodes {
    /// Total number of independent nodes across all ranks.
    pub global_count: u64,
    /// Number of independent nodes owned by this rank.
    pub owned_count: u64,
    /// Global id of this rank's first owned node.
    pub owned_offset: u64,
    /// Canonical keys of the independent nodes known on this rank.
    pub keys: Vec<NodeKey>,
    /// Global id per entry of `keys`.
    pub global_ids: Vec<u64>,
    /// Owning rank per entry of `keys`.
    pub owners: Vec<usize>,
    /// Per local leaf (forest iteration order), per corner
    /// (Morton corner order), the node reference. Only the first `2^d`
    /// entries are meaningful.
    pub element_nodes: Vec<Vec<NodeRef>>,
}

impl LocalNodes {
    /// The global ids a leaf corner resolves to: one id for an
    /// independent corner, the dependency ids for a hanging corner.
    pub fn resolve(&self, r: &NodeRef) -> Vec<u64> {
        match r {
            NodeRef::Independent(i) => vec![self.global_ids[*i as usize]],
            NodeRef::Hanging(deps) => deps.iter().map(|i| self.global_ids[*i as usize]).collect(),
        }
    }
}

impl<Q: Quadrant> Forest<Q> {
    /// Compute the canonical key of a node point: the smallest
    /// `(tree, point)` over its orbit under face identifications.
    fn canonical_node(&self, tree: u32, p: [i32; 3]) -> NodeKey {
        let conn = self.connectivity();
        let root = Q::len_at(0);
        let dim = Q::DIM;
        let mut orbit = vec![(tree, p)];
        let mut stack = vec![(tree, p)];
        while let Some((t, x)) = stack.pop() {
            for f in 0..(2 * dim) {
                let axis = (f / 2) as usize;
                let on_face = if f & 1 == 0 {
                    x[axis] == 0
                } else {
                    x[axis] == root
                };
                if !on_face {
                    continue;
                }
                if let Some(connection) = conn.neighbor(t, f) {
                    // transform the point (h = 0); the point lies ON the
                    // shared face, so apply's whole-root translate lands
                    // it exactly on the neighbor's matching face.
                    let img = connection.transform.apply(x, 0, root);
                    let key = (connection.tree, img);
                    if !orbit.contains(&key) {
                        orbit.push(key);
                        stack.push(key);
                    }
                }
            }
        }
        orbit.into_iter().min().unwrap()
    }

    /// All leaves (local and ghost) whose closed domain contains the
    /// point `p` of `tree`, searched across the point's face orbit.
    fn leaves_touching(&self, ghost: &GhostLayer<Q>, tree: u32, p: [i32; 3]) -> Vec<(u32, Q)> {
        let conn = self.connectivity();
        let root = Q::len_at(0);
        let dim = Q::DIM;
        // orbit of (tree, point) images
        let mut orbit = vec![(tree, p)];
        let mut stack = vec![(tree, p)];
        while let Some((t, x)) = stack.pop() {
            for f in 0..(2 * dim) {
                let axis = (f / 2) as usize;
                let on_face = if f & 1 == 0 {
                    x[axis] == 0
                } else {
                    x[axis] == root
                };
                if !on_face {
                    continue;
                }
                if let Some(connection) = conn.neighbor(t, f) {
                    let img = connection.transform.apply(x, 0, root);
                    let key = (connection.tree, img);
                    if !orbit.contains(&key) {
                        orbit.push(key);
                        stack.push(key);
                    }
                }
            }
        }
        let mut out: Vec<(u32, Q)> = Vec::new();
        for (t, x) in orbit {
            let pb = Box3 { lo: x, hi: x };
            // candidate leaves: those overlapping the deepest quadrant at
            // the clamped point are not enough (the point may lie on the
            // corner of up to 2^d leaves), so probe the at-most-2^d
            // containing positions
            for dz in if dim == 3 { [0, 1].as_slice() } else { &[0] } {
                for dy in [0, 1] {
                    for dx in [0, 1] {
                        let cx = x[0] - dx;
                        let cy = x[1] - dy;
                        let cz = x[2] - dz;
                        if cx < 0
                            || cy < 0
                            || (dim == 3 && cz < 0)
                            || cx >= root
                            || cy >= root
                            || (dim == 3 && cz >= root)
                        {
                            continue;
                        }
                        let probe =
                            Q::from_coords([cx, cy, if dim == 3 { cz } else { 0 }], Q::MAX_LEVEL);
                        let range = self.overlapping_range(t, &probe);
                        for l in &self.tree_leaves(t)[range] {
                            if Box3::of_quad(l).intersects(&pb, dim) && !out.contains(&(t, *l)) {
                                out.push((t, *l));
                            }
                        }
                        for g in ghost.overlapping(t, &probe) {
                            if Box3::of_quad(&g.quad).intersects(&pb, dim)
                                && !out.contains(&(t, g.quad))
                            {
                                out.push((t, g.quad));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// True when `p` is a corner point of leaf `l`.
    fn is_corner_of(l: &Q, p: [i32; 3]) -> bool {
        let c = l.coords();
        let h = l.side();
        (0..Q::DIM as usize).all(|a| p[a] == c[a] || p[a] == c[a] + h)
    }

    /// Global corner-node numbering (collective). The forest must be
    /// 2:1 balanced; `ghost` must be a full (corner) ghost layer.
    pub fn nodes(&self, comm: &Comm, ghost: &GhostLayer<Q>) -> LocalNodes {
        let dim = Q::DIM;
        let corners = 1usize << dim;

        // -- pass 1: classify every distinct local node ------------------
        // key -> (independent?, dependency keys if hanging)
        let mut node_index: Vec<NodeKey> = Vec::new();
        let mut classes: Vec<Option<Vec<NodeKey>>> = Vec::new(); // None = independent
        let mut lookup = std::collections::HashMap::<NodeKey, usize>::new();
        let mut element_corner_keys: Vec<Vec<NodeKey>> = Vec::new();

        for (t, q) in self.leaves() {
            let c = q.coords();
            let h = q.side();
            let mut per_elem = Vec::with_capacity(corners);
            for k in 0..corners {
                let p = [
                    c[0] + ((k & 1) as i32) * h,
                    c[1] + (((k >> 1) & 1) as i32) * h,
                    if dim == 3 {
                        c[2] + (((k >> 2) & 1) as i32) * h
                    } else {
                        0
                    },
                ];
                let key = self.canonical_node(t, p);
                per_elem.push(key);
                if lookup.contains_key(&key) {
                    continue;
                }
                // classification: corner of every touching leaf?
                let touching = self.leaves_touching(ghost, t, p);
                debug_assert!(!touching.is_empty());
                let mut hanging_on: Option<(u32, Q)> = None;
                for (lt, l) in &touching {
                    if !Self::is_corner_of(l, self.point_in_tree(t, p, *lt)) {
                        let better = match &hanging_on {
                            None => true,
                            Some((_, cur)) => l.level() < cur.level(),
                        };
                        if better {
                            hanging_on = Some((*lt, *l));
                        }
                    }
                }
                let class = hanging_on.map(|(lt, l)| {
                    // dependency nodes: the corners of the entity of `l`
                    // containing the (transformed) point
                    let x = self.point_in_tree(t, p, lt);
                    let lc = l.coords();
                    let lh = l.side();
                    let mut deps = Vec::new();
                    let free: Vec<usize> = (0..dim as usize)
                        .filter(|&a| x[a] != lc[a] && x[a] != lc[a] + lh)
                        .collect();
                    let n_deps = 1usize << free.len();
                    for m in 0..n_deps {
                        let mut dp = x;
                        for (bit, &a) in free.iter().enumerate() {
                            dp[a] = if (m >> bit) & 1 == 1 {
                                lc[a] + lh
                            } else {
                                lc[a]
                            };
                        }
                        deps.push(self.canonical_node(lt, dp));
                    }
                    deps
                });
                lookup.insert(key, node_index.len());
                node_index.push(key);
                classes.push(class);
            }
            element_corner_keys.push(per_elem);
        }

        // -- pass 2: collect independent nodes, assign ownership --------
        let mut keys: Vec<NodeKey> = Vec::new();
        let mut key_slot = std::collections::HashMap::<NodeKey, u32>::new();
        let mut intern = |key: NodeKey, keys: &mut Vec<NodeKey>| -> u32 {
            *key_slot.entry(key).or_insert_with(|| {
                keys.push(key);
                (keys.len() - 1) as u32
            })
        };
        let mut element_nodes: Vec<Vec<NodeRef>> = Vec::new();
        for per_elem in &element_corner_keys {
            let mut refs = Vec::with_capacity(corners);
            for key in per_elem {
                let idx = lookup[key];
                match &classes[idx] {
                    None => refs.push(NodeRef::Independent(intern(*key, &mut keys))),
                    Some(deps) => refs.push(NodeRef::Hanging(
                        deps.iter().map(|d| intern(*d, &mut keys)).collect(),
                    )),
                }
            }
            element_nodes.push(refs);
        }

        let owners: Vec<usize> = keys.iter().map(|k| self.node_owner(*k)).collect();
        let owned_count = owners.iter().filter(|&&o| o == self.rank()).count() as u64;
        let owned_offset = comm.exscan_sum(owned_count);
        let global_count = comm.allreduce_sum(owned_count);

        // assign ids to owned nodes in key order (deterministic)
        let mut owned: Vec<(NodeKey, u32)> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| owners[*i] == self.rank())
            .map(|(i, k)| (*k, i as u32))
            .collect();
        owned.sort();
        let mut global_ids = vec![u64::MAX; keys.len()];
        for (rank_local, (_, slot)) in owned.iter().enumerate() {
            global_ids[*slot as usize] = owned_offset + rank_local as u64;
        }

        // -- pass 3: fetch ids of remotely owned nodes -------------------
        let mut requests: Vec<Vec<NodeKey>> = (0..self.size()).map(|_| Vec::new()).collect();
        for (i, key) in keys.iter().enumerate() {
            if owners[i] != self.rank() {
                requests[owners[i]].push(*key);
            }
        }
        let incoming = comm.alltoallv(requests.clone());
        let mut replies: Vec<Vec<u64>> = (0..self.size()).map(|_| Vec::new()).collect();
        for (src, reqs) in incoming.into_iter().enumerate() {
            for key in reqs {
                let slot = key_slot
                    .get(&key)
                    .unwrap_or_else(|| panic!("rank {} asked us for unknown node {key:?}", src));
                let id = global_ids[*slot as usize];
                debug_assert_ne!(id, u64::MAX, "owner must have numbered its node");
                replies[src].push(id);
            }
        }
        let answers = comm.alltoallv(replies);
        for (owner_rank, (reqs, ids)) in requests.iter().zip(answers.iter()).enumerate() {
            let _ = owner_rank;
            for (key, id) in reqs.iter().zip(ids) {
                global_ids[key_slot[key] as usize] = *id;
            }
        }

        LocalNodes {
            global_count,
            owned_count,
            owned_offset,
            keys,
            global_ids,
            owners,
            element_nodes,
        }
    }

    /// Transform a node point of `tree` into the frame of `target_tree`
    /// when they differ (via the face orbit); identity otherwise.
    fn point_in_tree(&self, tree: u32, p: [i32; 3], target_tree: u32) -> [i32; 3] {
        if tree == target_tree {
            return p;
        }
        let conn = self.connectivity();
        let root = Q::len_at(0);
        let dim = Q::DIM;
        // BFS through the orbit to the target tree
        let mut stack = vec![(tree, p)];
        let mut seen = vec![(tree, p)];
        while let Some((t, x)) = stack.pop() {
            if t == target_tree {
                return x;
            }
            for f in 0..(2 * dim) {
                let axis = (f / 2) as usize;
                let on_face = if f & 1 == 0 {
                    x[axis] == 0
                } else {
                    x[axis] == root
                };
                if !on_face {
                    continue;
                }
                if let Some(connection) = conn.neighbor(t, f) {
                    let img = connection.transform.apply(x, 0, root);
                    let key = (connection.tree, img);
                    if !seen.contains(&key) {
                        seen.push(key);
                        stack.push(key);
                    }
                }
            }
        }
        // target not reachable via faces: the caller only asks for trees
        // that share the point, so this is unreachable in valid meshes
        unreachable!("point {p:?} of tree {tree} has no image in tree {target_tree}")
    }

    /// The rank owning a node: the owner of the SFC position of the
    /// deepest quadrant containing the (clamped) canonical point — a
    /// rule every rank evaluates identically.
    fn node_owner(&self, (tree, p): NodeKey) -> usize {
        let root = Q::len_at(0);
        let c = [
            p[0].min(root - 1),
            p[1].min(root - 1),
            if Q::DIM == 3 { p[2].min(root - 1) } else { 0 },
        ];
        let probe = Q::from_coords(c, Q::MAX_LEVEL);
        self.owner_of_position((tree, probe.morton_abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BalanceKind;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;
    type Q3 = StandardQuad<3>;

    fn full_ghost<Q: Quadrant>(f: &Forest<Q>, comm: &Comm) -> GhostLayer<Q> {
        f.ghost(comm, BalanceKind::Full)
    }

    #[test]
    fn uniform_2d_counts() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            // 4x4 elements -> 5x5 nodes
            assert_eq!(nodes.global_count, 25);
            assert_eq!(nodes.owned_count, 25);
            assert!(nodes
                .element_nodes
                .iter()
                .flatten()
                .all(|r| matches!(r, NodeRef::Independent(_))));
        });
    }

    #[test]
    fn uniform_3d_counts() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            assert_eq!(nodes.global_count, 27);
        });
    }

    #[test]
    fn single_hanging_configuration() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            // refine only the lower-left quadrant: the classic single
            // hanging-node configuration
            f.refine(&comm, false, |_, q| q.morton_index() == 0);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            // 9 coarse + (0.25,0), (0,0.25), (0.25,0.25) independent
            assert_eq!(nodes.global_count, 12);
            let hanging: Vec<&NodeRef> = nodes
                .element_nodes
                .iter()
                .flatten()
                .filter(|r| matches!(r, NodeRef::Hanging(_)))
                .collect();
            // (0.5, 0.25) appears in 2 fine elements; (0.25, 0.5) in 2
            assert_eq!(hanging.len(), 4);
            for h in hanging {
                let NodeRef::Hanging(deps) = h else {
                    unreachable!()
                };
                assert_eq!(deps.len(), 2, "2D edge hanging: two endpoints");
            }
        });
    }

    #[test]
    fn hanging_deps_are_coarse_edge_endpoints() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            f.refine(&comm, false, |_, q| q.morton_index() == 0);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            let root = Q2::len_at(0);
            let h2 = root / 2;
            // find the hanging node at (h2, h4)
            let mut found = false;
            for (elem, refs) in nodes.element_nodes.iter().enumerate() {
                let _ = elem;
                for r in refs {
                    if let NodeRef::Hanging(deps) = r {
                        let pts: Vec<[i32; 3]> =
                            deps.iter().map(|d| nodes.keys[*d as usize].1).collect();
                        if pts.contains(&[h2, 0, 0]) {
                            assert!(pts.contains(&[h2, h2, 0]));
                            found = true;
                        }
                    }
                }
            }
            assert!(
                found,
                "expected the (h/2, h/4) hanging node on the x = 1/2 edge"
            );
        });
    }

    #[test]
    fn hanging_3d_face_and_edge() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let mut f = Forest::<Q3>::new_uniform(conn, &comm, 1);
            f.refine(&comm, false, |_, q| q.morton_index() == 0);
            f.balance(&comm, BalanceKind::Full);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            let mut face_hangs = 0;
            let mut edge_hangs = 0;
            for r in nodes.element_nodes.iter().flatten() {
                if let NodeRef::Hanging(deps) = r {
                    match deps.len() {
                        2 => edge_hangs += 1,
                        4 => face_hangs += 1,
                        n => panic!("3D hanging node with {n} dependencies"),
                    }
                }
            }
            assert!(face_hangs > 0, "face centers must hang");
            assert!(edge_hangs > 0, "edge midpoints must hang");
        });
    }

    #[test]
    fn periodic_identifies_opposite_faces() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::periodic(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            // 2x2 torus grid: 4 distinct nodes
            assert_eq!(nodes.global_count, 4);
        });
    }

    #[test]
    fn two_trees_share_interface_nodes() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            // two 2x2 patches: 5x3 + 5x3 - shared 3 = 15 + 15 - 3 ... the
            // combined grid is 4x2 elements -> 5x3 = 15 nodes
            assert_eq!(nodes.global_count, 15);
        });
    }

    #[test]
    fn distributed_numbering_is_consistent() {
        let serial_count = quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
            f.refine(&comm, true, |_, q| {
                q.level() < 4 && q.contains_point(center)
            });
            f.balance(&comm, BalanceKind::Full);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            nodes.global_count
        })[0];
        for p in [2usize, 3, 5] {
            let maps = quadforest_comm::run(p, |comm| {
                let conn = Arc::new(Connectivity::unit(2));
                let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
                let center = [Q2::len_at(0) / 2, Q2::len_at(0) / 2, 0];
                f.refine(&comm, true, |_, q| {
                    q.level() < 4 && q.contains_point(center)
                });
                f.balance(&comm, BalanceKind::Full);
                let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
                assert_eq!(nodes.global_count, serial_count, "P = {p}");
                assert_eq!(comm.allreduce_sum(nodes.owned_count), nodes.global_count);
                // return this rank's key -> id map
                nodes
                    .keys
                    .iter()
                    .zip(&nodes.global_ids)
                    .map(|(k, id)| (*k, *id))
                    .collect::<Vec<_>>()
            });
            // ids must agree wherever two ranks know the same node
            let mut global: std::collections::HashMap<NodeKey, u64> =
                std::collections::HashMap::new();
            for map in maps {
                for (k, id) in map {
                    if let Some(prev) = global.insert(k, id) {
                        assert_eq!(prev, id, "node {k:?} numbered inconsistently");
                    }
                }
            }
            assert_eq!(global.len() as u64, serial_count);
            // ids form exactly 0..global_count
            let mut ids: Vec<u64> = global.values().copied().collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids, (0..serial_count).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn works_with_morton_representation() {
        quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(3));
            let f = Forest::<MortonQuad<3>>::new_uniform(conn, &comm, 2);
            let nodes = f.nodes(&comm, &full_ghost(&f, &comm));
            // 4x4x4 elements -> 5^3 nodes
            assert_eq!(nodes.global_count, 125);
        });
    }
}
