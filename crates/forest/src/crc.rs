//! CRC-32 re-export shim.
//!
//! The implementation moved to [`quadforest_core::crc`] when the
//! socket transport (below this crate in the dependency graph) started
//! framing messages with the same checksum the checkpoint shards use.
//! Existing `forest::crc::crc32` callers keep working through this
//! re-export.

pub use quadforest_core::crc::crc32;
