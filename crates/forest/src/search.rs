//! Top-down search over the local forest (p4est_search-style).
//!
//! Searches descend each local tree from its root through the virtual
//! ancestor hierarchy — ancestors are constructed on demand, never
//! stored, the defining property of the linear octree storage. The
//! callback sees every ancestor together with the range of local leaves
//! it contains and decides whether to descend.

use crate::Forest;
use quadforest_connectivity::TreeId;
use quadforest_core::quadrant::Quadrant;
use quadforest_core::zrange;

/// Callback verdict for top-down search.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SearchAction {
    /// Descend into the children of this ancestor.
    Continue,
    /// Do not descend further below this ancestor.
    Prune,
}

impl<Q: Quadrant> Forest<Q> {
    /// Top-down traversal of each non-empty local tree. For every
    /// visited node (a leaf or a virtual ancestor), `visit` receives the
    /// tree, the node, the slice of local leaves inside it, and whether
    /// the node *is* a local leaf; its verdict controls descent.
    pub fn search(&self, mut visit: impl FnMut(TreeId, &Q, &[Q], bool) -> SearchAction) {
        for (t, leaves) in self.trees.iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            self.search_node(t as TreeId, &Q::root(), leaves, &mut visit);
        }
    }

    fn search_node(
        &self,
        tree: TreeId,
        node: &Q,
        leaves: &[Q],
        visit: &mut impl FnMut(TreeId, &Q, &[Q], bool) -> SearchAction,
    ) {
        // restrict to the leaves inside this node
        let first = node.first_descendant(Q::MAX_LEVEL).morton_abs();
        let last = node.last_descendant(Q::MAX_LEVEL).morton_abs();
        let lo = leaves.partition_point(|p| p.last_descendant(Q::MAX_LEVEL).morton_abs() < first);
        let hi = leaves.partition_point(|p| p.morton_abs() <= last);
        let inside = &leaves[lo..hi];
        if inside.is_empty() {
            return;
        }
        let is_leaf = inside.len() == 1 && inside[0] == *node;
        let action = visit(tree, node, inside, is_leaf);
        if is_leaf || action == SearchAction::Prune || node.level() >= Q::MAX_LEVEL {
            return;
        }
        // a coarser-than-node leaf containing the node cannot occur: the
        // range restriction guarantees inside ⊆ subtree(node)
        for c in 0..Q::NUM_CHILDREN {
            self.search_node(tree, &node.child(c), inside, visit);
        }
    }

    /// Index of the local leaf of `tree` containing point `p`, through
    /// the shared [`zrange::locate_by`] kernel — the same binary-search
    /// implementation the query subsystem's snapshots serve from, with
    /// accessors over the live leaf array instead of flat key arrays.
    fn leaf_index_containing(&self, tree: TreeId, p: [i32; 3]) -> Option<usize> {
        let root = Q::len_at(0);
        if p.iter().take(Q::DIM as usize).any(|&c| c < 0 || c >= root) {
            return None;
        }
        let leaves = &self.trees[tree as usize];
        zrange::locate_by(
            leaves.len(),
            |i| leaves[i].morton_abs(),
            |i| leaves[i].level(),
            Q::DIM,
            Q::MAX_LEVEL,
            zrange::point_key(p, Q::DIM),
        )
    }

    /// Locate the local leaf of `tree` containing the integer point `p`
    /// (half-open convention per quadrant), if this rank owns it.
    pub fn find_leaf_containing(&self, tree: TreeId, p: [i32; 3]) -> Option<&Q> {
        self.leaf_index_containing(tree, p)
            .map(|i| &self.trees[tree as usize][i])
    }

    /// Locate matching leaves for a batch of points in one traversal;
    /// returns for each point the leaf index within its tree or `None`.
    /// Points must be given with their target tree.
    pub fn search_points(&self, points: &[(TreeId, [i32; 3])]) -> Vec<Option<usize>> {
        points
            .iter()
            .map(|(t, p)| self.leaf_index_containing(*t, *p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_connectivity::Connectivity;
    use quadforest_core::quadrant::{MortonQuad, StandardQuad};
    use std::sync::Arc;

    type Q2 = StandardQuad<2>;

    #[test]
    fn search_visits_every_leaf_once() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |_, q| q.morton_index() % 2 == 0);
            let mut visited_leaves = 0;
            let mut visited_ancestors = 0;
            f.search(|_, _, inside, is_leaf| {
                if is_leaf {
                    visited_leaves += 1;
                    assert_eq!(inside.len(), 1);
                } else {
                    visited_ancestors += 1;
                }
                SearchAction::Continue
            });
            assert_eq!(visited_leaves, f.local_count());
            assert!(visited_ancestors > 0);
        });
    }

    #[test]
    fn prune_stops_descent() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 3);
            let mut visits = 0;
            f.search(|_, node, _, _| {
                visits += 1;
                if node.level() >= 1 {
                    SearchAction::Prune
                } else {
                    SearchAction::Continue
                }
            });
            // root + 4 level-1 ancestors only
            assert_eq!(visits, 5);
        });
    }

    #[test]
    fn point_location_matches_brute_force() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q2>::new_uniform(conn, &comm, 2);
            f.refine(&comm, true, |_, q| q.coords()[0] == 0 && q.level() < 4);
            let root = Q2::len_at(0);
            let step = root / 17;
            for i in 0..17 {
                for j in 0..17 {
                    let p = [i * step, j * step, 0];
                    let found = f.find_leaf_containing(0, p);
                    let brute = f.tree_leaves(0).iter().find(|q| q.contains_point(p));
                    assert_eq!(found, brute, "point {p:?}");
                    assert!(found.is_some());
                }
            }
            // out of domain
            assert!(f.find_leaf_containing(0, [-1, 0, 0]).is_none());
            assert!(f.find_leaf_containing(0, [root, 0, 0]).is_none());
        });
    }

    #[test]
    fn point_location_respects_rank_ownership() {
        quadforest_comm::run(4, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 3);
            let mut local_hits = 0u64;
            let root = MortonQuad::<2>::len_at(0);
            let step = root / 8;
            for i in 0..8 {
                for j in 0..8 {
                    if f.find_leaf_containing(0, [i * step, j * step, 0]).is_some() {
                        local_hits += 1;
                    }
                }
            }
            // every probe point hits exactly one rank
            assert_eq!(comm.allreduce_sum(local_hits), 64);
        });
    }

    #[test]
    fn search_points_batch() {
        quadforest_comm::run(1, |comm| {
            let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
            let f = Forest::<Q2>::new_uniform(conn, &comm, 1);
            let h = Q2::len_at(1);
            let res = f.search_points(&[(0, [0, 0, 0]), (1, [h, h, 0]), (0, [-5, 0, 0])]);
            assert!(res[0].is_some());
            assert!(res[1].is_some());
            assert!(res[2].is_none());
        });
    }
}
