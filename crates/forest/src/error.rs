//! Typed errors for forest validation, serialization, and checkpointing.
//!
//! Two layers: [`InvariantError`] is a violated linear-octree invariant
//! found by [`Forest::validate`](crate::Forest::validate), and
//! [`IoError`] is anything that can go wrong turning bytes back into a
//! forest — truncation, bit rot (CRC mismatch), version skew, context
//! mismatches, storage failures, and (as a nested cause) an invariant
//! violation in freshly loaded data. Both implement
//! [`std::error::Error`] and are `Clone + PartialEq` so tests can match
//! on exact failure shapes and the comm layer can ship them across
//! rank boundaries.

use crate::SfcPosition;
use std::fmt;

/// A violated structural invariant of the distributed linear octree,
/// as detected by [`Forest::validate`](crate::Forest::validate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantError {
    /// The marker array does not have `P + 1` entries.
    MarkerLength {
        /// Actual marker count.
        got: usize,
        /// Expected marker count (`P + 1`).
        expected: usize,
    },
    /// Two adjacent partition markers are out of order.
    MarkersNotMonotone {
        /// Index of the first offending marker.
        index: usize,
        /// The marker at `index`.
        marker: SfcPosition,
        /// The (smaller) marker at `index + 1`.
        next: SfcPosition,
    },
    /// The last marker is not the end-of-forest sentinel.
    BadEndSentinel {
        /// The marker found in the last slot.
        got: SfcPosition,
        /// The sentinel it should have been.
        expected: SfcPosition,
    },
    /// A leaf fails its representation's structural validity check.
    InvalidLeaf {
        /// Tree holding the leaf.
        tree: u32,
        /// The leaf's anchor coordinates.
        coords: [i32; 3],
        /// The leaf's refinement level.
        level: u8,
    },
    /// The SFC walk found a gap or an overlap between local leaves.
    GapOrOverlap {
        /// Tree holding the offending leaf.
        tree: u32,
        /// Position where the walk expected the next leaf to start.
        expected: SfcPosition,
        /// Position where the leaf actually starts.
        found: SfcPosition,
    },
    /// The local leaves do not tile the rank's marker range exactly.
    IncompleteRange {
        /// Position where the walk over local leaves ended.
        walked_to: SfcPosition,
        /// Position where the rank's marker range ends.
        range_end: SfcPosition,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::MarkerLength { got, expected } => {
                write!(f, "markers length {got} != P+1 = {expected}")
            }
            InvariantError::MarkersNotMonotone {
                index,
                marker,
                next,
            } => write!(
                f,
                "markers not monotone at {index}: {marker:?} > {next:?}"
            ),
            InvariantError::BadEndSentinel { got, expected } => write!(
                f,
                "last marker {got:?} is not the end sentinel {expected:?}"
            ),
            InvariantError::InvalidLeaf { tree, coords, level } => {
                write!(f, "invalid leaf ({coords:?}, level {level}) in tree {tree}")
            }
            InvariantError::GapOrOverlap {
                tree,
                expected,
                found,
            } => write!(
                f,
                "gap or overlap: expected position {expected:?}, leaf in tree {tree} starts at {found:?}"
            ),
            InvariantError::IncompleteRange {
                walked_to,
                range_end,
            } => write!(
                f,
                "local range incomplete: walk ended at {walked_to:?}, marker range ends at {range_end:?}"
            ),
        }
    }
}

impl std::error::Error for InvariantError {}

/// An error loading or storing a portable forest stream or checkpoint.
///
/// Every path from untrusted bytes to a live [`Forest`](crate::Forest)
/// funnels through this type: corrupt input must surface as an `Err`,
/// never as a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// The stream ended before a complete record could be read.
    Truncated {
        /// Bytes the next record needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The stream does not start with the expected magic bytes.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The stream's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The stream's CRC32 guard does not match its contents (bit rot,
    /// torn write, or truncation that preserved the length fields).
    ChecksumMismatch {
        /// CRC stored in the stream.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A count field disagrees with a structurally implied value
    /// (e.g. marker count vs `P + 1`, shard leaf sums vs the global
    /// count).
    CountMismatch {
        /// Which count is inconsistent.
        what: &'static str,
        /// The value found in the stream.
        found: u64,
        /// The value implied by the rest of the stream.
        expected: u64,
    },
    /// A leaf record is out of range for the target representation.
    CorruptLeaf {
        /// Tree index of the record.
        tree: u32,
        /// Anchor coordinates of the record.
        coords: [i32; 3],
        /// Level of the record.
        level: u8,
    },
    /// The stream's spatial dimension does not match the quadrant
    /// representation it is being loaded into.
    DimensionMismatch {
        /// Dimension recorded in the stream.
        stream: u32,
        /// Dimension of the target representation.
        representation: u32,
    },
    /// The stream's tree count does not match the connectivity.
    TreeCountMismatch {
        /// Tree count recorded in the stream.
        stream: u64,
        /// Tree count of the supplied connectivity.
        connectivity: u64,
    },
    /// The stream was saved from a different communicator size and the
    /// chosen load path requires an exact match.
    SizeMismatch {
        /// Communicator size recorded in the stream.
        stream: u64,
        /// Size of the communicator loading it.
        communicator: u64,
    },
    /// Deserialized data failed forest invariant validation.
    Invariant(InvariantError),
    /// A filesystem operation failed (message is the stringified
    /// [`std::io::Error`], kept as a `String` so this type stays
    /// `Clone`/`PartialEq` and can cross rank boundaries).
    Storage {
        /// Path the operation touched.
        path: String,
        /// Stringified OS error.
        message: String,
    },
    /// No generation in the checkpoint directory passed verification.
    NoCheckpoint {
        /// The directory that was searched.
        dir: String,
    },
    /// A payload restore was requested but the stream carries no
    /// payload section (it is a payload-less version-2 shard).
    MissingPayload,
    /// A per-leaf payload record failed to decode into the requested
    /// payload type.
    PayloadCorrupt {
        /// Rank-local index of the offending leaf.
        leaf: u64,
        /// Stringified decode failure.
        detail: String,
    },
}

impl IoError {
    /// Wrap a [`std::io::Error`] with the path it occurred on.
    pub fn storage(path: &std::path::Path, err: std::io::Error) -> Self {
        IoError::Storage {
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}

impl From<InvariantError> for IoError {
    fn from(e: InvariantError) -> Self {
        IoError::Invariant(e)
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Truncated { needed, remaining } => write!(
                f,
                "truncated stream: need {needed} more bytes, have {remaining}"
            ),
            IoError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            IoError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported version {found} (this build reads {supported})"
                )
            }
            IoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "CRC32 mismatch: stream says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            IoError::CountMismatch {
                what,
                found,
                expected,
            } => write!(f, "{what} count {found} != expected {expected}"),
            IoError::CorruptLeaf {
                tree,
                coords,
                level,
            } => {
                write!(f, "corrupt leaf record ({tree}, {coords:?}, {level})")
            }
            IoError::DimensionMismatch {
                stream,
                representation,
            } => write!(
                f,
                "dimension mismatch: stream {stream} vs representation {representation}"
            ),
            IoError::TreeCountMismatch {
                stream,
                connectivity,
            } => write!(
                f,
                "tree count mismatch: stream {stream} vs connectivity {connectivity}"
            ),
            IoError::SizeMismatch {
                stream,
                communicator,
            } => write!(
                f,
                "communicator size mismatch: stream {stream} vs run {communicator}"
            ),
            IoError::Invariant(e) => write!(f, "loaded forest fails validation: {e}"),
            IoError::Storage { path, message } => write!(f, "storage error on {path}: {message}"),
            IoError::NoCheckpoint { dir } => {
                write!(f, "no usable checkpoint generation under {dir}")
            }
            IoError::MissingPayload => {
                write!(f, "stream has no payload section (payload-less shard)")
            }
            IoError::PayloadCorrupt { leaf, detail } => {
                write!(f, "payload of local leaf {leaf} failed to decode: {detail}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Invariant(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Wire encoding: both error types travel across rank boundaries on the
// socket transport (e.g. as a `Result<_, IoError>` program outcome), so
// they get the same strict, discriminant-checked treatment as the comm
// layer's own errors.

use quadforest_core::wire::{Wire, WireError, WireReader};

impl Wire for InvariantError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            InvariantError::MarkerLength { got, expected } => {
                out.push(0);
                got.encode(out);
                expected.encode(out);
            }
            InvariantError::MarkersNotMonotone {
                index,
                marker,
                next,
            } => {
                out.push(1);
                index.encode(out);
                marker.encode(out);
                next.encode(out);
            }
            InvariantError::BadEndSentinel { got, expected } => {
                out.push(2);
                got.encode(out);
                expected.encode(out);
            }
            InvariantError::InvalidLeaf {
                tree,
                coords,
                level,
            } => {
                out.push(3);
                tree.encode(out);
                coords.encode(out);
                level.encode(out);
            }
            InvariantError::GapOrOverlap {
                tree,
                expected,
                found,
            } => {
                out.push(4);
                tree.encode(out);
                expected.encode(out);
                found.encode(out);
            }
            InvariantError::IncompleteRange {
                walked_to,
                range_end,
            } => {
                out.push(5);
                walked_to.encode(out);
                range_end.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => InvariantError::MarkerLength {
                got: usize::decode(r)?,
                expected: usize::decode(r)?,
            },
            1 => InvariantError::MarkersNotMonotone {
                index: usize::decode(r)?,
                marker: SfcPosition::decode(r)?,
                next: SfcPosition::decode(r)?,
            },
            2 => InvariantError::BadEndSentinel {
                got: SfcPosition::decode(r)?,
                expected: SfcPosition::decode(r)?,
            },
            3 => InvariantError::InvalidLeaf {
                tree: u32::decode(r)?,
                coords: <[i32; 3]>::decode(r)?,
                level: u8::decode(r)?,
            },
            4 => InvariantError::GapOrOverlap {
                tree: u32::decode(r)?,
                expected: SfcPosition::decode(r)?,
                found: SfcPosition::decode(r)?,
            },
            5 => InvariantError::IncompleteRange {
                walked_to: SfcPosition::decode(r)?,
                range_end: SfcPosition::decode(r)?,
            },
            d => {
                return Err(WireError::Invalid(format!(
                    "bad InvariantError discriminant {d}"
                )))
            }
        })
    }
}

impl Wire for IoError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IoError::Truncated { needed, remaining } => {
                out.push(0);
                needed.encode(out);
                remaining.encode(out);
            }
            IoError::BadMagic { found } => {
                out.push(1);
                found.encode(out);
            }
            IoError::UnsupportedVersion { found, supported } => {
                out.push(2);
                found.encode(out);
                supported.encode(out);
            }
            IoError::ChecksumMismatch { stored, computed } => {
                out.push(3);
                stored.encode(out);
                computed.encode(out);
            }
            IoError::CountMismatch {
                what,
                found,
                expected,
            } => {
                out.push(4);
                what.to_string().encode(out);
                found.encode(out);
                expected.encode(out);
            }
            IoError::CorruptLeaf {
                tree,
                coords,
                level,
            } => {
                out.push(5);
                tree.encode(out);
                coords.encode(out);
                level.encode(out);
            }
            IoError::DimensionMismatch {
                stream,
                representation,
            } => {
                out.push(6);
                stream.encode(out);
                representation.encode(out);
            }
            IoError::TreeCountMismatch {
                stream,
                connectivity,
            } => {
                out.push(7);
                stream.encode(out);
                connectivity.encode(out);
            }
            IoError::SizeMismatch {
                stream,
                communicator,
            } => {
                out.push(8);
                stream.encode(out);
                communicator.encode(out);
            }
            IoError::Invariant(e) => {
                out.push(9);
                e.encode(out);
            }
            IoError::Storage { path, message } => {
                out.push(10);
                path.encode(out);
                message.encode(out);
            }
            IoError::NoCheckpoint { dir } => {
                out.push(11);
                dir.encode(out);
            }
            IoError::MissingPayload => out.push(12),
            IoError::PayloadCorrupt { leaf, detail } => {
                out.push(13);
                leaf.encode(out);
                detail.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => IoError::Truncated {
                needed: usize::decode(r)?,
                remaining: usize::decode(r)?,
            },
            1 => IoError::BadMagic {
                found: <[u8; 4]>::decode(r)?,
            },
            2 => IoError::UnsupportedVersion {
                found: u32::decode(r)?,
                supported: u32::decode(r)?,
            },
            3 => IoError::ChecksumMismatch {
                stored: u32::decode(r)?,
                computed: u32::decode(r)?,
            },
            4 => {
                // `what` is a &'static str naming the inconsistent
                // count; intern the decoded copy to get the lifetime
                // back (the name set is small and closed).
                let what = quadforest_telemetry::intern_name(&String::decode(r)?);
                IoError::CountMismatch {
                    what,
                    found: u64::decode(r)?,
                    expected: u64::decode(r)?,
                }
            }
            5 => IoError::CorruptLeaf {
                tree: u32::decode(r)?,
                coords: <[i32; 3]>::decode(r)?,
                level: u8::decode(r)?,
            },
            6 => IoError::DimensionMismatch {
                stream: u32::decode(r)?,
                representation: u32::decode(r)?,
            },
            7 => IoError::TreeCountMismatch {
                stream: u64::decode(r)?,
                connectivity: u64::decode(r)?,
            },
            8 => IoError::SizeMismatch {
                stream: u64::decode(r)?,
                communicator: u64::decode(r)?,
            },
            9 => IoError::Invariant(InvariantError::decode(r)?),
            10 => IoError::Storage {
                path: String::decode(r)?,
                message: String::decode(r)?,
            },
            11 => IoError::NoCheckpoint {
                dir: String::decode(r)?,
            },
            12 => IoError::MissingPayload,
            13 => IoError::PayloadCorrupt {
                leaf: u64::decode(r)?,
                detail: String::decode(r)?,
            },
            d => return Err(WireError::Invalid(format!("bad IoError discriminant {d}"))),
        })
    }
}
