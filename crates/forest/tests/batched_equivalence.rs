//! Differential tests for the batched balance/ghost hot paths.
//!
//! `balance` and `ghost` now enumerate neighbor domains through the
//! SoA-batched [`for_each_neighbor_domain`] sweep. These properties pin
//! the observable results to what the per-quadrant path produced: the
//! balanced forest is leaf-for-leaf identical at P ∈ {1, 2, 4}, and the
//! ghost layer at every P equals a per-quadrant oracle recomputed with
//! the scalar [`neighbor_domain`] walk.

use proptest::prelude::*;
use quadforest_comm::Comm;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant, StandardQuad};
use quadforest_forest::directions::{neighbor_domain, offsets, Adjacency, Box3};
use quadforest_forest::{BalanceKind, Forest, GhostLayer};
use std::sync::Arc;

/// Rank-independent refine selector (callbacks must not depend on the
/// rank, as in MPI practice).
fn mix(seed: u64, t: u32, q_pos: u64, level: u8) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [t as u64, q_pos, level as u64] {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

/// Refine twice from a random seed, balance, partition. The shared
/// opening sequence of every property below.
fn build_forest<Q: Quadrant>(
    comm: &Comm,
    conn: Arc<Connectivity>,
    seed: u64,
    max_level: u8,
    kind: BalanceKind,
) -> Forest<Q> {
    let mut f = Forest::<Q>::new_uniform(conn, comm, 1);
    f.refine(comm, false, |t, q| {
        q.level() < max_level && mix(seed, t, q.morton_abs(), q.level()) % 3 == 0
    });
    f.refine(comm, false, |t, q| {
        q.level() < max_level && mix(seed ^ 0xABCD, t, q.morton_abs(), q.level()) % 4 == 0
    });
    f.balance(comm, kind);
    f.partition(comm);
    f
}

/// The global leaf set, independent of how it is split across ranks.
fn global_leaves(views: Vec<Vec<(u32, [i32; 3], u8)>>) -> Vec<(u32, [i32; 3], u8)> {
    let mut all: Vec<_> = views.into_iter().flatten().collect();
    all.sort();
    all
}

/// Per-quadrant ghost oracle: a remote leaf is a ghost iff some local
/// leaf's scalar neighbor domain overlaps it (same formulation as the
/// in-crate reference the ghost unit tests use, rebuilt here on the
/// public API only).
fn oracle_ghosts<Q: Quadrant>(
    f: &Forest<Q>,
    comm: &Comm,
    adjacency: Adjacency,
) -> Vec<(u32, [i32; 3], u8)> {
    let all: Vec<(usize, u32, Q)> = comm
        .allgather(
            f.leaves()
                .map(|(t, q)| (comm.rank(), t, *q))
                .collect::<Vec<_>>(),
        )
        .into_iter()
        .flatten()
        .collect();
    let offs = offsets(Q::DIM, adjacency);
    let mut out = Vec::new();
    for (owner, gt, g) in &all {
        if *owner == comm.rank() {
            continue;
        }
        let gb = Box3::of_quad(g);
        let mut adjacent = false;
        'outer: for (t, q) in f.leaves() {
            for off in &offs {
                if let Some(dom) = neighbor_domain(f.connectivity(), t, q, *off) {
                    if dom.tree == *gt {
                        let probe = Q::from_coords(dom.coords, dom.level);
                        if (probe.is_ancestor_of(g) || g.is_ancestor_of(&probe) || probe == *g)
                            && gb.intersects(&dom.contact, Q::DIM)
                        {
                            adjacent = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        if adjacent {
            out.push((*gt, g.coords(), g.level()));
        }
    }
    out.sort();
    out.dedup();
    out
}

fn ghost_tuples<Q: Quadrant>(g: &GhostLayer<Q>) -> Vec<(u32, [i32; 3], u8)> {
    let mut v: Vec<_> = g
        .ghosts
        .iter()
        .map(|g| (g.tree, g.quad.coords(), g.quad.level()))
        .collect();
    v.sort();
    v
}

fn adjacency_of(kind: BalanceKind) -> Adjacency {
    match kind {
        BalanceKind::Face => Adjacency::Face,
        _ => Adjacency::Full,
    }
}

/// Balanced leaf sets are identical at P = 1, 2 and 4, and every rank's
/// ghost layer matches the per-quadrant oracle.
fn check_equivalence<Q: Quadrant>(conn: Connectivity, seed: u64, max_level: u8, kind: BalanceKind) {
    let conn = Arc::new(conn);
    let mut per_p = Vec::new();
    for p in [1usize, 2, 4] {
        let conn = Arc::clone(&conn);
        let views = quadforest_comm::run(p, move |comm| {
            let f = build_forest::<Q>(&comm, Arc::clone(&conn), seed, max_level, kind);
            f.validate().expect("balanced forest must validate");
            let ghost = f.ghost(&comm, kind);
            let oracle = oracle_ghosts(&f, &comm, adjacency_of(kind));
            assert_eq!(
                ghost_tuples(&ghost),
                oracle,
                "P={p}: batched ghost layer diverges from per-quadrant oracle"
            );
            f.leaves()
                .map(|(t, q)| (t, q.coords(), q.level()))
                .collect::<Vec<_>>()
        });
        per_p.push((p, global_leaves(views)));
    }
    let (_, base) = &per_p[0];
    for (p, leaves) in &per_p[1..] {
        assert_eq!(
            leaves, base,
            "P={p}: balanced forest is not leaf-for-leaf identical to P=1"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn balance_and_ghost_equivalent_2d(seed in any::<u64>()) {
        check_equivalence::<MortonQuad<2>>(Connectivity::unit(2), seed, 5, BalanceKind::Face);
    }

    #[test]
    fn balance_and_ghost_equivalent_2d_full(seed in any::<u64>()) {
        check_equivalence::<StandardQuad<2>>(Connectivity::unit(2), seed, 4, BalanceKind::Full);
    }

    #[test]
    fn balance_and_ghost_equivalent_3d(seed in any::<u64>()) {
        check_equivalence::<StandardQuad<3>>(Connectivity::unit(3), seed, 3, BalanceKind::Face);
    }

    #[test]
    fn balance_and_ghost_equivalent_periodic(seed in any::<u64>()) {
        check_equivalence::<MortonQuad<2>>(Connectivity::periodic(2), seed, 4, BalanceKind::Face);
    }
}
