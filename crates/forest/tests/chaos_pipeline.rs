//! Chaos tests of the full forest pipeline: the refine → balance →
//! partition → ghost sequence must be bit-identical under injected
//! message delays and reordering (the freedom a real network has), and
//! a rank dying mid-pipeline must surface as a typed [`WorldError`]
//! instead of a hang.

use quadforest_comm::{run, run_with_faults, FaultPlan};
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant};
use quadforest_forest::{BalanceKind, Forest};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rank-independent refine selector (same idiom as the property tests:
/// callbacks must not depend on the rank, as in MPI practice).
fn mix(seed: u64, t: u32, q_pos: u64, level: u8) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [t as u64, q_pos, level as u64] {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

/// Everything observable about one rank's slice of the pipeline result:
/// partition markers, the leaves themselves, the ghost layer, and the
/// collective checksum.
type RankView = (
    Vec<(u32, u64)>,
    Vec<(u32, [i32; 3], u8)>,
    Vec<(usize, u32, [i32; 3], u8)>,
    u64,
);

/// The full opening sequence of a typical AMR run, returning every
/// observable per-rank artifact for leaf-for-leaf comparison.
fn pipeline(comm: &quadforest_comm::Comm, seed: u64) -> RankView {
    // validate at every phase boundary so invariant drift is pinned to
    // the phase that introduced it, not discovered phases later
    let conn = Arc::new(Connectivity::unit(2));
    let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, comm, 1);
    f.validate().expect("invariants must hold after creation");
    f.refine(comm, false, |t, q| {
        q.level() < 5 && mix(seed, t, q.morton_abs(), q.level()) % 3 == 0
    });
    f.validate().expect("invariants must hold after refine 1");
    f.refine(comm, false, |t, q| {
        q.level() < 5 && mix(seed ^ 0xABCD, t, q.morton_abs(), q.level()) % 4 == 0
    });
    f.validate().expect("invariants must hold after refine 2");
    f.balance(comm, BalanceKind::Face);
    f.validate().expect("invariants must hold after balance");
    f.partition(comm);
    f.validate().expect("invariants must hold after partition");
    let ghost = f.ghost(comm, BalanceKind::Face);
    f.validate().expect("invariants must hold after ghost");
    (
        f.markers().to_vec(),
        f.leaves()
            .map(|(t, q)| (t, q.coords(), q.level()))
            .collect(),
        ghost
            .ghosts
            .iter()
            .map(|g| (g.owner, g.tree, g.quad.coords(), g.quad.level()))
            .collect(),
        f.checksum(comm),
    )
}

/// Acceptance criterion: fault-injected (delay + reorder) runs of the
/// refine → balance → partition → ghost pipeline produce byte-identical
/// partitions and ghost layers to fault-free runs for P ∈ {1, 2, 4, 7}.
#[test]
fn pipeline_is_identical_under_delay_and_reorder() {
    for p in [1usize, 2, 4, 7] {
        let baseline = run(p, |c| pipeline(&c, 0x5EED));
        for fault_seed in [11u64, 22, 33] {
            let plan = FaultPlan::new(fault_seed)
                .with_delays(0.15, Duration::from_micros(100))
                .with_reordering(0.2);
            let chaotic = run_with_faults(p, plan, |c| pipeline(&c, 0x5EED))
                .unwrap_or_else(|e| panic!("P={p} fault_seed={fault_seed}: {e}"));
            assert_eq!(
                baseline, chaotic,
                "P={p} fault_seed={fault_seed}: pipeline diverged under faults"
            );
        }
    }
}

/// The distributed pipeline result also matches the serial one under
/// faults: chaos must not reintroduce rank-count dependence.
#[test]
fn chaotic_pipeline_stays_rank_count_invariant() {
    let flatten = |views: Vec<RankView>| {
        let mut all: Vec<(u32, [i32; 3], u8)> = views
            .into_iter()
            .flat_map(|(_, leaves, _, _)| leaves)
            .collect();
        all.sort();
        all
    };
    let serial = flatten(run(1, |c| pipeline(&c, 0xFEED)));
    for p in [2usize, 4, 7] {
        let plan = FaultPlan::new(p as u64 * 101)
            .with_delays(0.2, Duration::from_micros(80))
            .with_reordering(0.2);
        let faulty = flatten(
            run_with_faults(p, plan, |c| pipeline(&c, 0xFEED))
                .unwrap_or_else(|e| panic!("P={p}: {e}")),
        );
        assert_eq!(serial, faulty, "P={p}: mesh depends on rank count");
    }
}

/// A rank dying in the middle of the pipeline (during the collective
/// storm of balance/partition/ghost) yields a clean [`WorldError`]
/// naming the victim, well inside the 5 s acceptance bound.
#[test]
fn rank_death_mid_pipeline_is_a_clean_error() {
    for p in [2usize, 4] {
        let victim = p - 1;
        let start = Instant::now();
        let plan = FaultPlan::new(7).with_panic_at(victim, 12);
        let err = run_with_faults(p, plan, |c| pipeline(&c, 0xDEAD))
            .expect_err("the scheduled panic must fail the world");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "P={p}: abort did not propagate promptly"
        );
        assert_eq!(err.origin, victim, "P={p}: wrong origin");
        assert!(err.origin_panicked());
        assert!(err.reason.contains("scheduled panic"));
    }
}
