//! Property-based tests of the forest invariants under random workflows:
//! arbitrary sequences of refine / coarsen / balance / partition must
//! preserve the linear-octree invariants, the global count, and
//! rank-count-invariant results.

use proptest::prelude::*;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{HilbertQuad, MortonQuad, Quadrant, StandardQuad};
use quadforest_forest::{BalanceKind, Forest};
use std::sync::Arc;

/// One step of a random adaptation workflow. The refine/coarsen
/// selectors are seeded hashes so the same step is reproducible on every
/// rank (callbacks must be rank-independent, as in MPI practice).
#[derive(Copy, Clone, Debug)]
enum Step {
    Refine(u64),
    Coarsen(u64),
    Balance,
    Partition,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u64>().prop_map(Step::Refine),
        any::<u64>().prop_map(Step::Coarsen),
        Just(Step::Balance),
        Just(Step::Partition),
    ]
}

/// Steps without coarsening: refine, balance and partition are exactly
/// rank-count invariant; coarsening is not (a family straddling a rank
/// boundary must not merge — p4est behaves identically), so the strict
/// invariance property uses this restricted alphabet.
fn monotone_step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u64>().prop_map(Step::Refine),
        Just(Step::Balance),
        Just(Step::Partition),
    ]
}

fn mix(seed: u64, t: u32, q_pos: u64, level: u8) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [t as u64, q_pos, level as u64] {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

/// Run the workflow on `ranks` simulated ranks; return the global
/// sorted leaf set and final count.
fn run_workflow<Q: Quadrant>(
    steps: &[Step],
    ranks: usize,
    max_level: u8,
) -> (Vec<(u32, [i32; 3], u8)>, u64) {
    let steps = steps.to_vec();
    let results = quadforest_comm::run(ranks, move |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Q>::new_uniform(conn, &comm, 1);
        for step in &steps {
            match step {
                Step::Refine(seed) => {
                    let s = *seed;
                    f.refine(&comm, false, |t, q| {
                        q.level() < max_level && mix(s, t, q.morton_abs(), q.level()) % 3 == 0
                    });
                }
                Step::Coarsen(seed) => {
                    let s = *seed;
                    f.coarsen(&comm, false, |t, fam| {
                        mix(s, t, fam[0].morton_abs(), fam[0].level()) % 4 == 0
                    });
                }
                Step::Balance => {
                    f.balance(&comm, BalanceKind::Face);
                }
                Step::Partition => {
                    f.partition(&comm);
                }
            }
            f.validate().expect("invariants must hold after every step");
        }
        let leaves: Vec<(u32, [i32; 3], u8)> = f
            .leaves()
            .map(|(t, q)| (t, q.coords(), q.level()))
            .collect();
        (leaves, f.global_count())
    });
    let count = results[0].1;
    let mut all: Vec<_> = results.into_iter().flat_map(|(l, _)| l).collect();
    all.sort();
    (all, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants hold and the mesh is rank-count independent for
    /// monotone (non-coarsening) workflows.
    #[test]
    fn random_workflow_rank_invariant(
        steps in proptest::collection::vec(monotone_step_strategy(), 1..8),
    ) {
        let (serial, n1) = run_workflow::<MortonQuad<2>>(&steps, 1, 5);
        prop_assert_eq!(serial.len() as u64, n1);
        for ranks in [2usize, 4] {
            let (dist, nd) = run_workflow::<MortonQuad<2>>(&steps, ranks, 5);
            prop_assert_eq!(nd, n1, "global count differs at P = {}", ranks);
            prop_assert_eq!(&dist, &serial, "mesh differs at P = {}", ranks);
        }
    }

    /// Coarsening below the base level is impossible and counts stay
    /// consistent with the leaf volume: total volume is conserved.
    #[test]
    fn volume_is_conserved(
        steps in proptest::collection::vec(step_strategy(), 1..10),
    ) {
        let (leaves, _) = run_workflow::<StandardQuad<2>>(&steps, 2, 6);
        let root = StandardQuad::<2>::len_at(0) as u128;
        let total: u128 = leaves
            .iter()
            .map(|(_, _, l)| {
                let h = StandardQuad::<2>::len_at(*l) as u128;
                h * h
            })
            .sum();
        prop_assert_eq!(total, root * root, "leaves must tile the square");
    }

    /// After a final balance the 2:1 condition verifies globally (on the
    /// serial gather, where all neighbors are visible).
    #[test]
    fn final_balance_verifies(
        steps in proptest::collection::vec(step_strategy(), 1..6),
    ) {
        let mut steps = steps;
        steps.push(Step::Balance);
        let steps_for_run = steps.clone();
        quadforest_comm::run(1, move |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 1);
            for step in &steps_for_run {
                match step {
                    Step::Refine(seed) => {
                        let s = *seed;
                        f.refine(&comm, false, |t, q| {
                            q.level() < 5 && mix(s, t, q.morton_abs(), q.level()) % 3 == 0
                        });
                    }
                    Step::Coarsen(seed) => {
                        let s = *seed;
                        f.coarsen(&comm, false, |t, fam| {
                            mix(s, t, fam[0].morton_abs(), fam[0].level()) % 4 == 0
                        });
                    }
                    Step::Balance => {
                        f.balance(&comm, BalanceKind::Face);
                    }
                    Step::Partition => {
                        f.partition(&comm);
                    }
                }
            }
            f.is_balanced_local(BalanceKind::Face)
                .expect("final mesh must be 2:1");
        });
    }

    /// The same workflow over the Hilbert curve produces the same
    /// balanced mesh whenever the refine/coarsen selectors are
    /// curve-independent (keyed on coordinates, not curve position).
    #[test]
    fn curves_agree_on_geometric_workflows(
        seed in any::<u64>(),
    ) {
        fn geometric<Q: Quadrant>(seed: u64) -> Vec<(u32, [i32; 3], u8)> {
            let results = quadforest_comm::run(2, move |comm| {
                let conn = Arc::new(Connectivity::unit(2));
                let mut f = Forest::<Q>::new_uniform(conn, &comm, 1);
                f.refine(&comm, false, |t, q| {
                    let c = q.coords();
                    mix(seed, t, (c[0] as u64) << 32 | c[1] as u64, q.level()) % 2 == 0
                });
                f.balance(&comm, BalanceKind::Face);
                f.leaves()
                    .map(|(t, q)| (t, q.coords(), q.level()))
                    .collect::<Vec<_>>()
            });
            let mut all: Vec<_> = results.into_iter().flatten().collect();
            all.sort();
            all
        }
        prop_assert_eq!(
            geometric::<MortonQuad<2>>(seed),
            geometric::<HilbertQuad>(seed)
        );
    }
}
