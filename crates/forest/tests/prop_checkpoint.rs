//! Deserialization hardening: arbitrary corruption of a portable
//! forest stream must surface as a typed `Err` — never a panic, never
//! a silently wrong forest — and checkpoints must round-trip across
//! every quadrant representation and rank count, including
//! `P_save != P_load` (repartition-on-load).

use proptest::prelude::*;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{AvxQuad, MortonQuad, Quadrant, StandardQuad};
use quadforest_forest::{BalanceKind, Forest, IoError, PortableForest};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qf-propck-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A representative serialized forest, built once per test process.
fn reference_stream() -> &'static [u8] {
    static STREAM: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    STREAM.get_or_init(build_reference_stream)
}

fn build_reference_stream() -> Vec<u8> {
    let streams = quadforest_comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::brick2d(2, 1, false, false));
        let mut f = Forest::<StandardQuad<2>>::new_uniform(conn, &comm, 2);
        let c = [0, 0, 0];
        f.refine(&comm, true, |t, q| {
            t == 0 && q.level() < 4 && q.contains_point(c)
        });
        f.balance(&comm, BalanceKind::Face);
        f.to_portable().to_bytes().to_vec()
    });
    streams.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip anywhere in the stream is rejected (the CRC
    /// guard leaves no blind spots), with a typed error.
    #[test]
    fn bit_flips_always_return_err(
        byte_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let stream = reference_stream();
        let idx = (byte_seed % stream.len() as u64) as usize;
        let mut bad = stream.to_vec();
        bad[idx] ^= 1 << bit;
        let result = PortableForest::from_bytes(&bad);
        prop_assert!(result.is_err(), "flip at byte {idx} bit {bit} was accepted");
    }

    /// Any truncation is rejected, never a panic or partial load.
    #[test]
    fn truncations_always_return_err(cut_seed in any::<u64>()) {
        let stream = reference_stream();
        let keep = (cut_seed % stream.len() as u64) as usize;
        let result = PortableForest::from_bytes(&stream[..keep]);
        prop_assert!(result.is_err(), "truncation to {keep} bytes was accepted");
    }

    /// Completely arbitrary byte soup never panics; anything the parser
    /// accepts must at least carry the magic prefix (i.e. garbage is
    /// not mis-loaded as a forest).
    #[test]
    fn arbitrary_bytes_never_panic(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        if PortableForest::from_bytes(&data).is_ok() {
            prop_assert!(data.len() >= 4 && &data[..4] == b"QFOR");
        }
    }

    /// Splicing random garbage into the middle of a valid stream (a
    /// torn-write shape: prefix valid, middle trashed) is rejected.
    #[test]
    fn spliced_garbage_is_rejected(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
        at_seed in any::<u64>(),
    ) {
        let stream = reference_stream();
        let at = (at_seed % stream.len() as u64) as usize;
        let mut bad = stream[..at].to_vec();
        bad.extend_from_slice(&garbage);
        bad.extend_from_slice(&stream[at..]);
        let result = PortableForest::from_bytes(&bad);
        prop_assert!(result.is_err(), "splice of {} bytes at {at} accepted", garbage.len());
    }
}

/// The cross-representation × cross-rank-count checkpoint matrix:
/// save from Standard/Morton/AVX at P = 2, load into each of the three
/// at P ∈ {1, 2, 4} — nine target combinations per source — and the
/// global leaf set (position-independent checksum + global count) must
/// come back identical every time, including the repartition-on-load
/// paths where P_load ≠ P_save.
#[test]
fn cross_representation_checkpoint_matrix() {
    fn save<Q: Quadrant>(dir: &PathBuf) -> (u64, u64) {
        let out = quadforest_comm::run(2, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<Q>::new_uniform(conn, &comm, 1);
            let c = [0, 0, 0];
            f.refine(&comm, true, |_, q| q.level() < 4 && q.contains_point(c));
            f.balance(&comm, BalanceKind::Face);
            f.save_checkpoint(&comm, dir).unwrap();
            (f.checksum(&comm), f.global_count())
        });
        out[0]
    }

    fn load<Q: Quadrant>(dir: &PathBuf, p: usize) -> (u64, u64) {
        let out = quadforest_comm::run(p, |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let (f, _) = Forest::<Q>::load_checkpoint(conn, &comm, dir).unwrap();
            f.validate().unwrap();
            // exercise the restored forest, not just its shape: a
            // partition round-trip must preserve the leaf set
            let mut f = f;
            f.partition(&comm);
            f.validate().unwrap();
            (f.checksum(&comm), f.global_count())
        });
        for w in out.windows(2) {
            assert_eq!(w[0], w[1], "checksum must agree on every rank");
        }
        out[0]
    }

    let savers: [(&str, fn(&PathBuf) -> (u64, u64)); 3] = [
        ("standard", save::<StandardQuad<2>>),
        ("morton", save::<MortonQuad<2>>),
        ("avx", save::<AvxQuad<2>>),
    ];
    let loaders: [(&str, fn(&PathBuf, usize) -> (u64, u64)); 3] = [
        ("standard", load::<StandardQuad<2>>),
        ("morton", load::<MortonQuad<2>>),
        ("avx", load::<AvxQuad<2>>),
    ];
    for (src_name, save_fn) in savers {
        let dir = scratch_dir(src_name);
        let expected = save_fn(&dir);
        for (dst_name, load_fn) in loaders {
            for p in [1usize, 2, 4] {
                let got = load_fn(&dir, p);
                assert_eq!(
                    got, expected,
                    "{src_name} (P_save=2) -> {dst_name} (P_load={p}) changed the forest"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Loading a 2D checkpoint into a 3D representation (or over the wrong
/// connectivity) is a typed context error on every rank.
#[test]
fn checkpoint_context_mismatches_are_typed() {
    let dir = scratch_dir("ctx");
    quadforest_comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
        f.save_checkpoint(&comm, &dir).unwrap();
    });
    let errs = quadforest_comm::run(2, |comm| {
        let conn3 = Arc::new(Connectivity::unit(3));
        let dim_err = Forest::<MortonQuad<3>>::load_checkpoint(conn3, &comm, &dir).unwrap_err();
        let conn_brick = Arc::new(Connectivity::brick2d(3, 2, false, false));
        let tree_err =
            Forest::<MortonQuad<2>>::load_checkpoint(conn_brick, &comm, &dir).unwrap_err();
        (dim_err, tree_err)
    });
    for (dim_err, tree_err) in errs {
        assert!(matches!(dim_err, IoError::DimensionMismatch { .. }));
        assert!(matches!(tree_err, IoError::TreeCountMismatch { .. }));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
