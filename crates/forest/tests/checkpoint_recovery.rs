//! End-to-end chaos recovery: a rank dies mid-pipeline, the recovery
//! supervisor rebuilds the world, restores the last good checkpoint,
//! replays the remaining phases, and converges to a forest that is
//! leaf-identical to the fault-free run.
//!
//! The headline test does not hand-pick a single kill point: it scans
//! EVERY communication-operation index of the victim rank until the
//! scheduled panic falls off the end of the program, so recovery is
//! proven for deaths during save, refine, balance, partition, and
//! ghost alike — and asserts that the scan actually covered a
//! mid-balance death, the scenario named in the acceptance criteria.

use quadforest_comm::{
    run, run_with_recovery, Attempt, Comm, FaultPlan, RecoveryOptions, RecoveryPolicy,
};
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant};
use quadforest_forest::{BalanceKind, Forest, IoError};
use quadforest_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh scratch directory unique to this process + call site.
fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qf-ckpt-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Rank-independent refine selector (callbacks must not depend on the
/// rank, as in MPI practice).
fn mix(seed: u64, t: u32, q_pos: u64, level: u8) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in [t as u64, q_pos, level as u64] {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    h
}

type RankView = (
    Vec<(u32, u64)>,
    Vec<(u32, [i32; 3], u8)>,
    u64, // ghost layer size
    u64, // collective checksum
);

/// The checkpointed AMR program. First attempt: build, refine, save a
/// checkpoint, then run the expensive phases. Retry: restore from the
/// newest valid generation (falling back to a fresh start if no
/// checkpoint committed before the death) and replay from there.
fn program(comm: &Comm, attempt: Attempt, dir: &Path, seed: u64) -> RankView {
    let conn = Arc::new(Connectivity::unit(2));
    let restored = if attempt.is_retry() {
        Forest::<MortonQuad<2>>::load_checkpoint(conn.clone(), comm, dir).ok()
    } else {
        None
    };
    let mut f = match restored {
        Some((f, _generation)) => f,
        None => {
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, comm, 1);
            f.refine(comm, false, |t, q| {
                q.level() < 5 && mix(seed, t, q.morton_abs(), q.level()) % 3 == 0
            });
            f.save_checkpoint(comm, dir).expect("checkpoint save");
            f
        }
    };
    f.refine(comm, false, |t, q| {
        q.level() < 5 && mix(seed ^ 0xABCD, t, q.morton_abs(), q.level()) % 4 == 0
    });
    f.balance(comm, BalanceKind::Face);
    f.partition(comm);
    let ghost = f.ghost(comm, BalanceKind::Face);
    f.validate().expect("invariants must hold");
    (
        f.markers().to_vec(),
        f.leaves()
            .map(|(t, q)| (t, q.coords(), q.level()))
            .collect(),
        ghost.ghosts.len() as u64,
        f.checksum(comm),
    )
}

/// Kill the victim rank at every single comm-op index until the
/// scheduled panic falls past the end of the program; each death must
/// recover to the fault-free result. Returns the set of phases the
/// deaths landed in.
fn scan_kill_points(p: usize, victim: usize, seed: u64) -> Vec<String> {
    let baseline_dir = scratch_dir("baseline");
    let baseline = run(p, |c| {
        program(&c, Attempt { index: 0 }, &baseline_dir, seed)
    });
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let mut phases_hit = Vec::new();
    let mut op = 0u64;
    loop {
        let dir = scratch_dir("scan");
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_micros(200),
                ..RecoveryPolicy::default()
            },
            plans: vec![Some(FaultPlan::new(seed).with_panic_at(victim, op))],
            ..RecoveryOptions::default()
        };
        let outcome = run_with_recovery(p, opts, |comm, attempt| {
            // arm the per-rank recorder so the abort report names the
            // phase the victim died in
            telemetry::begin_rank(comm.rank());
            let view = program(&comm, attempt, &dir, seed);
            let _ = telemetry::finish_rank();
            Ok(view)
        })
        .unwrap_or_else(|e| panic!("P={p} kill at op {op} did not recover: {e}"));
        let _ = std::fs::remove_dir_all(&dir);
        if outcome.attempts == 1 {
            // the panic index is past the victim's op count: the whole
            // program has been scanned
            assert!(op > 10, "suspiciously few ops scanned (op = {op})");
            break;
        }
        assert_eq!(outcome.failures.len(), 1);
        let failure = &outcome.failures[0];
        assert_eq!(failure.origin, victim, "P={p} op={op}");
        assert!(failure.origin_panicked(), "P={p} op={op}");
        if let Some(phase) = failure
            .reason
            .split("in phase '")
            .nth(1)
            .and_then(|s| s.split('\'').next())
        {
            phases_hit.push(phase.to_string());
        }
        assert_eq!(
            outcome.values, baseline,
            "P={p}: death at op {op} did not converge to the fault-free forest"
        );
        op += 1;
        assert!(op < 512, "kill-point scan did not terminate");
    }
    phases_hit
}

#[test]
fn every_kill_point_recovers_to_the_fault_free_forest_p2() {
    let phases = scan_kill_points(2, 1, 0x5EED);
    assert!(
        phases.iter().any(|p| p == "balance"),
        "scan never killed mid-balance: {phases:?}"
    );
}

#[test]
fn every_kill_point_recovers_to_the_fault_free_forest_p4() {
    let phases = scan_kill_points(4, 3, 0x5EED);
    assert!(
        phases.iter().any(|p| p == "balance"),
        "scan never killed mid-balance: {phases:?}"
    );
}

/// A corrupted (bit-flipped) shard in the newest generation is caught
/// by CRC verification and restore falls back to the previous
/// generation; with every generation corrupted, the load reports a
/// typed error instead of resurrecting garbage.
#[test]
fn corrupt_shard_falls_back_to_previous_generation() {
    let dir = scratch_dir("fallback");
    let saved = run(2, {
        let dir = dir.clone();
        move |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 2);
            f.refine(&comm, false, |t, q| {
                q.level() < 4 && mix(7, t, q.morton_abs(), q.level()) % 3 == 0
            });
            let gen1 = f.save_checkpoint(&comm, &dir).unwrap();
            let checksum1 = f.checksum(&comm);
            f.refine(&comm, false, |t, q| {
                q.level() < 4 && mix(8, t, q.morton_abs(), q.level()) % 4 == 0
            });
            f.balance(&comm, BalanceKind::Face);
            let gen2 = f.save_checkpoint(&comm, &dir).unwrap();
            (gen1, checksum1, gen2)
        }
    });
    let (gen1, checksum1, gen2) = saved[0];
    assert_eq!((gen1, gen2), (1, 2));

    // flip one bit in a shard of the newest generation
    let victim_file = dir.join("gen-00000002").join("shard-00001.qfs");
    let mut bytes = std::fs::read(&victim_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim_file, &bytes).unwrap();

    let restored = run(2, {
        let dir = dir.clone();
        move |comm| {
            telemetry::begin_rank(comm.rank());
            let conn = Arc::new(Connectivity::unit(2));
            let (f, generation) =
                Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).unwrap();
            let checksum = f.checksum(&comm);
            let report = telemetry::finish_rank().unwrap();
            (generation, checksum, report)
        }
    });
    for (generation, checksum, report) in &restored {
        assert_eq!(*generation, gen1, "must fall back past the corrupt gen 2");
        assert_eq!(*checksum, checksum1, "gen 1 forest must come back intact");
        assert!(
            report.spans.iter().any(|s| s.name == "restore"),
            "rank {} missing 'restore' span",
            report.rank
        );
    }
    // rank 0 does the generation vetting and counts the fallback
    use quadforest_telemetry::MetricKind;
    let fallbacks = restored[0]
        .2
        .metrics
        .get("forest.checkpoint.fallbacks", MetricKind::Counter)
        .map(|e| e.scalar())
        .unwrap_or(0);
    assert!(fallbacks >= 1, "fallback must be counted on rank 0");

    // now truncate gen 1's manifest too: nothing valid remains
    let manifest1 = dir.join("gen-00000001").join("manifest.qfm");
    let mbytes = std::fs::read(&manifest1).unwrap();
    std::fs::write(&manifest1, &mbytes[..mbytes.len() / 2]).unwrap();
    let errors = run(2, {
        let dir = dir.clone();
        move |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).err()
        }
    });
    for e in &errors {
        assert!(e.is_some(), "all-corrupt directory must fail the load");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty or missing checkpoint directory is a typed `NoCheckpoint`,
/// not a panic or a hang.
#[test]
fn missing_directory_is_a_typed_error() {
    let dir = scratch_dir("missing");
    let errors = run(2, {
        let dir = dir.clone();
        move |comm| {
            let conn = Arc::new(Connectivity::unit(2));
            Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).unwrap_err()
        }
    });
    for e in &errors {
        assert!(
            matches!(e, IoError::NoCheckpoint { .. }),
            "expected NoCheckpoint, got {e:?}"
        );
    }
}

/// Checkpoint and restore record spans, byte and latency histograms,
/// and land in the Chrome trace export — the observability half of the
/// acceptance criteria.
#[test]
fn checkpoint_and_restore_are_instrumented() {
    let dir = scratch_dir("telemetry");
    let reports = run(2, {
        let dir = dir.clone();
        move |comm| {
            telemetry::begin_rank(comm.rank());
            let conn = Arc::new(Connectivity::unit(2));
            let mut f = Forest::<MortonQuad<2>>::new_uniform(conn.clone(), &comm, 2);
            f.refine(&comm, false, |t, q| {
                q.level() < 4 && mix(3, t, q.morton_abs(), q.level()) % 3 == 0
            });
            f.save_checkpoint(&comm, &dir).unwrap();
            let (g, _) = Forest::<MortonQuad<2>>::load_checkpoint(conn, &comm, &dir).unwrap();
            assert_eq!(g.checksum(&comm), f.checksum(&comm));
            telemetry::finish_rank().unwrap()
        }
    });
    use quadforest_telemetry::MetricKind;
    for rep in &reports {
        for span in ["checkpoint", "restore"] {
            assert!(
                rep.spans.iter().any(|s| s.name == span),
                "rank {} missing '{span}' span",
                rep.rank
            );
        }
        for (name, kind) in [
            ("forest.checkpoint.bytes", MetricKind::Histogram),
            ("forest.checkpoint.write_ns", MetricKind::Histogram),
            ("forest.restore.ns", MetricKind::Histogram),
            ("forest.checkpoint.saves", MetricKind::Counter),
            ("forest.checkpoint.restores", MetricKind::Counter),
        ] {
            assert!(
                rep.metrics.get(name, kind).is_some(),
                "rank {} missing metric {name}",
                rep.rank
            );
        }
    }
    let trace = telemetry::chrome_trace(&reports);
    assert!(trace.contains("\"checkpoint\""));
    assert!(trace.contains("\"restore\""));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery supervisor activity shows up in the process-global metrics
/// registry (it outlives every rank thread, so it cannot use the
/// per-rank recorders).
#[test]
fn recovery_attempts_are_counted_globally() {
    let dir = scratch_dir("counters");
    let before = telemetry::global()
        .snapshot()
        .get(
            "recovery.retries",
            quadforest_telemetry::MetricKind::Counter,
        )
        .map(|e| e.scalar())
        .unwrap_or(0);
    let opts = RecoveryOptions {
        policy: RecoveryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(100),
            ..RecoveryPolicy::default()
        },
        plans: vec![Some(FaultPlan::new(9).with_panic_at(0, 4))],
        ..RecoveryOptions::default()
    };
    run_with_recovery(2, opts, |comm, attempt| {
        Ok(program(&comm, attempt, &dir, 0xFACE))
    })
    .unwrap();
    let after = telemetry::global()
        .snapshot()
        .get(
            "recovery.retries",
            quadforest_telemetry::MetricKind::Counter,
        )
        .map(|e| e.scalar())
        .unwrap_or(0);
    assert!(
        after > before,
        "retry must be counted in the global registry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Phase guards: with `set_phase_guards(true)` every pipeline phase
/// validates its result and counts the check.
#[test]
fn phase_guards_validate_every_phase() {
    quadforest_forest::set_phase_guards(true);
    let reports = run(2, |comm| {
        telemetry::begin_rank(comm.rank());
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<MortonQuad<2>>::new_uniform(conn, &comm, 1);
        f.refine(&comm, false, |t, q| {
            q.level() < 4 && mix(11, t, q.morton_abs(), q.level()) % 3 == 0
        });
        f.balance(&comm, BalanceKind::Face);
        f.partition(&comm);
        let _g = f.ghost(&comm, BalanceKind::Face);
        telemetry::finish_rank().unwrap()
    });
    quadforest_forest::set_phase_guards(false);
    use quadforest_telemetry::MetricKind;
    for rep in &reports {
        let checks = rep
            .metrics
            .get("forest.guard.checks", MetricKind::Counter)
            .map(|e| e.scalar())
            .unwrap_or(0);
        assert!(
            checks >= 4,
            "rank {}: expected guards on refine/balance/partition/ghost, saw {checks}",
            rep.rank
        );
    }
}
