//! Property tests for the conservative patch mapper: the refine→coarsen
//! round trip must be the bit-exact identity, and arbitrary adapt
//! sequences must preserve every patch integral.

use proptest::prelude::*;
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant};
use quadforest_forest::{BalanceKind, DataMapper, Forest, LeafData};
use quadforest_pde::{Patch, PatchMapper, PATCH_CELLS};
use std::sync::Arc;

type Q = MortonQuad<2>;

fn patch_strategy() -> impl Strategy<Value = Patch> {
    // the vendored proptest generates integer ranges; scale to floats
    proptest::collection::vec(-1_000_000_000i64..1_000_000_000, PATCH_CELLS).prop_map(|v| {
        let mut p = Patch::zero();
        for (c, x) in p.cells.iter_mut().zip(v) {
            *c = x as f64 / 997.0;
        }
        p
    })
}

proptest! {
    /// Refining a patch into any complete family and coarsening back
    /// returns the original patch bit-for-bit: the averaging
    /// `((a+b)+(c+d))·0.25` of four equal values is exact.
    #[test]
    fn refine_then_coarsen_is_identity(value in patch_strategy(), cid in 0u32..4) {
        let parent = Q::root().child(cid);
        let kids: Vec<Patch> = (0..4)
            .map(|c| DataMapper::<Q, Patch>::refine(
                &PatchMapper, 0, &parent, &value, &parent.child(c), c))
            .collect();
        let back = DataMapper::<Q, Patch>::coarsen(&PatchMapper, 0, &parent, &kids);
        prop_assert_eq!(back, value);
    }

    /// Refine conserves the integral exactly in exact arithmetic; with
    /// floats the children's sums recombine to the parent sum within a
    /// few ulps.
    #[test]
    fn refine_splits_sum_exactly(value in patch_strategy()) {
        let parent = Q::root();
        let kid_sum: f64 = (0..4)
            .map(|c| DataMapper::<Q, Patch>::refine(
                &PatchMapper, 0, &parent, &value, &parent.child(c), c).sum())
            .sum();
        // children cover the parent at half the cell size: 4 children
        // x N^2 cells at 1/4 the area each = the parent integral
        let scale = value.sum().abs().max(1.0);
        prop_assert!((kid_sum / 4.0 - value.sum()).abs() <= 1e-12 * scale);
    }
}

/// A full mesh-level round trip: refine everything one level and
/// coarsen it back; every leaf's patch must come back bit-identical.
#[test]
fn mesh_refine_coarsen_round_trips_bitwise() {
    quadforest_comm::run(1, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Q>::new_uniform(conn, &comm, 2);
        let mut data = LeafData::init(&f, |_, q| {
            let mut p = Patch::zero();
            for (i, c) in p.cells.iter_mut().enumerate() {
                *c = (q.morton_abs() as f64 + 1.0) * (i as f64 + 0.5) / 7.0;
            }
            p
        });
        let orig: Vec<Patch> = data.iter().copied().collect();
        f.refine_mapped(&comm, false, |_, _| true, &mut data, &PatchMapper);
        f.coarsen_mapped(&comm, false, |_, _| true, &mut data, &PatchMapper);
        assert_eq!(f.local_count(), orig.len());
        for (a, b) in data.iter().zip(orig.iter()) {
            assert_eq!(a, b, "patch must round-trip bit-identically");
        }
    });
}

/// Patch sums survive a mixed adapt sequence (selective refine, balance,
/// selective coarsen) to machine precision, in parallel.
#[test]
fn adapt_sequence_preserves_total_sum() {
    quadforest_comm::run(2, |comm| {
        let conn = Arc::new(Connectivity::unit(2));
        let mut f = Forest::<Q>::new_uniform(conn, &comm, 2);
        let mut data = LeafData::init(&f, |_, q| {
            Patch::constant(1.0 + (q.morton_abs() % 13) as f64)
        });
        // weighted total: patch sums scaled by leaf area are the mass
        let total = |f: &Forest<Q>, d: &LeafData<Patch>| -> f64 {
            let local: f64 = f
                .leaves()
                .zip(d.iter())
                .map(|((_, q), p)| {
                    let h = q.side() as f64 / Q::len_at(0) as f64;
                    p.mass(h)
                })
                .sum();
            comm.allreduce(local, |a, b| a + b)
        };
        let before = total(&f, &data);
        f.refine_mapped(
            &comm,
            true,
            |_, q| q.level() < 5 && q.morton_abs() % 7 == 0,
            &mut data,
            &PatchMapper,
        );
        f.balance_mapped(&comm, BalanceKind::Face, &mut data, &PatchMapper);
        f.coarsen_mapped(
            &comm,
            false,
            |_, fam| fam[0].level() > 2,
            &mut data,
            &PatchMapper,
        );
        data.check_aligned(&f, "test");
        let after = total(&f, &data);
        let drift = (after - before).abs() / before.abs();
        assert!(drift < 1e-13, "drift {drift:e}");
    });
}
