//! Chaos recovery for the data-bearing solver: a rank dies mid-loop
//! (during stepping, adaptation, migration, halo exchange, or the
//! checkpoint itself), the recovery supervisor rebuilds the world, the
//! survivors restore the newest mesh+payload checkpoint, replay the
//! remaining steps, and converge to a state that is leaf- AND
//! payload-identical (bit-for-bit) to the fault-free run.

use quadforest_comm::{
    run, run_with_recovery, Attempt, Comm, FaultPlan, RecoveryOptions, RecoveryPolicy,
};
use quadforest_connectivity::Connectivity;
use quadforest_core::quadrant::{MortonQuad, Quadrant};
use quadforest_pde::{gaussian_blob, AdaptThresholds, AdvectionSim};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Q = MortonQuad<2>;

const BASE_LEVEL: u8 = 2;
const MAX_LEVEL: u8 = 3;
const STEPS: u64 = 6;
const ADAPT_EVERY: u64 = 2;
const SAVE_EVERY: u64 = 2;

fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qf-pde-chaos-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type RankView = (
    u64,                      // global leaf count
    Vec<(u32, [i32; 3], u8)>, // this rank's leaves (post final partition)
    u64,                      // global mesh+payload digest
);

/// The checkpointed advection program. First attempt: build the initial
/// condition and run the loop, checkpointing mesh+patches every
/// `SAVE_EVERY` steps. Retry: restore the newest generation (mesh AND
/// payload, bit-identical) and replay only the remaining steps.
fn program(comm: &Comm, attempt: Attempt, dir: &Path) -> RankView {
    let conn = Arc::new(Connectivity::periodic(2));
    let restored = if attempt.is_retry() {
        AdvectionSim::<Q>::restore(conn.clone(), comm, dir, [1.0, 0.5], BASE_LEVEL, MAX_LEVEL).ok()
    } else {
        None
    };
    let mut sim = restored.unwrap_or_else(|| {
        AdvectionSim::<Q>::new(conn, comm, BASE_LEVEL, MAX_LEVEL, [1.0, 0.5], gaussian_blob)
    });
    while sim.steps_taken < STEPS {
        let dt = sim.cfl_dt(comm, 0.45);
        sim.step(comm, dt);
        let s = sim.steps_taken;
        if s.is_multiple_of(ADAPT_EVERY) {
            sim.adapt(comm, AdaptThresholds::default());
            sim.migrate(comm);
        }
        if s.is_multiple_of(SAVE_EVERY) {
            sim.checkpoint(comm, dir).expect("checkpoint save");
        }
    }
    // canonical final partition so per-rank leaf lists are comparable
    sim.migrate(comm);
    (
        sim.forest.global_count(),
        sim.forest
            .leaves()
            .map(|(t, q)| (t, q.coords(), q.level()))
            .collect(),
        sim.state_digest(comm),
    )
}

/// Kill the victim at comm-op indices stepping through the whole
/// program; every death must recover to the bit-identical fault-free
/// state. Stops once a probe's scheduled panic falls past the end of
/// the program.
fn scan_kill_points(p: usize, victim: usize, stride: u64) {
    let baseline_dir = scratch_dir("baseline");
    let baseline = run(p, {
        let d = baseline_dir.clone();
        move |c| program(&c, Attempt { index: 0 }, &d)
    });
    let _ = std::fs::remove_dir_all(&baseline_dir);

    let mut op = 1u64;
    let mut deaths = 0u64;
    loop {
        let dir = scratch_dir("scan");
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_micros(200),
                ..RecoveryPolicy::default()
            },
            plans: vec![Some(FaultPlan::new(0x5EED).with_panic_at(victim, op))],
            ..RecoveryOptions::default()
        };
        let outcome = run_with_recovery(p, opts, {
            let dir = dir.clone();
            move |comm, attempt| Ok(program(&comm, attempt, &dir))
        })
        .unwrap_or_else(|e| panic!("P={p} kill at op {op} did not recover: {e}"));
        let _ = std::fs::remove_dir_all(&dir);
        if outcome.attempts == 1 {
            // the panic index is past the victim's op count
            break;
        }
        deaths += 1;
        assert_eq!(outcome.failures.len(), 1, "P={p} op={op}");
        assert_eq!(outcome.failures[0].origin, victim, "P={p} op={op}");
        assert_eq!(
            outcome.values, baseline,
            "P={p}: death at op {op} did not converge to the fault-free state"
        );
        op += stride;
        assert!(op < 4096, "kill-point scan did not terminate");
    }
    assert!(
        deaths >= 5,
        "suspiciously few kill points exercised ({deaths})"
    );
}

#[test]
fn every_kill_point_recovers_bit_identically_p2() {
    scan_kill_points(2, 1, 5);
}

#[test]
fn every_kill_point_recovers_bit_identically_p4() {
    scan_kill_points(4, 3, 9);
}

/// Direct check of the resume path without faults: run halfway, restore
/// on fresh ranks, replay, and compare against the straight-through run.
#[test]
fn restore_and_replay_matches_straight_run() {
    let dir = scratch_dir("resume");
    let straight = run(2, {
        let d = scratch_dir("straight");
        move |c| program(&c, Attempt { index: 0 }, &d)
    });
    // run the first half, checkpointing as we go
    run(2, {
        let dir = dir.clone();
        move |comm| {
            let conn = Arc::new(Connectivity::periodic(2));
            let mut sim = AdvectionSim::<Q>::new(
                conn,
                &comm,
                BASE_LEVEL,
                MAX_LEVEL,
                [1.0, 0.5],
                gaussian_blob,
            );
            while sim.steps_taken < SAVE_EVERY {
                let dt = sim.cfl_dt(&comm, 0.45);
                sim.step(&comm, dt);
                let s = sim.steps_taken;
                if s.is_multiple_of(ADAPT_EVERY) {
                    sim.adapt(&comm, AdaptThresholds::default());
                    sim.migrate(&comm);
                }
                if s.is_multiple_of(SAVE_EVERY) {
                    sim.checkpoint(&comm, &dir).unwrap();
                }
            }
        }
    });
    // resume from the checkpoint as a retry attempt would
    let resumed = run(2, {
        let dir = dir.clone();
        move |c| program(&c, Attempt { index: 1 }, &dir)
    });
    assert_eq!(resumed, straight, "resume must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}
