//! Fixed-size cell patches: the per-leaf payload of the patch-based
//! solvers, plus the conservative [`DataMapper`] that carries them
//! across refinement levels and the [`PatchHalo`] edge strips shipped
//! through ghost exchange.

use quadforest_connectivity::TreeId;
use quadforest_core::quadrant::Quadrant;
use quadforest_core::wire::{Wire, WireError, WireReader};
use quadforest_forest::DataMapper;

/// Cells per patch side. Every leaf carries an `N × N` uniform patch
/// regardless of its refinement level, so refining a leaf doubles the
/// local resolution — the ForestClaw model.
pub const PATCH_N: usize = 8;
/// Cells per patch (`PATCH_N²`).
pub const PATCH_CELLS: usize = PATCH_N * PATCH_N;
/// Serialized size of one [`Patch`] in bytes (its `Wire` encoding).
pub const PATCH_WIRE_BYTES: usize = PATCH_CELLS * 8;
/// Serialized size of one [`PatchHalo`] in bytes.
pub const HALO_WIRE_BYTES: usize = 4 * PATCH_N * 8;

/// An `N × N` patch of cell-averaged values covering one leaf. Cell
/// `(i, j)` covers `[i·h/N, (i+1)·h/N) × [j·h/N, (j+1)·h/N)` of the
/// leaf's domain (`i` along x, `j` along y), stored row-major in `j`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Patch {
    /// Cell values, index `j * PATCH_N + i`.
    pub cells: [f64; PATCH_CELLS],
}

impl Patch {
    /// A patch holding `v` in every cell.
    pub fn constant(v: f64) -> Self {
        Patch {
            cells: [v; PATCH_CELLS],
        }
    }

    /// A zero patch.
    pub fn zero() -> Self {
        Self::constant(0.0)
    }

    /// Flat index of cell `(i, j)`.
    #[inline]
    pub fn idx(i: usize, j: usize) -> usize {
        debug_assert!(i < PATCH_N && j < PATCH_N);
        j * PATCH_N + i
    }

    /// Value of cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.cells[Self::idx(i, j)]
    }

    /// Set cell `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.cells[Self::idx(i, j)] = v;
    }

    /// Sum of all cell values (mass in units of one cell area).
    pub fn sum(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Largest absolute cell value.
    pub fn max_abs(&self) -> f64 {
        self.cells.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Integral of the patch over a leaf of physical side `h`:
    /// `Σ cells · (h/N)²`.
    pub fn mass(&self, h: f64) -> f64 {
        let cell_area = (h / PATCH_N as f64) * (h / PATCH_N as f64);
        self.sum() * cell_area
    }

    /// The four one-cell-deep edge strips, indexed by face
    /// (0 = −x, 1 = +x, 2 = −y, 3 = +y); strip entries run along the
    /// tangential axis.
    pub fn halo(&self) -> PatchHalo {
        let n = PATCH_N;
        PatchHalo {
            edges: [
                std::array::from_fn(|s| self.get(0, s)),
                std::array::from_fn(|s| self.get(n - 1, s)),
                std::array::from_fn(|s| self.get(s, 0)),
                std::array::from_fn(|s| self.get(s, n - 1)),
            ],
        }
    }
}

impl Wire for Patch {
    fn encode(&self, out: &mut Vec<u8>) {
        for c in &self.cells {
            c.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut cells = [0.0f64; PATCH_CELLS];
        for c in cells.iter_mut() {
            *c = f64::decode(r)?;
        }
        Ok(Patch { cells })
    }
}

/// The boundary data one leaf exposes to its neighbors: the patch's
/// four edge strips. Shipped per ghost leaf through
/// [`GhostLayer::exchange_data`](quadforest_forest::GhostLayer::exchange_data),
/// so a rank can compute upwind fluxes against remote patches without
/// shipping whole patches.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PatchHalo {
    /// Edge strips indexed by face (0 = −x, 1 = +x, 2 = −y, 3 = +y);
    /// entries run along the tangential axis.
    pub edges: [[f64; PATCH_N]; 4],
}

impl Wire for PatchHalo {
    fn encode(&self, out: &mut Vec<u8>) {
        for e in &self.edges {
            for v in e {
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut edges = [[0.0f64; PATCH_N]; 4];
        for e in edges.iter_mut() {
            for v in e.iter_mut() {
                *v = f64::decode(r)?;
            }
        }
        Ok(PatchHalo { edges })
    }
}

/// The conservative patch mapper: piecewise-constant injection on
/// refine (each child cell inherits the parent cell covering it),
/// 2×2 averaging on coarsen (each parent cell is the mean of the four
/// child cells it covers).
///
/// The round trip is **bit-exact**: refine spreads one parent cell
/// value over a 2×2 child block, and the coarsen average
/// `((a+b)+(c+d))·0.25` of four equal values reproduces the value
/// exactly (all intermediate operations scale by powers of two). Patch
/// integrals are therefore conserved to machine precision across any
/// refine/coarsen/balance sequence — the conservation proptests pin
/// this.
pub struct PatchMapper;

impl<Q: Quadrant> DataMapper<Q, Patch> for PatchMapper {
    fn refine(&self, _tree: TreeId, parent: &Q, value: &Patch, child: &Q, _child_id: u32) -> Patch {
        debug_assert_eq!(Q::DIM, 2, "patch payloads are 2D");
        let (pc, cc) = (parent.coords(), child.coords());
        let ox = usize::from(cc[0] != pc[0]) * PATCH_N;
        let oy = usize::from(cc[1] != pc[1]) * PATCH_N;
        let mut out = Patch::zero();
        for j in 0..PATCH_N {
            for i in 0..PATCH_N {
                out.set(i, j, value.get((ox + i) / 2, (oy + j) / 2));
            }
        }
        out
    }

    fn coarsen(&self, _tree: TreeId, _parent: &Q, values: &[Patch]) -> Patch {
        debug_assert_eq!(values.len(), Q::NUM_CHILDREN as usize);
        let mut out = Patch::zero();
        let half = PATCH_N / 2;
        for j in 0..PATCH_N {
            for i in 0..PATCH_N {
                // which child covers parent cell (i, j), and where
                let (ox, oy) = (usize::from(i >= half), usize::from(j >= half));
                let child = &values[oy * 2 + ox];
                let (ci, cj) = (2 * i - ox * PATCH_N, 2 * j - oy * PATCH_N);
                let a = child.get(ci, cj) + child.get(ci + 1, cj);
                let b = child.get(ci, cj + 1) + child.get(ci + 1, cj + 1);
                out.set(i, j, (a + b) * 0.25);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::StandardQuad;

    type Q2 = StandardQuad<2>;

    fn sample_patch(seed: u64) -> Patch {
        let mut p = Patch::zero();
        let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for c in p.cells.iter_mut() {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            *c = (h % 1000) as f64 / 997.0;
        }
        p
    }

    #[test]
    fn refine_then_coarsen_is_bit_identical() {
        let parent = Q2::root().child(1);
        let value = sample_patch(42);
        let kids: Vec<Patch> = (0..4)
            .map(|c| {
                DataMapper::<Q2, Patch>::refine(
                    &PatchMapper,
                    0,
                    &parent,
                    &value,
                    &parent.child(c),
                    c,
                )
            })
            .collect();
        let back = DataMapper::<Q2, Patch>::coarsen(&PatchMapper, 0, &parent, &kids);
        assert_eq!(back, value, "refine→coarsen must be the exact identity");
    }

    #[test]
    fn refine_conserves_integral() {
        let parent = Q2::root();
        let value = sample_patch(7);
        let h = 1.0;
        let total: f64 = (0..4)
            .map(|c| {
                DataMapper::<Q2, Patch>::refine(
                    &PatchMapper,
                    0,
                    &parent,
                    &value,
                    &parent.child(c),
                    c,
                )
                .mass(h / 2.0)
            })
            .sum();
        assert!((total - value.mass(h)).abs() < 1e-14);
    }

    #[test]
    fn wire_roundtrip() {
        let p = sample_patch(3);
        let bytes = p.to_wire();
        assert_eq!(bytes.len(), PATCH_WIRE_BYTES);
        assert_eq!(Patch::from_wire(&bytes).unwrap(), p);
        let halo = p.halo();
        let hb = halo.to_wire();
        assert_eq!(hb.len(), HALO_WIRE_BYTES);
        assert_eq!(PatchHalo::from_wire(&hb).unwrap(), halo);
    }

    #[test]
    fn halo_edges_match_patch() {
        let p = sample_patch(11);
        let h = p.halo();
        for s in 0..PATCH_N {
            assert_eq!(h.edges[0][s], p.get(0, s));
            assert_eq!(h.edges[1][s], p.get(PATCH_N - 1, s));
            assert_eq!(h.edges[2][s], p.get(s, 0));
            assert_eq!(h.edges[3][s], p.get(s, PATCH_N - 1));
        }
    }
}
