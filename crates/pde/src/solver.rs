//! Patch-based donor-cell advection on the data-bearing AMR forest.
//!
//! Each leaf carries an `N × N` [`Patch`] of cell averages; a constant
//! velocity field transports the solution with first-order upwind
//! (donor-cell) fluxes. Fluxes inside a patch are plain neighbor
//! differences; fluxes across leaf interfaces are computed at the finer
//! side's granularity from [`PatchHalo`] edge strips shipped through
//! ghost exchange, so hanging (2:1) faces are handled conservatively:
//! every fine face segment transfers mass equal-and-opposite between
//! the two leaves that share it.
//!
//! Cross-rank determinism: a rank updates only its *local* side of an
//! interface, but both ranks compute the shared per-segment mass
//! transfer from bitwise-identical inputs (halo strips are exact copies
//! of remote cell values), so the two half-updates are exactly
//! equal-and-opposite and global mass is conserved to machine
//! precision.
//!
//! Geometry assumption: interface flux alignment uses raw quadrant
//! coordinates along the tangential axis, which is valid for
//! connectivities whose face transforms are axis-aligned identities —
//! the unit square, fully periodic domains, and brick arrangements.
//! Rotated inter-tree transforms would need a coordinate mapping here.

use std::collections::HashMap;
use std::sync::Arc;

use quadforest_comm::Comm;
use quadforest_connectivity::{Connectivity, TreeId};
use quadforest_core::quadrant::Quadrant;
use quadforest_forest::{
    crc32, iterate_faces, BalanceKind, FaceSide, Forest, GhostLayer, Interface, IoError, LeafData,
};
use quadforest_telemetry as telemetry;

use crate::patch::{Patch, PatchHalo, PatchMapper, HALO_WIRE_BYTES, PATCH_N, PATCH_WIRE_BYTES};

/// Adaptation thresholds: refine a leaf whose patch exceeds
/// `refine_above`, coarsen a family whose patches all stay below
/// `coarsen_below`.
#[derive(Copy, Clone, Debug)]
pub struct AdaptThresholds {
    /// Refine when `max |u|` over the patch exceeds this.
    pub refine_above: f64,
    /// Coarsen when every sibling's `max |u|` stays below this.
    pub coarsen_below: f64,
}

impl Default for AdaptThresholds {
    fn default() -> Self {
        AdaptThresholds {
            refine_above: 0.2,
            coarsen_below: 0.05,
        }
    }
}

/// What one adaptation pass did on this rank.
#[derive(Copy, Clone, Debug, Default)]
pub struct AdaptReport {
    /// Leaves refined (including balance-induced refinement).
    pub refined: usize,
    /// Families merged by coarsening.
    pub coarsened: usize,
    /// Payload bytes rewritten by the data mapper.
    pub mapped_bytes: u64,
}

/// Mesh-topology caches for [`AdvectionSim::step`]: the ghost layer and
/// the leaf/ghost identity→index maps depend only on the mesh and its
/// partition, so they are rebuilt lazily on the first step after a
/// topology change instead of on every step.
struct TopologyCache<Q: Quadrant> {
    ghost: GhostLayer<Q>,
    index: HashMap<(u32, u64, u8), usize>,
    ghost_index: HashMap<(u32, u64, u8), usize>,
}

/// A 2D advection simulation: the forest, one [`Patch`] per local leaf,
/// and a constant velocity field.
///
/// `forest` and `u` are public for inspection; code that mutates the
/// mesh or partition *directly* (rather than through
/// [`AdvectionSim::adapt`] / [`AdvectionSim::migrate`]) must call
/// [`AdvectionSim::invalidate_topology`] afterwards so the next step
/// rebuilds its ghost layer against the new mesh.
pub struct AdvectionSim<Q: Quadrant> {
    /// The adaptive mesh.
    pub forest: Forest<Q>,
    /// Per-leaf solution patches, aligned with `forest.leaves()`.
    pub u: LeafData<Patch>,
    /// Constant advection velocity `(vx, vy)` in domain units per time.
    pub velocity: [f64; 2],
    /// Coarsest level adaptation may reach.
    pub base_level: u8,
    /// Finest level adaptation may reach.
    pub max_level: u8,
    /// Steps taken so far (restored from the checkpoint manifest on
    /// recovery).
    pub steps_taken: u64,
    /// Lazily rebuilt ghost layer + index maps; `None` whenever the
    /// mesh or partition may have changed since the last step.
    topo: Option<TopologyCache<Q>>,
}

impl<Q: Quadrant> AdvectionSim<Q> {
    /// Build a simulation: uniform mesh at `base_level`, recursively
    /// refined (up to `max_level`) wherever the sampled initial
    /// condition is significant, 2:1 balanced, with patches filled by
    /// sampling `init(x, y)` at cell centers (`x`, `y` in `[0, 1)` of
    /// the tree domain).
    pub fn new(
        conn: Arc<Connectivity>,
        comm: &Comm,
        base_level: u8,
        max_level: u8,
        velocity: [f64; 2],
        init: impl Fn(f64, f64) -> f64,
    ) -> Self {
        assert_eq!(Q::DIM, 2, "the advection driver is 2D");
        assert!(base_level <= max_level);
        let mut forest = Forest::<Q>::new_uniform(conn, comm, base_level);
        forest.refine(comm, true, |_, q| {
            q.level() < max_level && sample_patch::<Q>(q, &init).max_abs() > 0.1
        });
        forest.balance(comm, BalanceKind::Face);
        forest.partition(comm);
        let u = LeafData::init(&forest, |_, q| sample_patch::<Q>(q, &init));
        AdvectionSim {
            forest,
            u,
            velocity,
            base_level,
            max_level,
            steps_taken: 0,
            topo: None,
        }
    }

    /// Drop the cached ghost layer and index maps so the next
    /// [`AdvectionSim::step`] rebuilds them. Required after mutating
    /// `forest` directly; [`AdvectionSim::adapt`] and
    /// [`AdvectionSim::migrate`] call it themselves. Must be invoked on
    /// every rank or none (the rebuild is collective).
    pub fn invalidate_topology(&mut self) {
        self.topo = None;
    }

    /// Largest stable time step for the donor-cell scheme at the
    /// current (global) finest level, scaled by `cfl` (use ≤ 1; the
    /// stability bound is `dt · (|vx| + |vy|) / h_cell ≤ 1`).
    pub fn cfl_dt(&self, comm: &Comm, cfl: f64) -> f64 {
        let finest = comm.allreduce(
            self.forest
                .leaves()
                .map(|(_, q)| q.level())
                .max()
                .unwrap_or(self.base_level),
            |a, b| (*a).max(*b),
        );
        let h_cell = 1.0 / ((1u64 << finest) as f64 * PATCH_N as f64);
        let speed = self.velocity[0].abs() + self.velocity[1].abs();
        assert!(speed > 0.0, "advection needs a nonzero velocity");
        cfl * h_cell / speed
    }

    /// Physical side length of a leaf (domain units, tree = unit
    /// square).
    fn leaf_h(q: &Q) -> f64 {
        q.side() as f64 / Q::len_at(0) as f64
    }

    /// Total mass `∫ u dA` over the global domain. Collective.
    pub fn total_mass(&self, comm: &Comm) -> f64 {
        let local: f64 = self
            .forest
            .leaves()
            .zip(self.u.iter())
            .map(|((_, q), p)| p.mass(Self::leaf_h(q)))
            .sum();
        comm.allreduce(local, |a, b| a + b)
    }

    /// Largest `|u|` over the global domain. Collective.
    pub fn max_value(&self, comm: &Comm) -> f64 {
        let local = self.u.iter().fold(0.0f64, |m, p| m.max(p.max_abs()));
        comm.allreduce(local, |a, b| a.max(*b))
    }

    /// Order- and partition-independent digest of the global state
    /// (every leaf's identity and exact patch bits). Two runs agree iff
    /// their global mesh+solution states are bit-identical. Collective.
    pub fn state_digest(&self, comm: &Comm) -> u64 {
        let mut local = 0u64;
        for ((t, q), p) in self.forest.leaves().zip(self.u.iter()) {
            let mut buf = Vec::with_capacity(PATCH_WIRE_BYTES + 16);
            use quadforest_core::Wire;
            (t, q.morton_abs(), q.level() as u32).encode(&mut buf);
            p.encode(&mut buf);
            let c = crc32(&buf) as u64;
            // spread the 32-bit CRC over 64 bits before the XOR fold
            local ^= c.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c << 32);
        }
        comm.allreduce(local, |a, b| a ^ b)
    }

    /// One donor-cell step. Collective; `dt` must satisfy the CFL bound
    /// (see [`Self::cfl_dt`]). Mass is conserved to machine precision
    /// across ranks and hanging faces.
    pub fn step(&mut self, comm: &Comm, dt: f64) {
        let _span = telemetry::span("pde.step");
        let t0 = std::time::Instant::now();
        self.u.check_aligned(&self.forest, "advection step");
        let root = Q::len_at(0) as f64;
        let [vx, vy] = self.velocity;

        // the ghost layer (full adjacency so hanging groups spanning
        // ranks are complete) and the identity→index maps depend only on
        // mesh topology: rebuild them only on the first step after an
        // adapt/migrate, not on every step of a static phase. Collective
        // when it rebuilds — adapt/migrate invalidate on every rank, so
        // all ranks take the same branch.
        if self.topo.is_none() {
            let ghost = self.forest.ghost(comm, BalanceKind::Full);
            let index = self
                .forest
                .leaves()
                .enumerate()
                .map(|(i, (t, q))| ((t, q.morton_abs(), q.level()), i))
                .collect();
            let ghost_index = ghost
                .ghosts
                .iter()
                .enumerate()
                .map(|(i, g)| ((g.tree, g.quad.morton_abs(), g.quad.level()), i))
                .collect();
            self.topo = Some(TopologyCache {
                ghost,
                index,
                ghost_index,
            });
        }
        let TopologyCache {
            ghost,
            index,
            ghost_index,
        } = self.topo.as_ref().expect("cache built above");

        // ship every leaf's edge strips to the ranks that see it as a
        // ghost — values change every step, so this exchange always runs
        let halos: Vec<PatchHalo> = self.u.iter().map(|p| p.halo()).collect();
        let ghost_halos = ghost.exchange_data(&self.forest, comm, &halos);
        telemetry::counter_add(
            "pde.halo.bytes",
            (ghost_halos.len() * HALO_WIRE_BYTES) as u64,
        );

        let mut du = vec![Patch::zero(); self.u.len()];

        // intra-patch fluxes: neighbor differences on the uniform patch
        for ((_, q), (p, d)) in self.forest.leaves().zip(self.u.iter().zip(du.iter_mut())) {
            let hc = Self::leaf_h(q) / PATCH_N as f64; // cell size
            for j in 0..PATCH_N {
                for i in 0..PATCH_N - 1 {
                    let donor = if vx >= 0.0 {
                        p.get(i, j)
                    } else {
                        p.get(i + 1, j)
                    };
                    let f = vx * donor * dt / hc;
                    d.cells[Patch::idx(i, j)] -= f;
                    d.cells[Patch::idx(i + 1, j)] += f;
                }
            }
            for j in 0..PATCH_N - 1 {
                for i in 0..PATCH_N {
                    let donor = if vy >= 0.0 {
                        p.get(i, j)
                    } else {
                        p.get(i, j + 1)
                    };
                    let f = vy * donor * dt / hc;
                    d.cells[Patch::idx(i, j)] -= f;
                    d.cells[Patch::idx(i, j + 1)] += f;
                }
            }
        }

        // strip value of one side at tangential index m: local leaves
        // read their patch, ghosts read the exchanged halo
        let strip = |side: &FaceSide<Q>, m: usize| -> f64 {
            let k = (side.tree, side.quad.morton_abs(), side.quad.level());
            if side.is_ghost {
                ghost_halos[ghost_index[&k]].edges[side.face as usize][m]
            } else {
                edge_cell(&self.u[index[&k]], side.face, m)
            }
        };

        // inter-leaf fluxes at the finer side's granularity
        iterate_faces(&self.forest, ghost, |iface| {
            let Interface::Interior(primary, others) = iface else {
                return; // closed wall: zero flux (conservative)
            };
            for other in &others {
                let axis = (primary.face / 2) as usize;
                debug_assert_eq!(axis, (other.face / 2) as usize, "axis-aligned transform");
                let vn = self.velocity[axis];
                // the leaf whose face is the +axis side sits at lower
                // coordinates: positive vn carries mass low -> high
                let (low, high) = if primary.face & 1 == 1 {
                    (&primary, other)
                } else {
                    (other, &primary)
                };
                // fine = smaller leaf; segments are its face cells
                let fine_is_low = low.quad.level() >= high.quad.level();
                let (fine, coarse) = if fine_is_low {
                    (low, high)
                } else {
                    (high, low)
                };
                let tan = 1 - axis;
                let hf = fine.quad.side() as i64;
                let hc = coarse.quad.side() as i64;
                let off = (fine.quad.coords()[tan] - coarse.quad.coords()[tan]) as i64;
                debug_assert!((0..hc).contains(&off), "tangential overlap");
                let w = hf as f64 / root / PATCH_N as f64; // segment length
                let n = PATCH_N as i64;
                for s in 0..PATCH_N {
                    // coarse face cell covering fine face cell s
                    let k = ((off * n + s as i64 * hf) / hc) as usize;
                    let (m_low, m_high) = if fine_is_low { (s, k) } else { (k, s) };
                    let donor = if vn >= 0.0 {
                        strip(low, m_low)
                    } else {
                        strip(high, m_high)
                    };
                    let dm = vn * donor * dt * w; // mass low -> high
                    if !low.is_ghost {
                        let i = index[&(low.tree, low.quad.morton_abs(), low.quad.level())];
                        let cell = Self::leaf_h(&low.quad) / PATCH_N as f64;
                        let (ci, cj) = face_cell(low.face, m_low);
                        du[i].cells[Patch::idx(ci, cj)] -= dm / (cell * cell);
                    }
                    if !high.is_ghost {
                        let i = index[&(high.tree, high.quad.morton_abs(), high.quad.level())];
                        let cell = Self::leaf_h(&high.quad) / PATCH_N as f64;
                        let (ci, cj) = face_cell(high.face, m_high);
                        du[i].cells[Patch::idx(ci, cj)] += dm / (cell * cell);
                    }
                }
            }
        });

        for (p, d) in self.u.iter_mut().zip(du.iter()) {
            for (c, dc) in p.cells.iter_mut().zip(d.cells.iter()) {
                *c += dc;
            }
        }
        self.steps_taken += 1;
        telemetry::counter_add("pde.steps", 1);
        telemetry::histogram_record("pde.step.ns", t0.elapsed().as_nanos() as u64);
    }

    /// Adapt the mesh to the solution (refine steep patches, coarsen
    /// flat families, re-balance) and conservatively remap the patches.
    /// Collective.
    pub fn adapt(&mut self, comm: &Comm, thresholds: AdaptThresholds) -> AdaptReport {
        let _span = telemetry::span("pde.adapt");
        let max_level = self.max_level;
        let base_level = self.base_level;

        // snapshot patch magnitudes keyed by *pre-adapt* leaf identity.
        // The refine flags only ever see pre-adapt leaves, but the
        // coarsen pass runs against the post-refine mesh, where children
        // created moments ago are absent from the snapshot — `unknown`
        // decides their fate per pass.
        let magnitude: HashMap<(u32, u64, u8), f64> = self
            .forest
            .leaves()
            .zip(self.u.iter())
            .map(|((t, q), p)| ((t, q.morton_abs(), q.level()), p.max_abs()))
            .collect();
        let mag = |t: TreeId, q: &Q, unknown: f64| -> f64 {
            magnitude
                .get(&(t, q.morton_abs(), q.level()))
                .copied()
                .unwrap_or(unknown)
        };

        let mut refined = self.forest.refine_mapped(
            comm,
            false,
            |t, q| q.level() < max_level && mag(t, q, 0.0) > thresholds.refine_above,
            &mut self.u,
            &PatchMapper,
        );
        // unknown leaves read +inf here: a family holding children this
        // very adapt() just created must never be a coarsen candidate,
        // or the coarsen pass would silently undo the refine pass
        let coarsened = self.forest.coarsen_mapped(
            comm,
            false,
            |t, fam| {
                fam[0].level() > base_level
                    && fam
                        .iter()
                        .all(|q| mag(t, q, f64::INFINITY) < thresholds.coarsen_below)
            },
            &mut self.u,
            &PatchMapper,
        );
        refined += self
            .forest
            .balance_mapped(comm, BalanceKind::Face, &mut self.u, &PatchMapper);
        // unconditionally, on every rank: the mesh may have changed on
        // *any* rank, which reshapes this rank's ghost layer too
        self.invalidate_topology();
        let mapped_bytes = (self.u.len() * PATCH_WIRE_BYTES) as u64;
        telemetry::counter_add("pde.map.bytes", mapped_bytes);
        AdaptReport {
            refined,
            coarsened,
            mapped_bytes,
        }
    }

    /// Rebalance the leaf partition, migrating each moving leaf's patch
    /// in the same exchange. Returns the bytes of payload shipped off
    /// this rank. Collective.
    pub fn migrate(&mut self, comm: &Comm) -> u64 {
        let _span = telemetry::span("pde.migrate");
        let moved = self.forest.partition_mapped(comm, &mut self.u);
        self.invalidate_topology();
        let bytes = (moved * PATCH_WIRE_BYTES) as u64;
        telemetry::counter_add("pde.migrate.bytes", bytes);
        bytes
    }

    /// Write a checkpoint generation carrying mesh, patches, *and* the
    /// step count (committed in the manifest). Collective; returns the
    /// generation number.
    pub fn checkpoint(
        &self,
        comm: &Comm,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<u64, IoError> {
        self.forest
            .save_checkpoint_with_data(comm, dir, &self.u, self.steps_taken)
    }

    /// Restore a simulation from the newest complete checkpoint
    /// generation. `steps_taken` comes from the step count persisted in
    /// the checkpoint manifest — never from the generation number, which
    /// can skip values when a save is aborted mid-write. Collective.
    pub fn restore(
        conn: Arc<Connectivity>,
        comm: &Comm,
        dir: impl AsRef<std::path::Path>,
        velocity: [f64; 2],
        base_level: u8,
        max_level: u8,
    ) -> Result<Self, IoError> {
        let (forest, u, info) = Forest::<Q>::load_checkpoint_with_data(conn, comm, dir)?;
        Ok(AdvectionSim {
            forest,
            u,
            velocity,
            base_level,
            max_level,
            steps_taken: info.step,
            topo: None,
        })
    }

    /// Render the global field as a `width × height` ASCII frame
    /// (row 0 at the top = y max). Collective; every rank returns the
    /// same string.
    pub fn ascii_frame(&self, comm: &Comm, width: usize, height: usize) -> String {
        let root = Q::len_at(0) as f64;
        let mut grid = vec![0.0f64; width * height];
        for ((_, q), p) in self.forest.leaves().zip(self.u.iter()) {
            let c = q.coords();
            let h = q.side() as f64;
            for cj in 0..PATCH_N {
                for ci in 0..PATCH_N {
                    let x = (c[0] as f64 + (ci as f64 + 0.5) * h / PATCH_N as f64) / root;
                    let y = (c[1] as f64 + (cj as f64 + 0.5) * h / PATCH_N as f64) / root;
                    let gx = ((x * width as f64) as usize).min(width - 1);
                    let gy = ((y * height as f64) as usize).min(height - 1);
                    let g = &mut grid[gy * width + gx];
                    *g = g.max(p.get(ci, cj));
                }
            }
        }
        let grid = comm.allreduce(grid, |a, b| {
            a.iter().zip(b.iter()).map(|(x, y)| x.max(*y)).collect()
        });
        let peak = grid.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        const SHADES: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((width + 1) * height);
        for row in (0..height).rev() {
            for col in 0..width {
                let v = (grid[row * width + col] / peak).clamp(0.0, 1.0);
                let s = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[s] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Sample `init` at the cell centers of a leaf's patch.
pub fn sample_patch<Q: Quadrant>(q: &Q, init: &impl Fn(f64, f64) -> f64) -> Patch {
    let root = Q::len_at(0) as f64;
    let c = q.coords();
    let h = q.side() as f64;
    let mut p = Patch::zero();
    for j in 0..PATCH_N {
        for i in 0..PATCH_N {
            let x = (c[0] as f64 + (i as f64 + 0.5) * h / PATCH_N as f64) / root;
            let y = (c[1] as f64 + (j as f64 + 0.5) * h / PATCH_N as f64) / root;
            p.set(i, j, init(x, y));
        }
    }
    p
}

/// The patch cell `(i, j)` on face `f` at tangential strip index `m`.
#[inline]
fn face_cell(f: u32, m: usize) -> (usize, usize) {
    let edge = if f & 1 == 1 { PATCH_N - 1 } else { 0 };
    if f / 2 == 0 {
        (edge, m)
    } else {
        (m, edge)
    }
}

/// Value of the patch cell on face `f` at tangential strip index `m`.
#[inline]
fn edge_cell(p: &Patch, f: u32, m: usize) -> f64 {
    let (i, j) = face_cell(f, m);
    p.get(i, j)
}

/// The standard demo initial condition: a Gaussian blob at
/// `(0.3, 0.4)`.
pub fn gaussian_blob(x: f64, y: f64) -> f64 {
    let d2 = (x - 0.3).powi(2) + (y - 0.4).powi(2);
    (-d2 / 0.01).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadforest_core::quadrant::MortonQuad;

    type Q = MortonQuad<2>;

    fn mk(comm: &Comm, base: u8, max: u8) -> AdvectionSim<Q> {
        AdvectionSim::new(
            Arc::new(Connectivity::periodic(2)),
            comm,
            base,
            max,
            [1.0, 0.5],
            gaussian_blob,
        )
    }

    #[test]
    fn uniform_step_conserves_mass_serial() {
        quadforest_comm::run(1, |comm| {
            let mut sim = mk(&comm, 2, 2);
            let m0 = sim.total_mass(&comm);
            let dt = sim.cfl_dt(&comm, 0.45);
            for _ in 0..10 {
                sim.step(&comm, dt);
            }
            let drift = (sim.total_mass(&comm) - m0).abs() / m0;
            assert!(drift < 1e-13, "drift {drift:e}");
        });
    }

    #[test]
    fn adaptive_step_conserves_mass_parallel() {
        quadforest_comm::run(2, |comm| {
            let mut sim = mk(&comm, 2, 4);
            assert!(
                comm.allreduce(
                    sim.forest
                        .leaves()
                        .map(|(_, q)| q.level())
                        .max()
                        .unwrap_or(0),
                    |a, b| (*a).max(*b),
                ) > 2,
                "initial refinement must trigger"
            );
            let m0 = sim.total_mass(&comm);
            let dt = sim.cfl_dt(&comm, 0.45);
            for s in 0..12 {
                sim.step(&comm, dt);
                if s % 4 == 3 {
                    sim.adapt(&comm, AdaptThresholds::default());
                    sim.migrate(&comm);
                }
                let drift = (sim.total_mass(&comm) - m0).abs() / m0;
                assert!(drift < 1e-12, "step {s}: drift {drift:e}");
            }
            assert_eq!(sim.steps_taken, 12);
        });
    }

    #[test]
    fn adapt_alone_is_bit_exact_on_mass() {
        quadforest_comm::run(2, |comm| {
            let mut sim = mk(&comm, 2, 4);
            let m0 = sim.total_mass(&comm);
            sim.adapt(&comm, AdaptThresholds::default());
            sim.migrate(&comm);
            // conservative mapper: refine/coarsen change no patch sums
            let drift = (sim.total_mass(&comm) - m0).abs() / m0;
            assert!(drift < 1e-13, "drift {drift:e}");
        });
    }

    #[test]
    fn digest_is_partition_invariant() {
        let d2: Vec<u64> = quadforest_comm::run(2, |comm| {
            let sim = mk(&comm, 2, 3);
            sim.state_digest(&comm)
        });
        let d4: Vec<u64> = quadforest_comm::run(4, |comm| {
            let sim = mk(&comm, 2, 3);
            sim.state_digest(&comm)
        });
        assert!(d2.iter().all(|d| *d == d2[0]));
        assert_eq!(d2[0], d4[0], "digest must not depend on the partition");
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("qf-pde-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reports = quadforest_comm::run(2, |comm| {
            let mut sim = mk(&comm, 2, 4);
            let dt = sim.cfl_dt(&comm, 0.45);
            for _ in 0..5 {
                sim.step(&comm, dt);
            }
            sim.checkpoint(&comm, &dir).unwrap();
            let before = sim.state_digest(&comm);
            let restored = AdvectionSim::<Q>::restore(
                Arc::new(Connectivity::periodic(2)),
                &comm,
                &dir,
                sim.velocity,
                2,
                4,
            )
            .unwrap();
            assert_eq!(restored.steps_taken, 5);
            (before, restored.state_digest(&comm))
        });
        let _ = std::fs::remove_dir_all(&dir);
        for (before, after) in reports {
            assert_eq!(before, after, "restore must be bit-identical");
        }
    }

    #[test]
    fn adapt_refinement_survives_the_coarsen_pass() {
        quadforest_comm::run(1, |comm| {
            // uniform level-2 mesh, then allow adaptation up to level 4:
            // the blob peak (≈1.0) is far above refine_above, so adapt()
            // must refine — and the freshly created children, absent
            // from the magnitude snapshot, must NOT be coarsened right
            // back in the same call
            let mut sim = mk(&comm, 2, 2);
            sim.max_level = 4;
            let leaves_before = sim.forest.global_count();
            let report = sim.adapt(&comm, AdaptThresholds::default());
            assert!(report.refined > 0, "the blob must trigger refinement");
            assert!(
                sim.forest.global_count() > leaves_before,
                "refined leaves must survive adapt(): {} -> {} leaves",
                leaves_before,
                sim.forest.global_count()
            );
            let finest = sim
                .forest
                .leaves()
                .map(|(_, q)| q.level())
                .max()
                .unwrap_or(0);
            assert!(finest > 2, "refinement must persist past the coarsen pass");
        });
    }

    #[test]
    fn restore_steps_survive_skipped_generations() {
        let dir = std::env::temp_dir().join(format!("qf-pde-skipgen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        quadforest_comm::run(2, |comm| {
            let mut sim = mk(&comm, 2, 3);
            let dt = sim.cfl_dt(&comm, 0.45);
            for _ in 0..3 {
                sim.step(&comm, dt);
            }
            // simulate an aborted save: an uncommitted generation dir
            // bumps the next generation number past the dense sequence
            if comm.rank() == 0 {
                std::fs::create_dir_all(dir.join("gen-00000007")).unwrap();
            }
            comm.barrier();
            let generation = sim.checkpoint(&comm, &dir).unwrap();
            assert_eq!(generation, 8, "the aborted generation must be skipped");
            let restored = AdvectionSim::<Q>::restore(
                Arc::new(Connectivity::periodic(2)),
                &comm,
                &dir,
                sim.velocity,
                2,
                3,
            )
            .unwrap();
            assert_eq!(
                restored.steps_taken, 3,
                "steps must come from the manifest, not the generation number"
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ascii_frame_shows_the_blob() {
        quadforest_comm::run(1, |comm| {
            let sim = mk(&comm, 3, 3);
            let frame = sim.ascii_frame(&comm, 24, 12);
            assert_eq!(frame.lines().count(), 12);
            assert!(frame.contains('@'), "peak shade must appear:\n{frame}");
            assert!(frame.contains(' '), "background must stay empty");
        });
    }
}
