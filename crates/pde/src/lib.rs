//! Patch-based PDE drivers over the data-bearing AMR forest.
//!
//! This crate is the application layer the payload machinery in
//! `quadforest-forest` exists for, in the ForestClaw direction: every
//! leaf of the adaptive forest carries a fixed `N × N` [`Patch`] of
//! cell-averaged values, and the solver composes the forest's
//! data-bearing primitives into a full simulation loop:
//!
//! * **adapt** — [`Forest::refine_mapped`] / `coarsen_mapped` /
//!   `balance_mapped` with the conservative [`PatchMapper`]
//!   (piecewise-constant injection down, exact 2×2 averaging up);
//! * **migrate** — [`Forest::partition_mapped`] ships each moving
//!   leaf's patch in the partition all-to-all;
//! * **halo** — [`GhostLayer::exchange_data`] carries [`PatchHalo`]
//!   edge strips so interface fluxes see remote neighbors;
//! * **checkpoint** — `save_checkpoint_with_data` /
//!   `load_checkpoint_with_data` persist mesh and patches together,
//!   so a killed rank resumes bit-identically.
//!
//! [`AdvectionSim`] wires these into a donor-cell upwind advection
//! solver whose total mass is conserved to machine precision across
//! adaptation, migration, hanging faces, and rank boundaries.
//!
//! [`Forest::refine_mapped`]: quadforest_forest::Forest::refine_mapped
//! [`Forest::partition_mapped`]: quadforest_forest::Forest::partition_mapped
//! [`GhostLayer::exchange_data`]: quadforest_forest::GhostLayer::exchange_data

pub mod patch;
pub mod solver;

pub use patch::{
    Patch, PatchHalo, PatchMapper, HALO_WIRE_BYTES, PATCH_CELLS, PATCH_N, PATCH_WIRE_BYTES,
};
pub use solver::{gaussian_blob, sample_patch, AdaptReport, AdaptThresholds, AdvectionSim};
