//! Concurrency + wraparound hammer for the flight recorder.
//!
//! Four writer threads push ~12x the ring capacity while the main thread
//! snapshots continuously. The per-slot seqlock must guarantee that a
//! snapshot never observes a torn event: we encode a checksum relation
//! (`c == b ^ mask(rank)`) into every event, so any cross-thread mix of
//! words is detectable. Runs as the sole test in its own binary because
//! the ring is process-global.

use quadforest_telemetry::flight::{self, FlightDump, FlightKind};

const CAP: usize = 1024;
const WRITERS: u32 = 4;
const EVENTS_PER_WRITER: u64 = 3_000;

fn mask(rank: u32) -> u64 {
    0xABCD_EF00_0000_0000 | rank as u64
}

fn check_integrity(dump: &FlightDump) {
    for e in &dump.events {
        assert_eq!(
            e.kind,
            FlightKind::Heartbeat,
            "unexpected kind {:?}",
            e.kind
        );
        assert!(e.rank < WRITERS, "unexpected rank {}", e.rank);
        assert_eq!(
            e.c,
            e.b ^ mask(e.rank),
            "torn event: rank {} b {} c {:#x}",
            e.rank,
            e.b,
            e.c
        );
    }
}

#[test]
fn hammer_wraparound_and_tearing() {
    flight::arm_with_capacity(CAP);
    assert!(flight::armed());

    let handles: Vec<_> = (0..WRITERS)
        .map(|rank| {
            std::thread::spawn(move || {
                flight::set_thread_rank(rank);
                for i in 0..EVENTS_PER_WRITER {
                    flight::event(FlightKind::Heartbeat, 0, i, i ^ mask(rank));
                }
            })
        })
        .collect();

    // Snapshot under fire: torn slots must be skipped, valid ones intact.
    while handles.iter().any(|h| !h.is_finished()) {
        if let Some(dump) = flight::snapshot() {
            assert!(dump.events.len() <= CAP);
            check_integrity(&dump);
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    let dump = flight::snapshot().expect("armed recorder must snapshot");

    // 12_000 events through a 1024-slot ring: the final quiescent snapshot
    // holds exactly the last CAP events, oldest first.
    assert_eq!(
        dump.events.len(),
        CAP,
        "quiescent snapshot must fill the ring"
    );
    check_integrity(&dump);

    // Claim order is monotone per thread and the snapshot window is the
    // global claim tail, so each rank's surviving payloads form a strictly
    // increasing suffix of its sequence — i.e. any rank that appears at all
    // must end on its final event. (A rank may be wholly evicted if its
    // writer finished long before the others; that is legal.)
    let mut last = [None::<u64>; WRITERS as usize];
    for e in &dump.events {
        if let Some(prev) = last[e.rank as usize] {
            assert!(
                e.b > prev,
                "rank {} out of order: {} after {}",
                e.rank,
                e.b,
                prev
            );
        }
        last[e.rank as usize] = Some(e.b);
    }
    for (rank, tail) in last.iter().enumerate() {
        if let Some(tail) = tail {
            assert_eq!(
                *tail,
                EVENTS_PER_WRITER - 1,
                "rank {rank} surviving events are not a suffix of its sequence"
            );
        }
    }

    // Wire roundtrip and rendering survive a wrapped ring.
    let decoded = FlightDump::decode(&dump.encode()).expect("decode own encoding");
    assert_eq!(decoded.rank, dump.rank);
    assert_eq!(decoded.events.len(), dump.events.len());
    for (a, b) in decoded.events.iter().zip(&dump.events) {
        assert_eq!(
            (a.ts_ns, a.kind, a.rank, a.a, a.b, a.c),
            (b.ts_ns, b.kind, b.rank, b.a, b.b, b.c)
        );
    }
    let text = dump.render();
    assert!(
        text.contains("heartbeat") || text.contains("Heartbeat"),
        "render: {text}"
    );
}
