//! Differential property test for the HDR log-linear histogram.
//!
//! The layout promises a relative quantile error of at most
//! 1/SUB_BUCKET_COUNT = 1/128 (≈0.78%): every bucket above the exact
//! range spans values whose midpoint is within that factor of any member.
//! We check the whole pipeline — `bucket_index` placement plus
//! `quantile_from_buckets` rank selection — against an exact quantile
//! computed from the sorted raw sample, using the same rank formula
//! (rank = ceil(q * n) clamped to [1, n]) so the only divergence left to
//! measure is bucketing error.

use proptest::prelude::*;
use quadforest_telemetry::{bucket_index, quantile_from_buckets, HISTOGRAM_BUCKETS};

const QS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Values are drawn as (shift, seed) so the sample spans many orders of
    // magnitude — uniform u64 alone would almost never exercise the small
    // exact-representation tiers.
    #[test]
    fn quantiles_within_one_percent(
        raw in proptest::collection::vec((0u32..64, 1u64..u64::MAX), 1..400)
    ) {
        let values: Vec<u64> = raw.iter().map(|&(s, v)| v >> s).collect();

        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            buckets[bucket_index(v)] += 1;
        }

        let mut sorted = values.clone();
        sorted.sort_unstable();

        for &q in &QS {
            let est = quantile_from_buckets(&buckets, q).expect("non-empty sample");
            let exact = exact_quantile(&sorted, q);
            // ±1 absorbs midpoint rounding in the exact tiers.
            let tol = exact / 128 + 1;
            let err = est.abs_diff(exact);
            prop_assert!(
                err <= tol,
                "q={q}: estimated {est} vs exact {exact} (err {err} > tol {tol}, n={})",
                values.len()
            );
        }
    }

    // Every value must land in a bucket whose bounds contain it, and the
    // midpoint reported for that bucket must be within the error bound.
    #[test]
    fn bucket_bounds_contain_value(raw in (0u32..64, 1u64..u64::MAX)) {
        let v = raw.1 >> raw.0;
        let idx = bucket_index(v);
        prop_assert!(idx < HISTOGRAM_BUCKETS);
        let (lo, hi) = quadforest_telemetry::bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {idx} = [{lo}, {hi}]");
        let mid = quadforest_telemetry::bucket_midpoint(idx);
        prop_assert!(
            mid.abs_diff(v) <= v / 128 + 1,
            "midpoint {mid} of bucket {idx} too far from {v}"
        );
    }
}
