//! Span events and the per-rank ring buffer they are recorded into.

use crate::metrics::MetricsSnapshot;

/// A completed span: name, start on the shared monotonic clock, duration,
/// and nesting depth at the time the span was opened (0 = top level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub depth: u16,
}

/// Fixed-capacity ring of completed spans. When full, the **oldest** event
/// is overwritten (the tail of a run is usually the interesting part) and
/// `dropped` counts the overwrites.
#[derive(Clone, Debug)]
pub struct SpanRing {
    buf: Vec<SpanEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            buf: Vec::new(),
            cap: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events oldest-first (unwraps the ring).
    pub fn to_vec(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Everything one rank recorded: spans (completion order), a snapshot of its
/// metric registry, and recorder health counters. `Clone + Send + 'static`
/// so it can be returned from a rank closure or allgathered.
#[derive(Clone, Debug, Default)]
pub struct RankReport {
    pub rank: usize,
    pub spans: Vec<SpanEvent>,
    pub metrics: MetricsSnapshot,
    /// Spans overwritten because the ring filled up.
    pub dropped_spans: u64,
    /// Span exits that did not match the innermost open span (should be 0;
    /// RAII guards make a mismatch possible only via `mem::forget` or
    /// cross-scope guard shuffling).
    pub nesting_errors: u64,
}

impl RankReport {
    /// Total recorded duration of all spans with the given name.
    pub fn phase_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Check the interval structure is properly nested: sorted by start,
    /// every span must either contain or be disjoint from the next ones at
    /// greater depth, matching the recorded depths.
    pub fn spans_well_nested(&self) -> bool {
        let mut sorted: Vec<&SpanEvent> = self.spans.iter().collect();
        sorted.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        let mut stack: Vec<&SpanEvent> = Vec::new();
        for ev in sorted {
            while let Some(top) = stack.last() {
                if ev.start_ns >= top.start_ns + top.dur_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                // Must end within the enclosing span and sit one level deeper
                // (or more, if siblings at intermediate depths were dropped).
                if ev.start_ns + ev.dur_ns > top.start_ns + top.dur_ns {
                    return false;
                }
                if ev.depth <= top.depth {
                    return false;
                }
            } else if ev.depth != 0 && self.dropped_spans == 0 {
                // Depth > 0 with no enclosing interval: the parent span is
                // still open (not yet recorded) — tolerated only while its
                // exit is pending, which cannot happen in a final report.
                return false;
            }
            stack.push(ev);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start: u64, dur: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            start_ns: start,
            dur_ns: dur,
            depth,
        }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut r = SpanRing::new(3);
        for i in 0..5 {
            r.push(ev("x", i, 1, 0));
        }
        assert_eq!(r.dropped(), 2);
        let v = r.to_vec();
        assert_eq!(
            v.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn well_nested_accepts_proper_tree() {
        let rep = RankReport {
            spans: vec![
                ev("inner", 10, 5, 1),
                ev("outer", 0, 100, 0),
                ev("inner2", 20, 5, 1),
                ev("leaf", 21, 2, 2),
                ev("next", 200, 10, 0),
            ],
            ..Default::default()
        };
        assert!(rep.spans_well_nested());
    }

    #[test]
    fn well_nested_rejects_overlap() {
        let rep = RankReport {
            spans: vec![ev("a", 0, 10, 0), ev("b", 5, 10, 1)],
            ..Default::default()
        };
        assert!(!rep.spans_well_nested());
    }

    #[test]
    fn phase_totals_sum_by_name() {
        let rep = RankReport {
            spans: vec![ev("p", 0, 5, 0), ev("q", 10, 7, 0), ev("p", 20, 5, 0)],
            ..Default::default()
        };
        assert_eq!(rep.phase_total_ns("p"), 10);
        assert_eq!(rep.phase_total_ns("q"), 7);
        assert_eq!(rep.phase_total_ns("zzz"), 0);
    }
}
