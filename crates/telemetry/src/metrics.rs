//! Typed metrics: counters, gauges, and fixed-bucket histograms.
//!
//! A [`Registry`] owns a set of named metric cells. Every cell is backed by
//! `AtomicU64` slots, so once a handle ([`Counter`], [`Gauge`], [`Histogram`])
//! has been resolved the hot path is a single lock-free read-modify-write —
//! the registry mutex is only taken at registration and snapshot time.
//!
//! Two registries exist in practice:
//!
//! * the **process-global** registry ([`crate::global`]) for state shared by
//!   all rank threads, e.g. the SIMD dispatch-tier counters in
//!   `quadforest-core` — here the atomics do real work;
//! * one **per-rank** registry inside each thread-local recorder
//!   ([`crate::begin_rank`]) — single-threaded by construction, but reusing
//!   the same cell type keeps snapshots uniform.
//!
//! Histograms use an HdrHistogram-style **log-linear** layout: values below
//! [`SUB_BUCKET_COUNT`] (128) are recorded exactly, one bucket per value;
//! larger values fall into exponential tiers of [`SUB_BUCKET_HALF`] (64)
//! linear sub-buckets each, so every bucket's width is at most `lo / 64` and
//! reporting the bucket midpoint bounds the relative error at
//! `1/128 ≈ 0.78 % < 1 %` — tight enough for p99/p999 SLOs across the full
//! `u64` range. Two extra slots accumulate the total count and total sum so
//! exporters can report means without extra bookkeeping.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Values below this are recorded exactly (one bucket per value).
pub const SUB_BUCKET_COUNT: u64 = 128;
/// Linear sub-buckets per exponential tier above the exact range.
pub const SUB_BUCKET_HALF: u64 = 64;
/// Exponential tiers needed to cover the remaining `u64` range: values with
/// bit length 8..=64 map to tiers 1..=57.
const TIERS: usize = 57;

/// Number of value buckets in a [`Histogram`]: 128 exact buckets plus
/// 57 tiers × 64 linear sub-buckets, covering all of `u64` with ≤1 %
/// relative error at the bucket midpoint.
pub const HISTOGRAM_BUCKETS: usize = SUB_BUCKET_COUNT as usize + TIERS * SUB_BUCKET_HALF as usize;
const SLOT_COUNT: usize = HISTOGRAM_BUCKETS;
const SLOT_SUM: usize = HISTOGRAM_BUCKETS + 1;

/// Which flavour of metric a cell stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MetricKind {
    /// Monotonically increasing sum of deltas.
    Counter,
    /// Last-written value.
    Gauge,
    /// Log-linear (HdrHistogram-style) bucket histogram plus running
    /// count/sum, ≤1 % relative error at the bucket midpoint.
    Histogram,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        })
    }
}

/// Shared storage for one named metric. Counters and gauges use a single
/// slot; histograms use `HISTOGRAM_BUCKETS + 2` (buckets, count, sum).
pub struct Cell {
    name: &'static str,
    kind: MetricKind,
    slots: Box<[AtomicU64]>,
}

impl Cell {
    fn new(name: &'static str, kind: MetricKind) -> Self {
        let n = match kind {
            MetricKind::Counter | MetricKind::Gauge => 1,
            MetricKind::Histogram => HISTOGRAM_BUCKETS + 2,
        };
        let slots = (0..n).map(|_| AtomicU64::new(0)).collect();
        Cell { name, kind, slots }
    }
}

/// Bucket index for a histogram value in the log-linear layout: values
/// below 128 map to their own bucket; larger values keep their top 7
/// significant bits, so each tier holds 64 linear sub-buckets of width
/// `2^tier`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKET_COUNT {
        return v as usize;
    }
    // v ≥ 128, so bit length ≥ 8 and tier = bit_length - 7 ≥ 1.
    let tier = (63 - v.leading_zeros() as usize) - 6;
    // (v >> tier) is in [64, 128): the 64 linear sub-buckets of this tier.
    SUB_BUCKET_COUNT as usize
        + (tier - 1) * SUB_BUCKET_HALF as usize
        + ((v >> tier) - SUB_BUCKET_HALF) as usize
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (for display and
/// quantile estimation). The last bucket's upper bound saturates at
/// `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKET_COUNT as usize {
        return (i as u64, i as u64 + 1);
    }
    let off = i - SUB_BUCKET_COUNT as usize;
    let tier = (off / SUB_BUCKET_HALF as usize + 1) as u32;
    let m = (off % SUB_BUCKET_HALF as usize) as u64 + SUB_BUCKET_HALF;
    let lo = m << tier;
    let hi = (((m + 1) as u128) << tier).min(u64::MAX as u128) as u64;
    (lo, hi)
}

/// Representative value of bucket `i`: its midpoint. Exact for the 128
/// low buckets (width 1); within `1/128` relative error everywhere else.
pub fn bucket_midpoint(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - lo) / 2
}

/// Estimate the `q`-quantile (`0.0..=1.0`) from a bucket-count slice laid
/// out per [`bucket_index`]. Returns `None` for an empty histogram. The
/// estimate is the midpoint of the bucket containing the rank-`⌈q·n⌉`
/// observation, so relative error is bounded by the bucket half-width:
/// ≤ `1/128` of the true value.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bucket_midpoint(i));
        }
    }
    Some(bucket_midpoint(buckets.len() - 1))
}

/// Lock-free handle to a counter cell.
#[derive(Clone)]
pub struct Counter(Arc<Cell>);

impl Counter {
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.slots[0].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.slots[0].load(Ordering::Relaxed)
    }
}

/// Lock-free handle to a gauge cell.
#[derive(Clone)]
pub struct Gauge(Arc<Cell>);

impl Gauge {
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.slots[0].store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.slots[0].load(Ordering::Relaxed)
    }
}

/// Lock-free handle to a fixed-bucket histogram cell.
#[derive(Clone)]
pub struct Histogram(Arc<Cell>);

impl Histogram {
    #[inline]
    pub fn record(&self, value: u64) {
        let s = &self.0.slots;
        s[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        s[SLOT_COUNT].fetch_add(1, Ordering::Relaxed);
        s[SLOT_SUM].fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.slots[SLOT_COUNT].load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.slots[SLOT_SUM].load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile of the recorded values (`None` if empty),
    /// within ≤1 % relative error.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let buckets: Vec<u64> = self.0.slots[..HISTOGRAM_BUCKETS]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        quantile_from_buckets(&buckets, q)
    }
}

/// A named collection of metric cells. Registration and snapshotting take
/// the internal mutex; all recording goes through lock-free handles (or a
/// short-lived lock in the by-name convenience paths of the crate root).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    index: HashMap<(&'static str, MetricKind), usize>,
    cells: Vec<Arc<Cell>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, name: &'static str, kind: MetricKind) -> Arc<Cell> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&i) = inner.index.get(&(name, kind)) {
            return Arc::clone(&inner.cells[i]);
        }
        let cell = Arc::new(Cell::new(name, kind));
        let i = inner.cells.len();
        inner.cells.push(Arc::clone(&cell));
        inner.index.insert((name, kind), i);
        cell
    }

    /// Register-or-get a counter handle.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.cell(name, MetricKind::Counter))
    }

    /// Register-or-get a gauge handle.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.cell(name, MetricKind::Gauge))
    }

    /// Register-or-get a histogram handle.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.cell(name, MetricKind::Histogram))
    }

    /// Copy out every cell's current values, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let entries = inner
            .cells
            .iter()
            .map(|c| MetricEntry {
                name: c.name,
                kind: c.kind,
                values: c.slots.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Zero every cell (counters, gauges, and histogram buckets alike).
    pub fn reset(&self) {
        let inner = self.inner.lock().unwrap();
        for c in &inner.cells {
            for s in c.slots.iter() {
                s.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time copy of one registry's contents. `Clone + Send + 'static`,
/// so it can travel through `Comm::allgather` for cross-rank aggregation.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub entries: Vec<MetricEntry>,
}

/// One metric's values inside a [`MetricsSnapshot`]. Counters and gauges
/// carry a single value; histograms carry buckets plus count and sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    pub name: &'static str,
    pub kind: MetricKind,
    pub values: Vec<u64>,
}

impl MetricEntry {
    /// Scalar value for counters/gauges; total count for histograms.
    pub fn scalar(&self) -> u64 {
        match self.kind {
            MetricKind::Counter | MetricKind::Gauge => self.values[0],
            MetricKind::Histogram => self.values[SLOT_COUNT],
        }
    }

    /// Estimated `q`-quantile for a histogram entry (`None` for other
    /// kinds or an empty histogram).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        (self.kind == MetricKind::Histogram)
            .then(|| quantile_from_buckets(&self.values[..HISTOGRAM_BUCKETS], q))
            .flatten()
    }
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str, kind: MetricKind) -> Option<&MetricEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.kind == kind)
    }
}

/// One metric aggregated across ranks (see [`aggregate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateRow {
    pub name: &'static str,
    pub kind: MetricKind,
    /// Scalar value per rank (0 where a rank never touched the metric).
    /// For histograms this is the per-rank observation count.
    pub per_rank: Vec<u64>,
    /// Sum of `per_rank` — for counters this is the global total.
    pub total: u64,
    pub min: u64,
    pub max: u64,
    /// Element-wise summed buckets (histograms only, else empty).
    pub buckets: Vec<u64>,
    /// Summed histogram value total (histograms only, else 0).
    pub sum: u64,
}

impl AggregateRow {
    /// Mean recorded value of an aggregated histogram, if any observations.
    pub fn mean(&self) -> Option<f64> {
        (self.kind == MetricKind::Histogram && self.total > 0)
            .then(|| self.sum as f64 / self.total as f64)
    }

    /// Estimated `q`-quantile over the cross-rank merged buckets.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.buckets, q)
    }
}

/// Merge per-rank snapshots (index = rank, as returned by `allgather`) into
/// one row per metric. Counters and histogram counts sum across ranks;
/// min/max are taken over the per-rank scalars.
pub fn aggregate(snaps: &[MetricsSnapshot]) -> Vec<AggregateRow> {
    let mut order: Vec<(&'static str, MetricKind)> = Vec::new();
    let mut rows: HashMap<(&'static str, MetricKind), AggregateRow> = HashMap::new();
    for (rank, snap) in snaps.iter().enumerate() {
        for e in &snap.entries {
            let key = (e.name, e.kind);
            let row = rows.entry(key).or_insert_with(|| {
                order.push(key);
                AggregateRow {
                    name: e.name,
                    kind: e.kind,
                    per_rank: vec![0; snaps.len()],
                    total: 0,
                    min: 0,
                    max: 0,
                    buckets: match e.kind {
                        MetricKind::Histogram => vec![0; HISTOGRAM_BUCKETS],
                        _ => Vec::new(),
                    },
                    sum: 0,
                }
            });
            let scalar = e.scalar();
            row.per_rank[rank] = scalar;
            row.total += scalar;
            if e.kind == MetricKind::Histogram {
                for (b, v) in row.buckets.iter_mut().zip(&e.values[..HISTOGRAM_BUCKETS]) {
                    *b += v;
                }
                row.sum += e.values[SLOT_SUM];
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            let mut row = rows.remove(&key).unwrap();
            // min/max over ALL ranks: a rank that never registered the
            // metric counts as 0, exactly as its per_rank slot says
            row.min = row.per_rank.iter().copied().min().unwrap_or(0);
            row.max = row.per_rank.iter().copied().max().unwrap_or(0);
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);

        let g = reg.gauge("g");
        g.set(10);
        g.set(7);
        assert_eq!(g.get(), 7);

        let h = reg.histogram("h");
        h.record(0);
        h.record(1);
        h.record(900);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 901);

        let snap = reg.snapshot();
        assert_eq!(snap.get("c", MetricKind::Counter).unwrap().scalar(), 4);
        assert_eq!(snap.get("g", MetricKind::Gauge).unwrap().scalar(), 7);
        let he = snap.get("h", MetricKind::Histogram).unwrap();
        assert_eq!(he.scalar(), 3);
        assert_eq!(he.values[bucket_index(0)], 1);
        assert_eq!(he.values[bucket_index(900)], 1);
    }

    #[test]
    fn handles_alias_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 7);
        // Same name under a different kind is a distinct cell.
        reg.gauge("shared").set(1);
        assert_eq!(reg.counter("shared").get(), 7);
    }

    #[test]
    fn bucket_layout_is_log_linear() {
        // Exact range: one bucket per value.
        for v in 0..SUB_BUCKET_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_midpoint(v as usize), v);
        }
        // First tier starts right after the exact range.
        assert_eq!(bucket_index(128), 128);
        assert_eq!(bucket_index(129), 128); // tier-1 buckets have width 2
        assert_eq!(bucket_index(130), 129);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bounds and indices agree on every bucket, and buckets tile the
        // u64 range without gaps.
        let mut expect_lo = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "gap before bucket {i}");
            assert!(hi > lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, u64::MAX);
    }

    #[test]
    fn quantile_error_is_within_one_percent() {
        // Midpoint reporting keeps relative error under 1/128 for any
        // value, across magnitudes.
        for &v in &[1u64, 100, 1_000, 123_456, 7_777_777, 1 << 40, u64::MAX / 3] {
            let mid = bucket_midpoint(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 128.0, "v={v} mid={mid} err={err}");
        }
        let reg = Registry::new();
        let h = reg.histogram("q");
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let p50 = h.quantile(0.50).unwrap() as f64;
        let p999 = h.quantile(0.999).unwrap() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 <= 0.01, "p50={p50}");
        assert!((p999 - 999_000.0).abs() / 999_000.0 <= 0.01, "p999={p999}");
        assert_eq!(h.quantile(0.0), h.quantile(0.001)); // rank clamps to 1
    }

    #[test]
    fn aggregate_sums_counters_across_ranks() {
        let mk = |v: u64| {
            let reg = Registry::new();
            reg.counter("x").add(v);
            reg.snapshot()
        };
        let rows = aggregate(&[mk(1), mk(10), mk(100)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].per_rank, vec![1, 10, 100]);
        assert_eq!(rows[0].total, 111);
        assert_eq!(rows[0].min, 1);
        assert_eq!(rows[0].max, 100);
    }

    #[test]
    fn aggregate_handles_ragged_registries() {
        let reg0 = Registry::new();
        reg0.counter("only0").add(4);
        let reg1 = Registry::new();
        reg1.histogram("lat").record(5);
        reg1.histogram("lat").record(9);
        let rows = aggregate(&[reg0.snapshot(), reg1.snapshot()]);
        let only0 = rows.iter().find(|r| r.name == "only0").unwrap();
        assert_eq!(only0.per_rank, vec![4, 0]);
        assert_eq!(only0.total, 4);
        let lat = rows.iter().find(|r| r.name == "lat").unwrap();
        assert_eq!(lat.per_rank, vec![0, 2]);
        assert_eq!(lat.sum, 14);
        assert_eq!(lat.mean(), Some(7.0));
        assert_eq!(lat.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::new();
        reg.counter("c").add(9);
        reg.histogram("h").record(9);
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap
            .entries
            .iter()
            .all(|e| e.values.iter().all(|&v| v == 0)));
    }
}
