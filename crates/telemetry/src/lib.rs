//! # quadforest-telemetry
//!
//! Hand-rolled, dependency-free observability for the quadforest workspace:
//! phase **spans** with thread-local scoping and monotonic timestamps
//! recorded into per-rank ring buffers, typed **metrics** (counters, gauges,
//! fixed-bucket histograms) with lock-free atomic hot paths, and
//! **exporters** for a per-rank/per-phase summary table and Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! ## Model
//!
//! The simulated-MPI world runs one OS thread per rank, so "per rank" and
//! "per thread" coincide: a rank opts in with [`begin_rank`], which installs
//! a thread-local recorder (span stack + ring buffer + metric registry), and
//! collects everything it recorded with [`finish_rank`]. Cross-rank views
//! are built by shipping [`MetricsSnapshot`]/[`RankReport`] values through
//! the existing `Comm` collectives (`allgather`/`allreduce`) and merging
//! with [`aggregate`] — this crate deliberately sits *below* the comm layer
//! and never does communication itself.
//!
//! Process-global state (shared by all rank threads, e.g. the SIMD
//! dispatch-tier counters) lives in the [`global`] registry instead.
//!
//! ## Disabled-mode cost contract
//!
//! With no recorder installed anywhere ([`disabled`] returns `true`), a span
//! site costs one relaxed atomic load and a branch — the `ablation` bench
//! suite guards this at **< 2 ns per span site** — so instrumentation stays
//! compiled in and enabled-by-default in release builds.
//!
//! ```
//! use quadforest_telemetry as telemetry;
//!
//! telemetry::begin_rank(0);
//! {
//!     let _phase = telemetry::span("refine");
//!     telemetry::counter_add("leaves", 64);
//! }
//! let report = telemetry::finish_rank().unwrap();
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.spans[0].name, "refine");
//! ```

mod export;
pub mod flight;
mod metrics;
mod prom;
mod span;

pub use export::{
    chrome_trace, chrome_trace_with_metrics, metrics_table, sample_metrics_every,
    sample_metrics_now, summary_table, summary_totals, take_metric_samples, MetricSampler,
};
pub use metrics::{
    aggregate, bucket_bounds, bucket_index, bucket_midpoint, quantile_from_buckets, AggregateRow,
    Counter, Gauge, Histogram, MetricEntry, MetricKind, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use prom::{
    note_batch_latency, render_prometheus, serve_metrics, set_slow_query_threshold_ns,
    slow_query_threshold_ns, MetricsServer,
};
pub use span::{RankReport, SpanEvent, SpanRing};

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default per-rank ring capacity (events). At ~32 bytes an event this is
/// ~2 MiB per rank worst case.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Monotonic clock
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the first telemetry use in this process. Monotonic and
/// shared across threads, so per-rank tracks line up in one trace.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Global (process-wide) registry
// ---------------------------------------------------------------------------

/// The process-global metric registry, for state genuinely shared across
/// rank threads (e.g. `core::simd` dispatch counters). Handles resolved from
/// it are lock-free on the hot path.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Metric-name interning
// ---------------------------------------------------------------------------

/// Intern a metric name into a `&'static str`.
///
/// Every name in the telemetry API is `&'static str` (lock-free hot
/// path, no per-sample allocation). Snapshots arriving from *another
/// process* — the socket transport's cross-rank `aggregate_metrics` —
/// carry names as bytes, so decoding needs a static string back. Known
/// names resolve to the already-interned pointer; a novel name is
/// leaked exactly once. The leak is bounded by the universe of metric
/// names the program ever emits, which is static in practice.
pub fn intern_name(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = set.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Thread-local rank recorder
// ---------------------------------------------------------------------------

struct Recorder {
    rank: usize,
    /// Open spans: (name, start_ns).
    stack: Vec<(&'static str, u64)>,
    ring: SpanRing,
    registry: Registry,
    nesting_errors: u64,
    /// Innermost span that was open when this thread first started
    /// panicking — survives the unwind (the span stack does not), so abort
    /// reports can name the phase a rank died in.
    failure_phase: Option<&'static str>,
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // The ACTIVE count pairs with begin_rank's increment. Decrementing
        // here (not in finish_rank) means a rank that dies before calling
        // finish_rank still releases its slot when the thread-local is
        // destroyed — otherwise disabled() would stay false forever.
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Count of installed recorders across all threads. Zero ⇒ every span site
/// takes the single-load early-out, which is the disabled-cost contract.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// True if *any* thread currently records telemetry. (A span site on a
/// thread without its own recorder is still near-free: the thread-local
/// probe returns an inert guard.)
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// True when telemetry is fully off and span sites cost < 2 ns.
#[inline]
pub fn disabled() -> bool {
    !enabled()
}

/// Install a recorder for the calling thread with the default ring capacity.
/// The thread's spans and per-rank metrics are collected by [`finish_rank`].
pub fn begin_rank(rank: usize) {
    begin_rank_with_capacity(rank, DEFAULT_RING_CAPACITY);
}

/// [`begin_rank`] with an explicit span ring capacity.
pub fn begin_rank_with_capacity(rank: usize, ring_capacity: usize) {
    // Pin the clock epoch before any span records against it.
    let _ = epoch();
    // Flight events recorded by this thread now carry the rank.
    flight::set_thread_rank(rank as u32);
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        // Increment first; if this replaces an existing recorder, its
        // Drop rebalances the count.
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        *r = Some(Recorder {
            rank,
            stack: Vec::with_capacity(16),
            ring: SpanRing::new(ring_capacity),
            registry: Registry::new(),
            nesting_errors: 0,
            failure_phase: None,
        });
    });
}

/// Uninstall the calling thread's recorder and return everything it
/// captured. `None` if [`begin_rank`] was never called on this thread.
pub fn finish_rank() -> Option<RankReport> {
    RECORDER.with(|r| {
        let rec = r.borrow_mut().take()?; // Recorder::drop rebalances ACTIVE
        Some(RankReport {
            rank: rec.rank,
            spans: rec.ring.to_vec(),
            metrics: rec.registry.snapshot(),
            dropped_spans: rec.ring.dropped(),
            nesting_errors: rec.nesting_errors,
        })
    })
}

/// Snapshot the calling rank's metric registry without uninstalling the
/// recorder (empty snapshot if none). This is what travels through
/// `allgather` for live cross-rank aggregation.
pub fn rank_snapshot() -> MetricsSnapshot {
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .map(|rec| rec.registry.snapshot())
            .unwrap_or_default()
    })
}

/// Name of the innermost open span on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    if disabled() {
        return None;
    }
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .and_then(|rec| rec.stack.last().map(|&(n, _)| n))
    })
}

/// The span this thread was inside when it started panicking, falling back
/// to the currently open span. Lets `catch_unwind`-style handlers name the
/// phase a rank died in even though the unwind already closed its spans.
pub fn failure_phase() -> Option<&'static str> {
    if disabled() {
        return None;
    }
    RECORDER
        .with(|r| r.borrow().as_ref().and_then(|rec| rec.failure_phase))
        .or_else(current_span)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for an open span; records a [`SpanEvent`] on drop.
#[must_use = "a span is recorded when its guard drops"]
pub struct Span {
    armed: bool,
    name: &'static str,
    depth: usize,
}

/// Open a span. When telemetry is disabled this is one atomic load and a
/// branch (< 2 ns, guarded by the `ablation` bench); when enabled it pushes
/// onto the thread-local span stack and timestamps the entry.
#[inline]
pub fn span(name: &'static str) -> Span {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Span {
            armed: false,
            name,
            depth: 0,
        };
    }
    span_enter(name)
}

#[cold]
fn span_enter(name: &'static str) -> Span {
    if flight::armed() {
        flight::event(
            flight::FlightKind::PhaseEnter,
            0,
            flight::name_id(name) as u64,
            0,
        );
    }
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        match r.as_mut() {
            Some(rec) => {
                let depth = rec.stack.len();
                rec.stack.push((name, now_ns()));
                Span {
                    armed: true,
                    name,
                    depth,
                }
            }
            None => Span {
                armed: false,
                name,
                depth: 0,
            },
        }
    })
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            span_exit(self.name, self.depth);
        }
    }
}

#[cold]
fn span_exit(name: &'static str, depth: usize) {
    let end = now_ns();
    let panicking = std::thread::panicking();
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let Some(rec) = r.as_mut() else { return };
        if panicking && rec.failure_phase.is_none() {
            // First guard dropped by the unwind = the innermost open span.
            rec.failure_phase = Some(name);
        }
        match rec.stack.pop() {
            Some((top_name, start)) if top_name == name && rec.stack.len() == depth => {
                let dur_ns = end.saturating_sub(start);
                if flight::armed() {
                    flight::event(
                        flight::FlightKind::PhaseExit,
                        0,
                        flight::name_id(name) as u64,
                        dur_ns,
                    );
                }
                rec.ring.push(SpanEvent {
                    name,
                    start_ns: start,
                    dur_ns,
                    depth: depth.min(u16::MAX as usize) as u16,
                });
            }
            _ => {
                // Exit does not match the innermost open span (guard leaked
                // or dropped out of order). Repair to this guard's depth so
                // one bad site cannot corrupt the rest of the run.
                rec.nesting_errors += 1;
                rec.stack.truncate(depth);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Per-rank metric convenience (by-name, no handle caching needed)
// ---------------------------------------------------------------------------

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Add to a per-rank counter. No-op when this thread has no recorder.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        with_recorder(|rec| rec.registry.counter(name).add(delta));
    }
}

/// Set a per-rank gauge. No-op when this thread has no recorder.
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if enabled() {
        with_recorder(|rec| rec.registry.gauge(name).set(value));
    }
}

/// Record into a per-rank histogram. No-op when this thread has no recorder.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if enabled() {
        with_recorder(|rec| rec.registry.histogram(name).record(value));
    }
}

/// RAII timer: records elapsed nanoseconds into a per-rank histogram on
/// drop. Inert (no clock read) when telemetry is disabled.
#[must_use = "a timer records when its guard drops"]
pub struct Timer {
    name: &'static str,
    start: Option<Instant>,
}

/// Start a [`Timer`] for `name` (histogram of nanoseconds).
#[inline]
pub fn timer(name: &'static str) -> Timer {
    let start = enabled().then(Instant::now);
    Timer { name, start }
}

impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            histogram_record(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The thread-local recorder makes these tests order-sensitive within a
    // thread; each test spawns its own thread to stay isolated.
    fn on_thread<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
        std::thread::spawn(f).join().unwrap()
    }

    #[test]
    fn disabled_thread_records_nothing() {
        on_thread(|| {
            let _s = span("ignored");
            counter_add("ignored", 1);
            gauge_set("ignored", 1);
            histogram_record("ignored", 1);
            let _t = timer("ignored");
            assert!(finish_rank().is_none());
            assert_eq!(rank_snapshot(), MetricsSnapshot::default());
            assert_eq!(current_span(), None);
        });
    }

    #[test]
    fn spans_nest_and_record_in_exit_order() {
        let report = on_thread(|| {
            begin_rank(3);
            {
                let _outer = span("outer");
                assert_eq!(current_span(), Some("outer"));
                {
                    let _inner = span("inner");
                    assert_eq!(current_span(), Some("inner"));
                }
                assert_eq!(current_span(), Some("outer"));
            }
            finish_rank().unwrap()
        });
        assert_eq!(report.rank, 3);
        assert_eq!(report.nesting_errors, 0);
        let names: Vec<_> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["inner", "outer"]);
        assert_eq!(report.spans[0].depth, 1);
        assert_eq!(report.spans[1].depth, 0);
        assert!(report.spans_well_nested());
        // inner is contained in outer on the monotonic clock
        let (inner, outer) = (&report.spans[0], &report.spans[1]);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn leaked_guard_counts_one_nesting_error_and_repairs() {
        let report = on_thread(|| {
            begin_rank(0);
            {
                let _outer = span("outer");
                std::mem::forget(span("leaked"));
            } // outer's exit sees "leaked" on top -> mismatch, repair
            {
                let _ok = span("after");
            }
            finish_rank().unwrap()
        });
        assert_eq!(report.nesting_errors, 1);
        let names: Vec<_> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["after"]);
    }

    #[test]
    fn per_rank_metrics_and_timer() {
        let report = on_thread(|| {
            begin_rank(1);
            counter_add("c", 2);
            counter_add("c", 3);
            gauge_set("g", 9);
            {
                let _t = timer("t_ns");
            }
            finish_rank().unwrap()
        });
        assert_eq!(
            report
                .metrics
                .get("c", MetricKind::Counter)
                .unwrap()
                .scalar(),
            5
        );
        assert_eq!(
            report.metrics.get("g", MetricKind::Gauge).unwrap().scalar(),
            9
        );
        assert_eq!(
            report
                .metrics
                .get("t_ns", MetricKind::Histogram)
                .unwrap()
                .scalar(),
            1
        );
    }

    #[test]
    fn failure_phase_survives_unwind() {
        let phase = on_thread(|| {
            begin_rank(0);
            let caught = std::panic::catch_unwind(|| {
                let _outer = span("outer");
                let _inner = span("doomed");
                panic!("boom");
            });
            assert!(caught.is_err());
            let phase = failure_phase();
            let _ = finish_rank();
            phase
        });
        assert_eq!(phase, Some("doomed"));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("telemetry.test.shared");
        let before = c.get();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get() - before, 4000);
    }
}
