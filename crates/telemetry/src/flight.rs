//! Flight recorder: an always-on, fixed-capacity, lock-free ring buffer
//! of structured binary events, dumped to a postmortem file when a world
//! fails.
//!
//! ## Model
//!
//! One ring per **process**, armed once with [`arm`]; every event is
//! stamped with the recording thread's rank (set by [`set_thread_rank`],
//! done automatically by [`crate::begin_rank`]), so on the thread backend
//! the single ring interleaves all ranks' histories in global time order,
//! while on the socket backend each rank process owns a genuinely private
//! ring. Recording is wait-free: a writer claims a slot with one
//! `fetch_add`, then publishes the payload under a per-slot sequence lock
//! (odd = write in progress, even = consistent). A reader skips torn
//! slots instead of blocking, so a dump taken while other threads keep
//! recording is always a valid decodable sequence — some in-flight events
//! may simply be missing.
//!
//! Unarmed event sites cost one atomic load and a branch (guarded
//! **< 10 ns** by the `ablation` bench suite); armed sites are a handful
//! of relaxed stores — no locks, no allocation.
//!
//! ## Dump format (`QFR1`)
//!
//! ```text
//! [ magic "QFR1" ][ rank: u32 ][ name_count: u32 ]
//! [ names: (len: u16, utf8 bytes) * name_count ]
//! [ event_count: u32 ][ events: 33 bytes each, oldest first ]
//! event := ts_ns u64 | kind u8 | rank u32 | a u32 | b u64 | c u64 (LE)
//! ```
//!
//! The name table snapshots the process-wide [`name_id`] interning table,
//! so phase and reason strings survive into the postmortem file.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable naming the postmortem output directory. The
/// socket supervisor propagates it to rank children so their dumps land
/// next to the supervisor's own.
pub const ENV_FLIGHT_DIR: &str = "QUADFOREST_FLIGHT_DIR";

/// Default ring capacity in events (must be a power of two). At 40 bytes
/// a slot this is ~160 KiB per process.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Rank value recorded by threads that never called [`set_thread_rank`]
/// (e.g. a socket supervisor or a query worker outside any world).
pub const NO_RANK: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Event kinds
// ---------------------------------------------------------------------------

/// What happened. The `a`/`b`/`c` payload words are kind-specific; see
/// each variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum FlightKind {
    /// A phase span opened. `b` = [`name_id`] of the phase.
    PhaseEnter = 1,
    /// A phase span closed. `b` = [`name_id`], `c` = duration ns.
    PhaseExit = 2,
    /// Point-to-point send. `a` = peer rank, `b` = tag, `c` = bytes.
    CommSend = 3,
    /// Point-to-point receive. `a` = peer rank, `b` = tag, `c` = bytes.
    CommRecv = 4,
    /// A collective started. `b` = collective sequence number,
    /// `c` = [`name_id`] of the phase it runs in.
    Collective = 5,
    /// A query batch was submitted. `b` = batch size, `c` = valid probes.
    BatchStart = 6,
    /// A query batch completed. `b` = batch size, `c` = end-to-end ns.
    BatchDone = 7,
    /// A liveness heartbeat was sent. `b` = heartbeat sequence number.
    Heartbeat = 8,
    /// A checkpoint generation committed. `b` = generation number.
    CheckpointCommit = 9,
    /// A peer was declared dead. `a` = peer rank, `b` = the victim's
    /// last reported comm-op count, `c` = [`name_id`] of the victim's
    /// last reported phase (0 if unknown).
    PeerFailed = 10,
    /// The recovery supervisor is retrying. `b` = failed attempt index.
    RecoveryRetry = 11,
    /// A query batch exceeded the slow-query threshold. `b` = batch
    /// size, `c` = end-to-end ns.
    SlowQuery = 12,
}

impl FlightKind {
    fn from_u8(v: u8) -> Option<Self> {
        use FlightKind::*;
        Some(match v {
            1 => PhaseEnter,
            2 => PhaseExit,
            3 => CommSend,
            4 => CommRecv,
            5 => Collective,
            6 => BatchStart,
            7 => BatchDone,
            8 => Heartbeat,
            9 => CheckpointCommit,
            10 => PeerFailed,
            11 => RecoveryRetry,
            12 => SlowQuery,
            _ => return None,
        })
    }

    fn label(self) -> &'static str {
        use FlightKind::*;
        match self {
            PhaseEnter => "phase-enter",
            PhaseExit => "phase-exit",
            CommSend => "send",
            CommRecv => "recv",
            Collective => "collective",
            BatchStart => "batch-start",
            BatchDone => "batch-done",
            Heartbeat => "heartbeat",
            CheckpointCommit => "checkpoint-commit",
            PeerFailed => "peer-failed",
            RecoveryRetry => "recovery-retry",
            SlowQuery => "slow-query",
        }
    }

    /// Is this a communication operation (send/recv/collective)?
    pub fn is_comm_op(self) -> bool {
        matches!(
            self,
            FlightKind::CommSend | FlightKind::CommRecv | FlightKind::Collective
        )
    }
}

// ---------------------------------------------------------------------------
// Name table
// ---------------------------------------------------------------------------

struct NameTable {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn name_table() -> &'static Mutex<NameTable> {
    static TABLE: OnceLock<Mutex<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        // Id 0 is reserved for "unknown" so payload word 0 stays neutral.
        Mutex::new(NameTable {
            by_name: HashMap::from([("?", 0)]),
            names: vec!["?"],
        })
    })
}

/// Intern a string into the flight-recorder name table and return its
/// id. Ids are stable for the process lifetime; id 0 is the unknown
/// string `"?"`. Events reference phases and reasons by id so recording
/// stays allocation-free.
pub fn name_id(name: &str) -> u32 {
    let mut t = name_table().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&id) = t.by_name.get(name) {
        return id;
    }
    let id = t.names.len() as u32;
    let leaked = crate::intern_name(name);
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    id
}

fn name_snapshot() -> Vec<String> {
    let t = name_table().lock().unwrap_or_else(|p| p.into_inner());
    t.names.iter().map(|s| s.to_string()).collect()
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

struct Slot {
    /// Sequence lock: `2*claim + 1` while the claiming writer stores the
    /// payload, `2*claim + 2` once the payload is consistent. A reader
    /// that sees an odd value, or a value that changed across its
    /// payload read, skips the slot.
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

struct Ring {
    mask: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

static RING: OnceLock<Ring> = OnceLock::new();

thread_local! {
    static THREAD_RANK: std::cell::Cell<u32> = const { std::cell::Cell::new(NO_RANK) };
}

/// Tag this thread's future flight events with `rank`. Called by
/// [`crate::begin_rank`] and by socket child startup.
pub fn set_thread_rank(rank: u32) {
    THREAD_RANK.with(|r| r.set(rank));
}

/// Arm the process flight recorder with the default capacity. Idempotent
/// and cheap; every world entry point calls it so recording is always-on
/// inside worlds.
pub fn arm() {
    arm_with_capacity(DEFAULT_FLIGHT_CAPACITY);
}

/// Arm with an explicit capacity (rounded up to a power of two). Only
/// the first call sizes the ring.
pub fn arm_with_capacity(capacity: usize) {
    RING.get_or_init(|| {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(u64::MAX), // never a valid even/odd claim stamp
                words: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            })
            .collect();
        Ring {
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            slots,
        }
    });
}

/// Is the recorder armed?
pub fn armed() -> bool {
    RING.get().is_some()
}

/// Record one event. Unarmed: one atomic load and a branch. Armed:
/// wait-free — a `fetch_add` slot claim plus six relaxed/release stores.
#[inline]
pub fn event(kind: FlightKind, a: u32, b: u64, c: u64) {
    let Some(ring) = RING.get() else { return };
    record(ring, kind, a, b, c);
}

#[cold]
fn record(ring: &Ring, kind: FlightKind, a: u32, b: u64, c: u64) {
    let ts = crate::now_ns();
    let rank = THREAD_RANK.with(|r| r.get());
    let claim = ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &ring.slots[(claim & ring.mask) as usize];
    slot.seq.store(claim * 2 + 1, Ordering::Release);
    slot.words[0].store(ts, Ordering::Relaxed);
    slot.words[1].store(
        kind as u64 | ((rank as u64 & 0xFF_FFFF) << 8) | ((a as u64) << 32),
        Ordering::Relaxed,
    );
    slot.words[2].store(b, Ordering::Relaxed);
    slot.words[3].store(c, Ordering::Relaxed);
    slot.seq.store(claim * 2 + 2, Ordering::Release);
}

// ---------------------------------------------------------------------------
// Decoded events and dumps
// ---------------------------------------------------------------------------

/// One decoded flight event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    pub ts_ns: u64,
    pub kind: FlightKind,
    pub rank: u32,
    pub a: u32,
    pub b: u64,
    pub c: u64,
}

/// A consistent snapshot of the ring plus the name table — what gets
/// encoded into a `.qfr` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightDump {
    /// Rank label of the dumping process ([`NO_RANK`] for a supervisor).
    pub rank: u32,
    /// Name table: index = [`name_id`].
    pub names: Vec<String>,
    /// Events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Read the last-N surviving events out of the ring, oldest first.
/// Returns `None` if the recorder was never armed. Torn slots (a writer
/// mid-store, or overwritten between claim scan and payload read) are
/// skipped, never blocked on.
pub fn snapshot() -> Option<FlightDump> {
    let ring = RING.get()?;
    let head = ring.head.load(Ordering::Acquire);
    let cap = ring.mask + 1;
    let start = head.saturating_sub(cap);
    let mut events = Vec::with_capacity((head - start) as usize);
    for claim in start..head {
        let slot = &ring.slots[(claim & ring.mask) as usize];
        let seq1 = slot.seq.load(Ordering::Acquire);
        if seq1 != claim * 2 + 2 {
            continue; // in progress, or already lapped by a newer claim
        }
        let w0 = slot.words[0].load(Ordering::Relaxed);
        let w1 = slot.words[1].load(Ordering::Relaxed);
        let w2 = slot.words[2].load(Ordering::Relaxed);
        let w3 = slot.words[3].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq1 {
            continue; // torn: overwritten while we read
        }
        let Some(kind) = FlightKind::from_u8((w1 & 0xFF) as u8) else {
            continue;
        };
        let rank = ((w1 >> 8) & 0xFF_FFFF) as u32;
        let rank = if rank == 0xFF_FFFF { NO_RANK } else { rank };
        events.push(FlightEvent {
            ts_ns: w0,
            kind,
            rank,
            a: (w1 >> 32) as u32,
            b: w2,
            c: w3,
        });
    }
    Some(FlightDump {
        rank: THREAD_RANK.with(|r| r.get()),
        names: name_snapshot(),
        events,
    })
}

impl FlightDump {
    /// Encode into the `QFR1` binary postmortem format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 33);
        out.extend_from_slice(b"QFR1");
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for n in &self.names {
            let bytes = n.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..len]);
        }
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.ts_ns.to_le_bytes());
            out.push(e.kind as u8);
            out.extend_from_slice(&e.rank.to_le_bytes());
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
            out.extend_from_slice(&e.c.to_le_bytes());
        }
        out
    }

    /// Decode a `QFR1` postmortem. Strict: bad magic, truncation, or an
    /// unknown event kind is an error, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        struct R<'a>(&'a [u8], usize);
        impl R<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], String> {
                if self.1 + n > self.0.len() {
                    return Err(format!("truncated at byte {}", self.1));
                }
                let s = &self.0[self.1..self.1 + n];
                self.1 += n;
                Ok(s)
            }
            fn u16(&mut self) -> Result<u16, String> {
                Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
        }
        let mut r = R(bytes, 0);
        if r.take(4)? != b"QFR1" {
            return Err("bad magic (want QFR1)".into());
        }
        let rank = r.u32()?;
        let name_count = r.u32()? as usize;
        if name_count > bytes.len() {
            return Err("name count exceeds input size".into());
        }
        let mut names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            let len = r.u16()? as usize;
            let s = std::str::from_utf8(r.take(len)?).map_err(|e| e.to_string())?;
            names.push(s.to_string());
        }
        let event_count = r.u32()? as usize;
        if event_count > bytes.len() {
            return Err("event count exceeds input size".into());
        }
        let mut events = Vec::with_capacity(event_count);
        for i in 0..event_count {
            let ts_ns = r.u64()?;
            let kind_raw = r.take(1)?[0];
            let kind = FlightKind::from_u8(kind_raw)
                .ok_or_else(|| format!("event {i}: unknown kind {kind_raw}"))?;
            events.push(FlightEvent {
                ts_ns,
                kind,
                rank: r.u32()?,
                a: r.u32()?,
                b: r.u64()?,
                c: r.u64()?,
            });
        }
        if r.1 != bytes.len() {
            return Err(format!("{} trailing bytes", bytes.len() - r.1));
        }
        Ok(FlightDump {
            rank,
            names,
            events,
        })
    }

    fn name(&self, id: u64) -> &str {
        self.names
            .get(id as usize)
            .map(|s| s.as_str())
            .unwrap_or("?")
    }

    /// Human-readable rendering, one line per event, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rank_label = |r: u32| -> String {
            if r == NO_RANK {
                "sup".into()
            } else {
                format!("r{r}")
            }
        };
        out.push_str(&format!(
            "flight recorder postmortem · dumped by {} · {} events\n",
            rank_label(self.rank),
            self.events.len()
        ));
        for e in &self.events {
            let detail = match e.kind {
                FlightKind::PhaseEnter => format!("phase '{}'", self.name(e.b)),
                FlightKind::PhaseExit => {
                    format!("phase '{}' after {} ns", self.name(e.b), e.c)
                }
                FlightKind::CommSend => {
                    format!("→ r{} tag {:#x} ({} bytes)", e.a, e.b, e.c)
                }
                FlightKind::CommRecv => {
                    format!("← r{} tag {:#x} ({} bytes)", e.a, e.b, e.c)
                }
                FlightKind::Collective => {
                    format!("#{} in phase '{}'", e.b, self.name(e.c))
                }
                FlightKind::BatchStart => format!("{} probes ({} valid)", e.b, e.c),
                FlightKind::BatchDone => format!("{} probes in {} ns", e.b, e.c),
                FlightKind::Heartbeat => format!("seq {}", e.b),
                FlightKind::CheckpointCommit => format!("generation {}", e.b),
                FlightKind::PeerFailed => format!(
                    "r{} last seen at comm op {} in phase '{}'",
                    e.a,
                    e.b,
                    self.name(e.c)
                ),
                FlightKind::RecoveryRetry => format!("after attempt {}", e.b),
                FlightKind::SlowQuery => format!("{} probes took {} ns", e.b, e.c),
            };
            out.push_str(&format!(
                "{:>14} ns  {:>4}  {:<17} {}\n",
                e.ts_ns,
                rank_label(e.rank),
                e.kind.label(),
                detail
            ));
        }
        out
    }

    /// The last communication operation (send/recv/collective) recorded
    /// by `rank`, if any — what a postmortem reader wants first.
    pub fn last_comm_op(&self, rank: u32) -> Option<&FlightEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.rank == rank && e.kind.is_comm_op())
    }

    /// The phase `rank` was last inside (last `PhaseEnter` without a
    /// matching later `PhaseExit`, else the last `PhaseEnter`).
    pub fn last_phase(&self, rank: u32) -> Option<&str> {
        self.events
            .iter()
            .rev()
            .find(|e| e.rank == rank && e.kind == FlightKind::PhaseEnter)
            .map(|e| self.name(e.b))
    }
}

// ---------------------------------------------------------------------------
// Postmortem dumping
// ---------------------------------------------------------------------------

static POSTMORTEM_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Direct postmortem dumps to `dir` (overrides the [`ENV_FLIGHT_DIR`]
/// environment variable for this process).
pub fn set_postmortem_dir(dir: impl Into<PathBuf>) {
    *POSTMORTEM_DIR.lock().unwrap_or_else(|p| p.into_inner()) = Some(dir.into());
}

/// Where postmortems go: the [`set_postmortem_dir`] override, else
/// [`ENV_FLIGHT_DIR`], else `None` (dumping disabled).
pub fn postmortem_dir() -> Option<PathBuf> {
    if let Some(d) = POSTMORTEM_DIR
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
    {
        return Some(d);
    }
    std::env::var_os(ENV_FLIGHT_DIR).map(PathBuf::from)
}

/// Dump the ring to `flight-{label}.qfr` (+ a `.txt` rendering) in the
/// postmortem directory. `rank` labels the file: the dumping rank, or
/// [`NO_RANK`] for a supervisor (`flight-sup.qfr`). Returns the binary
/// path on success; `None` if the recorder is unarmed, no directory is
/// configured, or the write fails (postmortems must never take down the
/// process that is trying to report a failure).
pub fn dump_postmortem(rank: u32) -> Option<PathBuf> {
    let dir = postmortem_dir()?;
    let mut dump = snapshot()?;
    dump.rank = rank;
    let label = if rank == NO_RANK {
        "sup".to_string()
    } else {
        rank.to_string()
    };
    std::fs::create_dir_all(&dir).ok()?;
    let bin_path = dir.join(format!("flight-{label}.qfr"));
    write_atomic(&bin_path, &dump.encode())?;
    let txt_path = dir.join(format!("flight-{label}.txt"));
    write_atomic(&txt_path, dump.render().as_bytes());
    Some(bin_path)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Option<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).ok()?;
    std::fs::rename(&tmp, path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_encode_decode_render() {
        arm_with_capacity(64);
        set_thread_rank(3);
        let phase = name_id("balance");
        event(FlightKind::PhaseEnter, 0, phase as u64, 0);
        event(FlightKind::CommSend, 1, 0x2a, 4096);
        event(FlightKind::PeerFailed, 1, 9, phase as u64);
        let dump = snapshot().unwrap();
        assert!(dump.events.len() >= 3);
        let bytes = dump.encode();
        let back = FlightDump::decode(&bytes).unwrap();
        assert_eq!(back, dump);
        let txt = back.render();
        assert!(txt.contains("phase 'balance'"), "{txt}");
        assert!(txt.contains("→ r1 tag 0x2a (4096 bytes)"), "{txt}");
        assert!(
            txt.contains("r1 last seen at comm op 9 in phase 'balance'"),
            "{txt}"
        );
        let last = dump.last_comm_op(3).unwrap();
        assert_eq!(last.kind, FlightKind::CommSend);
        assert_eq!(dump.last_phase(3), Some("balance"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FlightDump::decode(b"").is_err());
        assert!(FlightDump::decode(b"NOPE").is_err());
        assert!(FlightDump::decode(b"QFR1\x00\x00").is_err());
        // valid header claiming a huge name count must not allocate/panic
        let mut bad = b"QFR1".to_vec();
        bad.extend_from_slice(&0u32.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(FlightDump::decode(&bad).is_err());
    }
}
