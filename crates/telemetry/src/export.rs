//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and the
//! human-readable per-rank/per-phase summary table.

use crate::metrics::{AggregateRow, MetricKind, MetricsSnapshot};
use crate::span::RankReport;
use std::fmt::Write as _;

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render per-rank reports as Chrome trace-event JSON (the `traceEvents`
/// array format understood by Perfetto and `chrome://tracing`).
///
/// Schema: one process (`pid` 0, named "quadforest"), **one track per rank**
/// (`tid` = rank, named "rank N" via `thread_name` metadata), and one
/// complete event (`"ph": "X"`) per recorded span with microsecond `ts`/
/// `dur` (3 decimal places preserves the nanosecond clock). Events within a
/// track are emitted sorted by start time, so `ts` is monotonic per `tid`.
pub fn chrome_trace(reports: &[RankReport]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"quadforest\"}}",
    );
    for rep in reports {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}",
            rank = rep.rank
        );
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{rank}}}}}",
            rank = rep.rank
        );
        let mut spans = rep.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        for s in &spans {
            out.push_str(",\n{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{}", rep.rank);
            out.push_str(",\"cat\":\"phase\",\"name\":\"");
            escape(s.name, &mut out);
            let _ = write!(
                out,
                "\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"depth\":{}}}}}",
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.depth
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// [`chrome_trace`] plus one Chrome counter event (`"ph":"C"`) per metric
/// in `metrics` — typically the [`crate::global`] registry's snapshot, so
/// query-serving counters (`query.served`, `snapshot.generation`, latency
/// histogram counts) land on the same timeline as the phase spans.
/// Counters and gauges export their scalar; histograms export their
/// observation count and mean value. Events are stamped at the end of the
/// last recorded span (counters render as a final track in Perfetto).
pub fn chrome_trace_with_metrics(reports: &[RankReport], metrics: &MetricsSnapshot) -> String {
    let mut out = chrome_trace(reports);
    // splice counter events before the closing of the traceEvents array
    let tail = "\n]}\n";
    let base = out.len() - tail.len();
    debug_assert_eq!(&out[base..], tail);
    out.truncate(base);
    let ts = reports
        .iter()
        .flat_map(|r| r.spans.iter().map(|s| s.start_ns + s.dur_ns))
        .max()
        .unwrap_or(0);
    for e in &metrics.entries {
        out.push_str(",\n{\"ph\":\"C\",\"pid\":0,\"name\":\"");
        escape(e.name, &mut out);
        let _ = write!(out, "\",\"ts\":{}.{:03},\"args\":{{", ts / 1000, ts % 1000);
        match e.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                let _ = write!(out, "\"value\":{}", e.scalar());
            }
            MetricKind::Histogram => {
                let count = e.scalar();
                let sum = *e.values.last().unwrap_or(&0);
                let mean = sum.checked_div(count).unwrap_or(0);
                let _ = write!(out, "\"count\":{count},\"mean\":{mean}");
            }
        }
        out.push_str("}}");
    }
    out.push_str(tail);
    out
}

/// Phase names across all reports, ordered by earliest first occurrence.
fn phase_order(reports: &[RankReport]) -> Vec<&'static str> {
    let mut firsts: Vec<(&'static str, u64)> = Vec::new();
    for rep in reports {
        for s in &rep.spans {
            match firsts.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, t)) => *t = (*t).min(s.start_ns),
                None => firsts.push((s.name, s.start_ns)),
            }
        }
    }
    firsts.sort_by_key(|&(_, t)| t);
    firsts.into_iter().map(|(n, _)| n).collect()
}

/// Total recorded nanoseconds per phase, summed over every rank — the same
/// numbers the summary table prints, exposed for machine cross-checking
/// against the exported trace.
pub fn summary_totals(reports: &[RankReport]) -> Vec<(&'static str, u64)> {
    phase_order(reports)
        .into_iter()
        .map(|name| (name, reports.iter().map(|r| r.phase_total_ns(name)).sum()))
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Human-readable per-rank/per-phase table: one row per span name, one
/// `calls`/`total ms` column pair per rank, plus an all-ranks total column.
pub fn summary_table(reports: &[RankReport]) -> String {
    let phases = phase_order(reports);
    let mut out = String::new();
    let mut header = format!("{:<16}", "phase");
    for rep in reports {
        header.push_str(&format!("  {:>14}", format!("rank {}", rep.rank)));
    }
    header.push_str(&format!("  {:>14}", "total ms"));
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for name in phases {
        let _ = write!(out, "{name:<16}");
        let mut total = 0u64;
        for rep in reports {
            let calls = rep.spans.iter().filter(|s| s.name == name).count();
            let ns = rep.phase_total_ns(name);
            total += ns;
            let _ = write!(out, "  {:>14}", format!("{}x {}", calls, fmt_ms(ns)));
        }
        let _ = writeln!(out, "  {:>14}", fmt_ms(total));
    }
    let dropped: u64 = reports.iter().map(|r| r.dropped_spans).sum();
    let errors: u64 = reports.iter().map(|r| r.nesting_errors).sum();
    if dropped > 0 || errors > 0 {
        let _ = writeln!(out, "(dropped spans: {dropped}, nesting errors: {errors})");
    }
    out
}

/// Render aggregated cross-rank metrics ([`crate::aggregate`]) as a table.
pub fn metrics_table(rows: &[AggregateRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "metric", "kind", "total", "min/rank", "max/rank", "mean obs"
    );
    let _ = writeln!(out, "{}", "-".repeat(98));
    for r in rows {
        let mean = match r.mean() {
            Some(m) => format!("{m:.1}"),
            None => "-".into(),
        };
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12}",
            r.name,
            r.kind.to_string(),
            r.total,
            r.min,
            r.max,
            mean
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{aggregate, Registry};
    use crate::span::SpanEvent;

    fn report(rank: usize, spans: Vec<SpanEvent>) -> RankReport {
        RankReport {
            rank,
            spans,
            ..Default::default()
        }
    }

    fn ev(name: &'static str, start: u64, dur: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            start_ns: start,
            dur_ns: dur,
            depth,
        }
    }

    #[test]
    fn chrome_trace_has_one_track_per_rank() {
        let reports = vec![
            report(0, vec![ev("refine", 1000, 500, 0)]),
            report(
                1,
                vec![ev("refine", 1100, 400, 0), ev("balance", 2000, 1, 0)],
            ),
        ];
        let json = chrome_trace(&reports);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.500"));
        // exactly one X event per span
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let reports = vec![report(0, vec![ev("we\"ird\\name", 0, 1, 0)])];
        let json = chrome_trace(&reports);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn chrome_trace_sorted_by_start_per_track() {
        // recorded in exit order (inner first) — export must sort by start
        let reports = vec![report(
            0,
            vec![ev("inner", 500, 100, 1), ev("outer", 0, 1000, 0)],
        )];
        let json = chrome_trace(&reports);
        let outer_at = json.find("\"name\":\"outer\"").unwrap();
        let inner_at = json.find("\"name\":\"inner\"").unwrap();
        assert!(outer_at < inner_at);
    }

    #[test]
    fn summary_table_and_totals_agree() {
        let reports = vec![
            report(
                0,
                vec![
                    ev("refine", 0, 2_000_000, 0),
                    ev("balance", 5000, 1_000_000, 0),
                ],
            ),
            report(1, vec![ev("refine", 0, 4_000_000, 0)]),
        ];
        let totals = summary_totals(&reports);
        assert_eq!(totals, vec![("refine", 6_000_000), ("balance", 1_000_000)]);
        let table = summary_table(&reports);
        assert!(table.contains("refine"));
        assert!(table.contains("6.000")); // total ms column
        assert!(table.contains("1x 2.000"));
    }

    #[test]
    fn chrome_trace_with_metrics_emits_counter_events() {
        let reports = vec![report(0, vec![ev("serve", 1000, 2000, 0)])];
        let reg = Registry::new();
        reg.counter("query.served").add(42);
        reg.gauge("snapshot.generation").set(7);
        reg.histogram("query.point.latency_ns").record(900);
        reg.histogram("query.point.latency_ns").record(1100);
        let json = chrome_trace_with_metrics(&reports, &reg.snapshot());
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 3);
        assert!(json.contains("\"name\":\"query.served\",\"ts\":3.000,\"args\":{\"value\":42}"));
        assert!(
            json.contains("\"name\":\"snapshot.generation\",\"ts\":3.000,\"args\":{\"value\":7}")
        );
        assert!(json.contains("\"count\":2,\"mean\":1000"));
        // still a valid trace: the span events survive the splice
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(json.ends_with("\n]}\n"));
    }

    #[test]
    fn metrics_table_renders_rows() {
        let reg = Registry::new();
        reg.counter("comm.msgs").add(7);
        reg.histogram("lat_ns").record(100);
        let rows = aggregate(&[reg.snapshot()]);
        let t = metrics_table(&rows);
        assert!(t.contains("comm.msgs"));
        assert!(t.contains("counter"));
        assert!(t.contains("lat_ns"));
        assert!(t.contains("100.0")); // mean of single observation
    }
}
