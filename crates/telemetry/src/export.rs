//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and the
//! human-readable per-rank/per-phase summary table.

use crate::metrics::{AggregateRow, MetricEntry, MetricKind, MetricsSnapshot};
use crate::span::RankReport;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render per-rank reports as Chrome trace-event JSON (the `traceEvents`
/// array format understood by Perfetto and `chrome://tracing`).
///
/// Schema: one process (`pid` 0, named "quadforest"), **one track per rank**
/// (`tid` = rank, named "rank N" via `thread_name` metadata), and one
/// complete event (`"ph": "X"`) per recorded span with microsecond `ts`/
/// `dur` (3 decimal places preserves the nanosecond clock). Events within a
/// track are emitted sorted by start time, so `ts` is monotonic per `tid`.
pub fn chrome_trace(reports: &[RankReport]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"quadforest\"}}",
    );
    for rep in reports {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}",
            rank = rep.rank
        );
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{rank}}}}}",
            rank = rep.rank
        );
        let mut spans = rep.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        for s in &spans {
            out.push_str(",\n{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{}", rep.rank);
            out.push_str(",\"cat\":\"phase\",\"name\":\"");
            escape(s.name, &mut out);
            let _ = write!(
                out,
                "\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"depth\":{}}}}}",
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.depth
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Periodic metric samples
// ---------------------------------------------------------------------------

/// Timestamped snapshots of the [`crate::global`] registry, collected
/// during long phases so Chrome counter tracks show *evolution* instead
/// of one flat value at the end of the run.
static SAMPLES: Mutex<Vec<(u64, MetricsSnapshot)>> = Mutex::new(Vec::new());

/// Record one timestamped sample of the global registry into the sample
/// store. Call this from inside long phases (or use [`sample_metrics_every`])
/// — the next [`chrome_trace_with_metrics`] export turns each sample into
/// Chrome counter events at its own timestamp.
pub fn sample_metrics_now() {
    let snap = crate::global().snapshot();
    SAMPLES
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push((crate::now_ns(), snap));
}

/// Drain and return all stored samples (timestamp ns, snapshot), oldest
/// first. [`chrome_trace_with_metrics`] drains the store itself; use this
/// to inspect or discard samples without exporting a trace.
pub fn take_metric_samples() -> Vec<(u64, MetricsSnapshot)> {
    std::mem::take(&mut *SAMPLES.lock().unwrap_or_else(|p| p.into_inner()))
}

/// RAII background sampler: snapshots the global registry every `period`
/// until dropped. One sampling thread; drop joins it.
pub struct MetricSampler {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Start a [`MetricSampler`] with the given period.
pub fn sample_metrics_every(period: std::time::Duration) -> MetricSampler {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = std::sync::Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("qf-sampler".into())
        .spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(period);
                sample_metrics_now();
            }
        })
        .ok();
    MetricSampler { stop, handle }
}

impl Drop for MetricSampler {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One Chrome `"ph":"C"` event for `e` at timestamp `ts` (ns).
fn counter_event(out: &mut String, e: &MetricEntry, ts: u64) {
    out.push_str(",\n{\"ph\":\"C\",\"pid\":0,\"name\":\"");
    escape(e.name, out);
    let _ = write!(out, "\",\"ts\":{}.{:03},\"args\":{{", ts / 1000, ts % 1000);
    match e.kind {
        MetricKind::Counter | MetricKind::Gauge => {
            let _ = write!(out, "\"value\":{}", e.scalar());
        }
        MetricKind::Histogram => {
            let count = e.scalar();
            let sum = *e.values.last().unwrap_or(&0);
            let mean = sum.checked_div(count).unwrap_or(0);
            let _ = write!(out, "\"count\":{count},\"mean\":{mean}");
            for (q, label) in [(0.5, "p50"), (0.99, "p99"), (0.999, "p999")] {
                if let Some(v) = e.quantile(q) {
                    let _ = write!(out, ",\"{label}\":{v}");
                }
            }
        }
    }
    out.push_str("}}");
}

/// [`chrome_trace`] plus Chrome counter events (`"ph":"C"`): every sample
/// stored by [`sample_metrics_now`] / [`sample_metrics_every`] is emitted
/// at its own timestamp (the store is drained), then `metrics` — typically
/// the [`crate::global`] registry's final snapshot — is stamped at the end
/// of the last recorded span. Counters and gauges export their scalar;
/// histograms export count, mean, and p50/p99/p999 quantiles, so latency
/// SLOs are visible directly in Perfetto.
pub fn chrome_trace_with_metrics(reports: &[RankReport], metrics: &MetricsSnapshot) -> String {
    let mut out = chrome_trace(reports);
    // splice counter events before the closing of the traceEvents array
    let tail = "\n]}\n";
    let base = out.len() - tail.len();
    debug_assert_eq!(&out[base..], tail);
    out.truncate(base);
    for (sample_ts, snap) in take_metric_samples() {
        for e in &snap.entries {
            counter_event(&mut out, e, sample_ts);
        }
    }
    let ts = reports
        .iter()
        .flat_map(|r| r.spans.iter().map(|s| s.start_ns + s.dur_ns))
        .max()
        .unwrap_or(0);
    for e in &metrics.entries {
        counter_event(&mut out, e, ts);
    }
    out.push_str(tail);
    out
}

/// Phase names across all reports, ordered by earliest first occurrence.
fn phase_order(reports: &[RankReport]) -> Vec<&'static str> {
    let mut firsts: Vec<(&'static str, u64)> = Vec::new();
    for rep in reports {
        for s in &rep.spans {
            match firsts.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, t)) => *t = (*t).min(s.start_ns),
                None => firsts.push((s.name, s.start_ns)),
            }
        }
    }
    firsts.sort_by_key(|&(_, t)| t);
    firsts.into_iter().map(|(n, _)| n).collect()
}

/// Total recorded nanoseconds per phase, summed over every rank — the same
/// numbers the summary table prints, exposed for machine cross-checking
/// against the exported trace.
pub fn summary_totals(reports: &[RankReport]) -> Vec<(&'static str, u64)> {
    phase_order(reports)
        .into_iter()
        .map(|name| (name, reports.iter().map(|r| r.phase_total_ns(name)).sum()))
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Human-readable per-rank/per-phase table: one row per span name, one
/// `calls`/`total ms` column pair per rank, plus an all-ranks total column.
pub fn summary_table(reports: &[RankReport]) -> String {
    let phases = phase_order(reports);
    let mut out = String::new();
    let mut header = format!("{:<16}", "phase");
    for rep in reports {
        header.push_str(&format!("  {:>14}", format!("rank {}", rep.rank)));
    }
    header.push_str(&format!("  {:>14}", "total ms"));
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for name in phases {
        let _ = write!(out, "{name:<16}");
        let mut total = 0u64;
        for rep in reports {
            let calls = rep.spans.iter().filter(|s| s.name == name).count();
            let ns = rep.phase_total_ns(name);
            total += ns;
            let _ = write!(out, "  {:>14}", format!("{}x {}", calls, fmt_ms(ns)));
        }
        let _ = writeln!(out, "  {:>14}", fmt_ms(total));
    }
    let dropped: u64 = reports.iter().map(|r| r.dropped_spans).sum();
    let errors: u64 = reports.iter().map(|r| r.nesting_errors).sum();
    if dropped > 0 || errors > 0 {
        let _ = writeln!(out, "(dropped spans: {dropped}, nesting errors: {errors})");
    }
    out
}

/// Render aggregated cross-rank metrics ([`crate::aggregate`]) as a table.
/// Histogram rows carry p50/p99/p999 estimates from the merged HDR
/// buckets (≤1 % relative error) next to the mean.
pub fn metrics_table(rows: &[AggregateRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "metric", "kind", "total", "min/rank", "max/rank", "mean obs", "p50", "p99", "p999"
    );
    let _ = writeln!(out, "{}", "-".repeat(137));
    for r in rows {
        let mean = match r.mean() {
            Some(m) => format!("{m:.1}"),
            None => "-".into(),
        };
        let q = |q: f64| -> String {
            match r.quantile(q) {
                Some(v) => v.to_string(),
                None => "-".into(),
            }
        };
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.name,
            r.kind.to_string(),
            r.total,
            r.min,
            r.max,
            mean,
            q(0.5),
            q(0.99),
            q(0.999)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{aggregate, Registry};
    use crate::span::SpanEvent;

    fn report(rank: usize, spans: Vec<SpanEvent>) -> RankReport {
        RankReport {
            rank,
            spans,
            ..Default::default()
        }
    }

    fn ev(name: &'static str, start: u64, dur: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            start_ns: start,
            dur_ns: dur,
            depth,
        }
    }

    #[test]
    fn chrome_trace_has_one_track_per_rank() {
        let reports = vec![
            report(0, vec![ev("refine", 1000, 500, 0)]),
            report(
                1,
                vec![ev("refine", 1100, 400, 0), ev("balance", 2000, 1, 0)],
            ),
        ];
        let json = chrome_trace(&reports);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.500"));
        // exactly one X event per span
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let reports = vec![report(0, vec![ev("we\"ird\\name", 0, 1, 0)])];
        let json = chrome_trace(&reports);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn chrome_trace_sorted_by_start_per_track() {
        // recorded in exit order (inner first) — export must sort by start
        let reports = vec![report(
            0,
            vec![ev("inner", 500, 100, 1), ev("outer", 0, 1000, 0)],
        )];
        let json = chrome_trace(&reports);
        let outer_at = json.find("\"name\":\"outer\"").unwrap();
        let inner_at = json.find("\"name\":\"inner\"").unwrap();
        assert!(outer_at < inner_at);
    }

    #[test]
    fn summary_table_and_totals_agree() {
        let reports = vec![
            report(
                0,
                vec![
                    ev("refine", 0, 2_000_000, 0),
                    ev("balance", 5000, 1_000_000, 0),
                ],
            ),
            report(1, vec![ev("refine", 0, 4_000_000, 0)]),
        ];
        let totals = summary_totals(&reports);
        assert_eq!(totals, vec![("refine", 6_000_000), ("balance", 1_000_000)]);
        let table = summary_table(&reports);
        assert!(table.contains("refine"));
        assert!(table.contains("6.000")); // total ms column
        assert!(table.contains("1x 2.000"));
    }

    /// The sample store is process-global; tests that drain it must not
    /// interleave.
    static SAMPLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn chrome_trace_with_metrics_emits_counter_events() {
        let _guard = SAMPLE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        take_metric_samples(); // other tests' leftovers
        let reports = vec![report(0, vec![ev("serve", 1000, 2000, 0)])];
        let reg = Registry::new();
        reg.counter("query.served").add(42);
        reg.gauge("snapshot.generation").set(7);
        reg.histogram("query.point.latency_ns").record(900);
        reg.histogram("query.point.latency_ns").record(1100);
        let json = chrome_trace_with_metrics(&reports, &reg.snapshot());
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 3);
        assert!(json.contains("\"name\":\"query.served\",\"ts\":3.000,\"args\":{\"value\":42}"));
        assert!(
            json.contains("\"name\":\"snapshot.generation\",\"ts\":3.000,\"args\":{\"value\":7}")
        );
        assert!(json.contains("\"count\":2,\"mean\":1000"));
        // histogram counter events carry quantile estimates
        assert!(json.contains(",\"p50\":"), "{json}");
        assert!(json.contains(",\"p999\":"), "{json}");
        // still a valid trace: the span events survive the splice
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(json.ends_with("\n]}\n"));
    }

    #[test]
    fn periodic_samples_land_at_their_own_timestamps() {
        let _guard = SAMPLE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        take_metric_samples();
        let c = crate::global().counter("export.sample.test");
        c.add(1);
        sample_metrics_now();
        c.add(1);
        sample_metrics_now();
        let reports = vec![report(0, vec![ev("serve", 0, 1_000_000_000_000, 0)])];
        let json = chrome_trace_with_metrics(&reports, &crate::global().snapshot());
        // the same counter appears at (at least) three distinct
        // timestamps: two mid-phase samples plus the final stamp
        let events: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"C\"") && l.contains("export.sample.test"))
            .collect();
        assert!(events.len() >= 3, "{json}");
        let mut ts: Vec<&str> = events
            .iter()
            .filter_map(|l| l.split("\"ts\":").nth(1))
            .filter_map(|t| t.split(',').next())
            .collect();
        ts.dedup();
        assert!(ts.len() >= 3, "expected distinct sample timestamps: {ts:?}");
        // drained: a second export has only the final stamp
        let json2 = chrome_trace_with_metrics(&reports, &crate::global().snapshot());
        let again = json2
            .lines()
            .filter(|l| l.contains("\"ph\":\"C\"") && l.contains("export.sample.test"))
            .count();
        assert_eq!(again, 1);
    }

    #[test]
    fn metrics_table_renders_rows() {
        let reg = Registry::new();
        reg.counter("comm.msgs").add(7);
        reg.histogram("lat_ns").record(100);
        let rows = aggregate(&[reg.snapshot()]);
        let t = metrics_table(&rows);
        assert!(t.contains("comm.msgs"));
        assert!(t.contains("counter"));
        assert!(t.contains("lat_ns"));
        assert!(t.contains("100.0")); // mean of single observation
    }
}
