//! Prometheus text-format exposition + the slow-query log.
//!
//! Zero dependencies: [`render_prometheus`] walks a [`MetricsSnapshot`]
//! and emits the Prometheus text format (version 0.0.4), and
//! [`serve_metrics`] runs a minimal opt-in HTTP/1.0 exposition server on
//! a plain `TcpListener` so a live serving process can be scraped
//! (`curl http://addr/metrics`) without stopping it.
//!
//! Histograms are exposed **summary-style** (`{quantile="…"}` lines plus
//! `_sum`/`_count`): the HDR layout has 3776 buckets, and shipping them
//! all as `_bucket` lines would bloat every scrape ~500× for no extra
//! information once the quantiles are precomputed server-side with the
//! ≤1 % error bound of [`crate::quantile_from_buckets`].

use crate::metrics::{MetricKind, MetricsSnapshot};
use crate::{flight, global};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Quantiles exposed for every histogram.
pub const EXPOSED_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Sanitize a metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — dots (our namespace separator) and any
/// other invalid byte become `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a snapshot in Prometheus text format (version 0.0.4).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.entries {
        let name = sanitize(e.name);
        match e.kind {
            MetricKind::Counter => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", e.scalar()));
            }
            MetricKind::Gauge => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", e.scalar()));
            }
            MetricKind::Histogram => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, label) in EXPOSED_QUANTILES {
                    if let Some(v) = e.quantile(q) {
                        out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
                    }
                }
                let sum = e.values.last().copied().unwrap_or(0);
                out.push_str(&format!("{name}_sum {sum}\n"));
                out.push_str(&format!("{name}_count {}\n", e.scalar()));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition server
// ---------------------------------------------------------------------------

/// Handle to a running exposition server. Dropping it shuts the server
/// down (the accept loop is unblocked by a self-connection).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0 for tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() so the thread observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Start the opt-in exposition server on `addr` (e.g. `"127.0.0.1:0"`).
/// Every HTTP GET — the path is not inspected beyond being a request
/// line — receives the current [`global`] registry snapshot in
/// Prometheus text format. One thread, one connection at a time: this
/// is a scrape endpoint, not a web server.
pub fn serve_metrics(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("qf-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let _ = serve_one(&mut stream);
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn serve_one(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
    // Read until the end of the request head (or the buffer fills; any
    // HTTP GET we care about fits in 1 KiB).
    let mut buf = [0u8; 1024];
    let mut n = 0;
    while n < buf.len() {
        let got = stream.read(&mut buf[n..])?;
        if got == 0 {
            break;
        }
        n += got;
        if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let body = render_prometheus(&global().snapshot());
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Environment variable seeding the slow-query threshold (nanoseconds).
pub const ENV_SLOW_QUERY_NS: &str = "QUADFOREST_SLOW_QUERY_NS";

static SLOW_NS: AtomicU64 = AtomicU64::new(u64::MAX);
static SLOW_INIT: OnceLock<()> = OnceLock::new();

fn slow_init() {
    SLOW_INIT.get_or_init(|| {
        if let Some(v) = std::env::var(ENV_SLOW_QUERY_NS)
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            SLOW_NS.store(v, Ordering::Relaxed);
        }
    });
}

/// Set the slow-query threshold in nanoseconds. Batches slower than this
/// are logged to stderr, counted in `query.slow.count`, and recorded as
/// flight events. `u64::MAX` (the default) disables the log.
pub fn set_slow_query_threshold_ns(ns: u64) {
    slow_init();
    SLOW_NS.store(ns, Ordering::Relaxed);
}

/// Current slow-query threshold (ns); `u64::MAX` means disabled.
pub fn slow_query_threshold_ns() -> u64 {
    slow_init();
    SLOW_NS.load(Ordering::Relaxed)
}

/// Report one finished batch to the slow-query log: if `latency_ns`
/// meets the threshold, emit one stderr line, bump the global
/// `query.slow.count` counter, and record a [`flight`] `SlowQuery`
/// event. Below-threshold calls cost one atomic load and a compare.
#[inline]
pub fn note_batch_latency(kind: &str, batch_size: u64, latency_ns: u64) {
    if latency_ns < slow_query_threshold_ns() {
        return;
    }
    slow_query_hit(kind, batch_size, latency_ns);
}

#[cold]
fn slow_query_hit(kind: &str, batch_size: u64, latency_ns: u64) {
    global().counter("query.slow.count").incr();
    flight::event(flight::FlightKind::SlowQuery, 0, batch_size, latency_ns);
    eprintln!(
        "[slow-query] {kind} batch of {batch_size} took {:.3} ms (threshold {:.3} ms)",
        latency_ns as f64 / 1e6,
        slow_query_threshold_ns() as f64 / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_all_kinds_with_sanitized_names() {
        let reg = Registry::new();
        reg.counter("comm.msgs_sent").add(7);
        reg.gauge("snapshot.generation").set(3);
        let h = reg.histogram("query.point.latency_ns");
        for v in 1..=100u64 {
            h.record(v * 100);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE comm_msgs_sent counter\ncomm_msgs_sent 7\n"));
        assert!(text.contains("# TYPE snapshot_generation gauge\nsnapshot_generation 3\n"));
        assert!(text.contains("# TYPE query_point_latency_ns summary\n"));
        assert!(text.contains("query_point_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("query_point_latency_ns{quantile=\"0.999\"}"));
        assert!(text.contains(&format!("query_point_latency_ns_sum {}\n", h.sum())));
        assert!(text.contains("query_point_latency_ns_count 100\n"));
        // every non-comment line is "name[{labels}] value"
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn scrape_roundtrip_over_tcp() {
        global().counter("telemetry.prom.test").add(41);
        let server = serve_metrics("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.contains("telemetry_prom_test"), "{resp}");
        drop(server); // shutdown must not hang
    }

    #[test]
    fn slow_query_threshold_gates_the_log() {
        let before = global().counter("query.slow.count").get();
        set_slow_query_threshold_ns(u64::MAX);
        note_batch_latency("point", 64, 1_000_000);
        assert_eq!(global().counter("query.slow.count").get(), before);
        set_slow_query_threshold_ns(1_000);
        note_batch_latency("point", 64, 5_000);
        assert_eq!(global().counter("query.slow.count").get(), before + 1);
        set_slow_query_threshold_ns(u64::MAX);
    }
}
