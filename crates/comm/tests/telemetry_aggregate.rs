//! Cross-rank telemetry properties: metric aggregation over the
//! communicator must be exact (the aggregate of per-rank snapshots equals
//! the per-rank sums, for any recording pattern and world size), span
//! records must stay well-nested even under fault injection, and failures
//! inside an instrumented phase must be reported with that phase's name.

use proptest::prelude::*;
use quadforest_comm::{run, run_with_faults, try_run, try_run_with, FaultPlan, RunOptions};
use quadforest_telemetry as telemetry;
use std::time::Duration;

/// The metric names the property tests record under (per-rank counters).
const METRICS: [&str; 3] = ["prop.alpha", "prop.beta", "prop.gamma"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For P ∈ {1, 2, 4}: every rank applies its share of a random list
    /// of counter increments; `Comm::aggregate_metrics` must report, for
    /// every metric, exactly the per-rank sums and their total/min/max.
    #[test]
    fn aggregate_equals_per_rank_sums(
        p_sel in 0usize..3,
        ops in proptest::collection::vec((0usize..4, 0usize..3, 0u64..1_000), 0..64),
    ) {
        let p = [1usize, 2, 4][p_sel];
        // expected[r][m]: what rank r should have recorded for metric m
        let mut expected = vec![[0u64; 3]; p];
        for &(rank_sel, metric, delta) in &ops {
            expected[rank_sel % p][metric] += delta;
        }
        let ops_shared = ops.clone();
        let rows_per_rank = run(p, move |comm| {
            telemetry::begin_rank(comm.rank());
            for &(rank_sel, metric, delta) in &ops_shared {
                if rank_sel % comm.size() == comm.rank() {
                    telemetry::counter_add(METRICS[metric], delta);
                }
            }
            let rows = comm.aggregate_metrics();
            let _ = telemetry::finish_rank();
            rows
        });
        // every rank computes the identical aggregate
        for rows in &rows_per_rank {
            for (m, name) in METRICS.iter().enumerate() {
                let per_rank: Vec<u64> = (0..p).map(|r| expected[r][m]).collect();
                let total: u64 = per_rank.iter().sum();
                let row = rows.iter().find(|row| row.name == *name);
                match row {
                    Some(row) => {
                        prop_assert_eq!(&row.per_rank, &per_rank, "metric {}", name);
                        prop_assert_eq!(row.total, total);
                        prop_assert_eq!(row.min, *per_rank.iter().min().unwrap());
                        prop_assert_eq!(row.max, *per_rank.iter().max().unwrap());
                    }
                    // a metric no rank ever touched may be absent entirely
                    None => prop_assert_eq!(total, 0, "recorded metric {} missing", name),
                }
            }
        }
    }

    /// Spans stay well-nested on every rank even when the messages the
    /// instrumented collectives ride on are delayed and reordered by a
    /// random fault plan.
    #[test]
    fn span_nesting_survives_chaos(
        seed in any::<u64>(),
        p in 1usize..=4,
        depth in 1usize..=4,
    ) {
        const NAMES: [&str; 4] = ["chaos.a", "chaos.b", "chaos.c", "chaos.d"];
        let plan = FaultPlan::new(seed)
            .with_delays(0.3, Duration::from_micros(80))
            .with_reordering(0.3);
        let reports = run_with_faults(p, plan, move |comm| {
            telemetry::begin_rank(comm.rank());
            fn nest(comm: &quadforest_comm::Comm, level: usize, depth: usize) {
                if level == depth {
                    return;
                }
                let _span = telemetry::span(NAMES[level]);
                comm.barrier();
                let _ = comm.allgather(comm.rank());
                nest(comm, level + 1, depth);
            }
            nest(&comm, 0, depth);
            telemetry::finish_rank().expect("recorder was installed")
        });
        let reports = match reports {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::Fail(format!("world failed: {e}"))),
        };
        for rep in &reports {
            prop_assert!(rep.spans_well_nested(), "rank {} mis-nested", rep.rank);
            prop_assert_eq!(rep.nesting_errors, 0);
            prop_assert_eq!(
                rep.spans.len(),
                depth,
                "rank {} must record one span per nesting level",
                rep.rank
            );
            for (i, name) in NAMES[..depth].iter().enumerate() {
                prop_assert!(rep.spans.iter().any(|s| s.name == *name && s.depth == i as u16));
            }
        }
    }
}

/// A rank that dies inside an instrumented phase must be reported with
/// that phase's name — both in the world-level reason and in the
/// per-rank failure status.
#[test]
fn world_error_names_the_failing_phase() {
    let err = try_run(3, |comm| {
        telemetry::begin_rank(comm.rank());
        let _outer = telemetry::span("pipeline");
        if comm.rank() == 1 {
            let _inner = telemetry::span("doomed.phase");
            panic!("chaos: casualty inside a span");
        }
        comm.try_barrier()?;
        let _ = telemetry::finish_rank();
        Ok(comm.rank())
    })
    .unwrap_err();
    assert_eq!(err.origin, 1);
    assert!(
        err.reason.contains("in phase 'doomed.phase'"),
        "reason must name the innermost open span, got: {}",
        err.reason
    );
    let failure = err.failures.iter().find(|f| f.rank == 1).unwrap();
    assert!(
        format!("{}", failure.error).contains("casualty"),
        "origin failure must carry the panic message"
    );
}

/// The deadlock diagnostic maps raw collective tag numbers back to the
/// phase (span) that issued the collective, so a stuck run names the
/// algorithm it is stuck in rather than an opaque sequence number.
#[test]
fn deadlock_diagnostic_names_the_stuck_phase() {
    let opts = RunOptions {
        recv_timeout: Duration::from_millis(200),
        faults: None,
    };
    let err = try_run_with(2, opts, |comm| {
        telemetry::begin_rank(comm.rank());
        if comm.rank() == 0 {
            // rank 0 enters the collective inside a named span;
            // rank 1 never joins, so rank 0 times out
            let _span = telemetry::span("stuck.phase");
            comm.try_barrier()?;
        }
        let _ = telemetry::finish_rank();
        Ok(comm.rank())
    })
    .unwrap_err();
    assert!(
        err.reason.contains("stuck.phase"),
        "timeout reason must name the stuck phase, got: {}",
        err.reason
    );
}
