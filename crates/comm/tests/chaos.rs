//! Chaos tests of the comm layer: rank failures must surface as typed
//! [`WorldError`]s promptly (no deadlocks), and deterministic fault
//! injection (delays, reordering) must never change the result of a
//! correct program.

use proptest::prelude::*;
use quadforest_comm::{
    run, run_with_faults, try_run, try_run_with, CommError, FaultPlan, RankError, RunOptions,
};
use std::time::{Duration, Instant};

/// The regression test for the old silent-hang hazard: before the
/// fault-tolerant rewrite, a rank panic left every peer blocked forever
/// inside `recv` ("all peers hung up" at best, a deadlock at worst).
/// Now the panic aborts the world: `try_run` returns within the 5 s
/// acceptance bound and names the failing rank.
#[test]
fn rank_panic_mid_barrier_reports_within_deadline() {
    let start = Instant::now();
    let err = try_run(4, |c| {
        c.try_barrier()?; // everyone passes the first barrier
        if c.rank() == 2 {
            panic!("chaos: rank 2 dies mid-collective");
        }
        c.try_barrier()?; // peers block here until the abort wakes them
        Ok(c.rank())
    })
    .unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "abort must propagate promptly, not by timeout"
    );
    assert_eq!(err.origin, 2, "the report must identify the failing rank");
    assert!(err.origin_panicked());
    assert!(err.reason.contains("rank 2 dies"));
    for f in err.failures.iter().filter(|f| f.rank != 2) {
        assert!(
            matches!(
                f.error,
                RankError::Failed(CommError::Aborted { origin: 2, .. })
            ),
            "peers unwind as collateral of rank 2, got {:?}",
            f.error
        );
    }
}

/// The same panic propagation at every acceptance-criteria world size.
#[test]
fn rank_panic_is_reported_at_all_sizes() {
    for p in [2usize, 4, 8] {
        let victim = p / 2;
        let start = Instant::now();
        let err = try_run(p, move |c| {
            if c.rank() == victim {
                panic!("chaos: scheduled death");
            }
            c.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "P={p} hung");
        assert_eq!(err.origin, victim, "P={p} misreported the origin");
    }
}

/// A genuine deadlock (missing sender) is broken by the recv timeout,
/// and the diagnostic names what each rank was blocked on.
#[test]
fn deadlock_is_diagnosed_not_eternal() {
    let opts = RunOptions {
        recv_timeout: Duration::from_millis(200),
        faults: None,
    };
    let start = Instant::now();
    let err = try_run_with(3, opts, |c| {
        if c.rank() == 0 {
            // rank 0 waits for a message rank 1 never sends
            let _: u64 = c.try_recv(1, 42)?;
        }
        c.try_barrier()?;
        Ok(())
    })
    .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5));
    let timeout = err
        .failures
        .iter()
        .find_map(|f| match &f.error {
            RankError::Failed(CommError::Timeout { diagnostic, .. }) => Some(diagnostic.clone()),
            _ => None,
        })
        .expect("one rank must report the timeout with a diagnostic");
    assert!(timeout.contains("deadlock diagnostic"));
    assert!(timeout.contains("waiting on src=1 tag=user:42"));
}

/// Every collective, all acceptance world sizes, a sweep of fault
/// seeds: delay/reorder plans must be invisible in the results.
#[test]
fn collectives_survive_fault_sweep() {
    for p in [1usize, 2, 3, 4, 7, 8] {
        let baseline = run(p, collective_workout);
        for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
            let plan = FaultPlan::new(seed)
                .with_delays(0.2, Duration::from_micros(120))
                .with_reordering(0.25);
            let faulty = run_with_faults(p, plan, collective_workout)
                .unwrap_or_else(|e| panic!("P={p} seed={seed}: {e}"));
            assert_eq!(baseline, faulty, "P={p} seed={seed} changed a result");
        }
    }
}

/// One round through every collective the forest algorithms use,
/// returning everything observable.
#[allow(clippy::type_complexity)]
fn collective_workout(
    c: quadforest_comm::Comm,
) -> (
    Vec<u64>,
    u64,
    u64,
    u64,
    String,
    Option<Vec<u64>>,
    Vec<Vec<u64>>,
) {
    let me = c.rank() as u64;
    let p = c.size();
    // point-to-point ring warm-up
    if p > 1 {
        c.send((c.rank() + 1) % p, 9, me * 3 + 1);
        let from_prev: u64 = c.recv((c.rank() + p - 1) % p, 9);
        assert_eq!(from_prev, (((c.rank() + p - 1) % p) as u64) * 3 + 1);
    }
    let gathered = c.allgather(me * 7);
    let sum = c.allreduce_sum(me + 1);
    let scan = c.exscan_sum(me + 1);
    let max = c.allreduce(me, |a, b| *a.max(b));
    let word = c.bcast(0, (c.rank() == 0).then(|| "broadcast payload".to_string()));
    let rooted = c.gather(p - 1, me * me);
    c.barrier();
    let table = c.alltoallv((0..p).map(|d| vec![me, d as u64]).collect());
    (gathered, sum, scan, max, word, rooted, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random fault plans (random seed, probabilities, delay ceilings)
    /// never change collective results at a random world size.
    #[test]
    fn random_fault_plans_are_invisible(
        seed in any::<u64>(),
        p in 1usize..=8,
        delay_pct in 0u32..=40,
        reorder_pct in 0u32..=40,
    ) {
        let plan = FaultPlan::new(seed)
            .with_delays(delay_pct as f64 / 100.0, Duration::from_micros(80))
            .with_reordering(reorder_pct as f64 / 100.0);
        let baseline = run(p, collective_workout);
        let faulty = run_with_faults(p, plan, collective_workout);
        let faulty = match faulty {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::Fail(format!("world failed: {e}"))),
        };
        prop_assert_eq!(baseline, faulty);
    }

    /// A scheduled panic at a random operation index either fires (the
    /// rank reaches that op) and is reported with the right origin, or
    /// the run completes untouched — never a hang.
    #[test]
    fn scheduled_panics_never_hang(
        seed in any::<u64>(),
        victim in 0usize..4,
        op in 0u64..6,
    ) {
        let start = Instant::now();
        let plan = FaultPlan::new(seed).with_panic_at(victim, op);
        let out = run_with_faults(4, plan, |c| {
            for _ in 0..3 {
                c.barrier();
                let _ = c.allgather(c.rank());
            }
            c.rank()
        });
        prop_assert!(start.elapsed() < Duration::from_secs(10), "hang suspected");
        match out {
            Ok(v) => prop_assert_eq!(v, vec![0, 1, 2, 3]),
            Err(e) => {
                prop_assert_eq!(e.origin, victim);
                prop_assert!(e.reason.contains("scheduled panic"));
            }
        }
    }
}

/// Identical plans replay identical faults: the whole point of
/// seed-driven injection is that a failure found in CI reproduces
/// locally from the seed alone.
#[test]
fn fault_injection_is_replayable() {
    let plan = || {
        FaultPlan::new(0xC1A0_5EED)
            .with_delays(0.3, Duration::from_micros(100))
            .with_reordering(0.3)
            .with_panic_at(1, 4)
    };
    let a = run_with_faults(4, plan(), chaos_victim_program);
    let b = run_with_faults(4, plan(), chaos_victim_program);
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x, y),
        (Err(x), Err(y)) => {
            assert_eq!(x.origin, y.origin);
            assert_eq!(x.reason, y.reason);
        }
        (a, b) => panic!("replay diverged: {a:?} vs {b:?}"),
    }
}

fn chaos_victim_program(c: quadforest_comm::Comm) -> Vec<usize> {
    for _ in 0..4 {
        c.barrier();
    }
    c.allgather(c.rank())
}
