//! The recovery supervisor: retry a collective program across world
//! failures.
//!
//! [`run_with_recovery`] wraps [`try_run_with`](crate::try_run_with):
//! when any rank dies (panic, typed failure, or receive timeout) the
//! whole world unwinds into a [`WorldError`]; the supervisor tears the
//! world down, waits out a bounded, jittered exponential backoff
//! ([`RecoveryPolicy`]), rebuilds a fresh world, and invokes the
//! program again with an incremented [`Attempt`]. The program is
//! responsible for making attempts idempotent — typically by
//! checkpointing progress (`Forest::save_checkpoint`) and restoring
//! from the newest valid generation when `attempt.is_retry()`.
//!
//! [`run_with_recovery_program`] is the backend-generic variant: the
//! same supervisor loop around a *named* program and a
//! [`Backend`](crate::Backend), so recovery also restarts real rank
//! **processes** on the socket backend — including after a `kill -9`,
//! which no in-process supervisor can survive.
//!
//! Fault injection stays deterministic: [`RecoveryOptions::plans`]
//! assigns one optional [`FaultPlan`] per attempt index, so a chaos
//! test can kill a specific rank at a specific operation on attempt 0
//! and let attempt 1 run clean — same outcome every run.

use crate::{
    fault, try_run_with, Backend, Comm, CommError, FaultPlan, ProgramRegistry, RunOptions,
    WorldError,
};
use quadforest_telemetry as telemetry;
use std::fmt;
use std::time::Duration;

/// Backoff and retry policy of the recovery supervisor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total number of attempts (first try included). Must be ≥ 1.
    pub max_attempts: usize,
    /// Backoff before retry `k` is `base_delay · 2^(k-1)`, capped at
    /// [`RecoveryPolicy::max_delay`], then stretched by jitter.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep (after jitter).
    pub max_delay: Duration,
    /// Jitter amplitude in parts-per-million of the computed backoff:
    /// the sleep is stretched by a *deterministic* pseudo-random factor
    /// in `[1, 1 + jitter_ppm/1e6]`, keyed by the attempt index. Zero
    /// disables jitter. Deterministic so chaos tests replay exactly;
    /// still decorrelates supervisors started at different attempts.
    pub jitter_ppm: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            jitter_ppm: 0,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff to sleep after failed attempt `index` (0-based):
    /// bounded exponential plus deterministic jitter.
    pub fn backoff_for(&self, index: usize) -> Duration {
        let base = self
            .base_delay
            .saturating_mul(1u32 << index.min(20) as u32)
            .min(self.max_delay);
        if self.jitter_ppm == 0 {
            return base;
        }
        // deterministic jitter: hash the attempt index, scale into
        // [0, jitter_ppm] ppm, stretch, re-cap
        let h = fault::mix64(index as u64 ^ 0x7265_636F_7665_7279); // "recovery"
        let ppm = (h % (self.jitter_ppm as u64 + 1)) as u32;
        let jitter = base.mul_f64(ppm as f64 / 1_000_000.0);
        (base + jitter).min(self.max_delay)
    }

    /// Surface the chosen policy in the process-global telemetry
    /// registry as gauges, so post-mortems can see what the supervisor
    /// was configured to do.
    fn publish(&self) {
        let g = telemetry::global();
        g.gauge("recovery.policy.max_attempts")
            .set(self.max_attempts as u64);
        g.gauge("recovery.policy.base_delay_ns")
            .set(self.base_delay.as_nanos() as u64);
        g.gauge("recovery.policy.max_delay_ns")
            .set(self.max_delay.as_nanos() as u64);
        g.gauge("recovery.policy.jitter_ppm")
            .set(self.jitter_ppm as u64);
    }
}

// A RecoveryPolicy doubles as the TCP backend's *reconnect* schedule
// and must travel to spawned rank processes (hex-encoded in an
// environment variable), so it needs a wire form.
impl quadforest_core::Wire for RecoveryPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.max_attempts.encode(out);
        self.base_delay.encode(out);
        self.max_delay.encode(out);
        self.jitter_ppm.encode(out);
    }

    fn decode(
        r: &mut quadforest_core::wire::WireReader<'_>,
    ) -> Result<Self, quadforest_core::wire::WireError> {
        Ok(RecoveryPolicy {
            max_attempts: usize::decode(r)?,
            base_delay: Duration::decode(r)?,
            max_delay: Duration::decode(r)?,
            jitter_ppm: u32::decode(r)?,
        })
    }
}

/// Options for [`run_with_recovery`]: the retry/backoff policy plus
/// per-attempt world configuration.
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Retry and backoff policy.
    pub policy: RecoveryPolicy,
    /// Receive timeout handed to every attempt's world (see
    /// [`RunOptions::recv_timeout`]).
    pub recv_timeout: Duration,
    /// Deterministic fault plan per attempt index; attempts beyond the
    /// end of the vector run fault-free.
    pub plans: Vec<Option<FaultPlan>>,
}

// manual impl: a derived default would give recv_timeout ZERO, which
// times out instantly; this must match RunOptions::default()
impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            policy: RecoveryPolicy::default(),
            recv_timeout: Duration::from_secs(60),
            plans: Vec::new(),
        }
    }
}

impl RecoveryOptions {
    /// Options with the given policy and defaults elsewhere.
    pub fn with_policy(policy: RecoveryPolicy) -> Self {
        RecoveryOptions {
            policy,
            ..Self::default()
        }
    }
}

/// Which attempt a program invocation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Zero-based attempt index.
    pub index: usize,
}

impl Attempt {
    /// The first attempt.
    pub fn first() -> Self {
        Attempt { index: 0 }
    }

    /// True on every attempt after the first — the cue to restore from
    /// the last checkpoint instead of starting fresh.
    pub fn is_retry(&self) -> bool {
        self.index > 0
    }
}

/// A successful recovery outcome: the per-rank results plus the
/// failure history it took to get there.
#[derive(Debug)]
pub struct RecoveryOutcome<R> {
    /// Per-rank return values of the successful attempt, in rank order.
    pub values: Vec<R>,
    /// Number of attempts executed, including the successful one.
    pub attempts: usize,
    /// World errors of the failed attempts, oldest first.
    pub failures: Vec<WorldError>,
    /// Total time slept in backoff between attempts.
    pub total_backoff: Duration,
}

/// All attempts exhausted without a successful run.
#[derive(Debug)]
pub struct RecoveryError {
    /// Number of attempts executed.
    pub attempts: usize,
    /// World errors of every attempt, oldest first.
    pub failures: Vec<WorldError>,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recovery gave up after {} attempts", self.attempts)?;
        if let Some(last) = self.failures.last() {
            write!(f, "; last failure: {last}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RecoveryError {}

/// The shared supervisor loop: `attempt_fn(index, run_opts)` runs one
/// world; failures accumulate and back off per the policy.
fn supervise<R>(
    opts: &RecoveryOptions,
    mut attempt_fn: impl FnMut(usize, RunOptions) -> Result<Vec<R>, WorldError>,
) -> Result<RecoveryOutcome<R>, RecoveryError> {
    assert!(opts.policy.max_attempts >= 1, "need at least one attempt");
    opts.policy.publish();
    let global = telemetry::global();
    let mut failures: Vec<WorldError> = Vec::new();
    let mut total_backoff = Duration::ZERO;
    for index in 0..opts.policy.max_attempts {
        global.counter("recovery.attempts").add(1);
        let run_opts = RunOptions {
            recv_timeout: opts.recv_timeout,
            faults: opts.plans.get(index).cloned().flatten(),
        };
        match attempt_fn(index, run_opts) {
            Ok(values) => {
                return Ok(RecoveryOutcome {
                    values,
                    attempts: index + 1,
                    failures,
                    total_backoff,
                })
            }
            Err(world_err) => {
                failures.push(world_err);
                if index + 1 < opts.policy.max_attempts {
                    let backoff = opts.policy.backoff_for(index);
                    telemetry::flight::event(
                        telemetry::flight::FlightKind::RecoveryRetry,
                        failures.last().map(|f| f.origin as u32).unwrap_or(0),
                        index as u64,
                        0,
                    );
                    global.counter("recovery.retries").add(1);
                    global
                        .histogram("recovery.backoff_ns")
                        .record(backoff.as_nanos() as u64);
                    total_backoff += backoff;
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    global.counter("recovery.giveups").add(1);
    Err(RecoveryError {
        attempts: opts.policy.max_attempts,
        failures,
    })
}

/// Run `f` once per rank under the recovery supervisor: on world
/// failure, back off per the [`RecoveryPolicy`] and retry with a fresh
/// world, up to `max_attempts` attempts total. Thread backend only;
/// for both backends use [`run_with_recovery_program`].
///
/// Recovery activity lands in the process-global telemetry registry
/// ([`telemetry::global`]) rather than any per-rank recorder, because
/// the supervisor outlives every rank thread: counters
/// `recovery.attempts` / `recovery.retries` / `recovery.giveups`,
/// histogram `recovery.backoff_ns`, and `recovery.policy.*` gauges.
pub fn run_with_recovery<F, R>(
    size: usize,
    opts: RecoveryOptions,
    f: F,
) -> Result<RecoveryOutcome<R>, RecoveryError>
where
    F: Fn(Comm, Attempt) -> Result<R, CommError> + Send + Sync,
    R: Send,
{
    supervise(&opts, |index, run_opts| {
        let attempt = Attempt { index };
        try_run_with(size, run_opts, |comm| f(comm, attempt))
    })
}

/// Backend-generic recovery: run registered program `name` on
/// `backend` under the same supervisor loop as [`run_with_recovery`].
/// On [`Backend::Sockets`] every retry spawns a **fresh set of rank
/// processes** — the supervisor restarts real processes from the
/// program's last good checkpoint, surviving even a `kill -9` that
/// took a rank down without unwinding. Reconnection activity is
/// counted in `comm.reconnect.attempts` (global registry).
pub fn run_with_recovery_program(
    backend: &Backend,
    size: usize,
    opts: RecoveryOptions,
    registry: &ProgramRegistry,
    name: &str,
    args: &[u8],
) -> Result<RecoveryOutcome<Vec<u8>>, RecoveryError> {
    supervise(&opts, |index, run_opts| {
        if index > 0 {
            if let Backend::Sockets(_) | Backend::Tcp(_) = backend {
                telemetry::global()
                    .counter("comm.reconnect.attempts")
                    .add(1);
            }
        }
        crate::try_run_program(
            backend,
            size,
            &run_opts,
            registry,
            name,
            args,
            Attempt { index },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_attempt_success_is_passthrough() {
        let out = run_with_recovery(3, RecoveryOptions::default(), |comm, attempt| {
            assert!(!attempt.is_retry());
            Ok(comm.allreduce_sum(comm.rank() as u64 + 1))
        })
        .unwrap();
        assert_eq!(out.values, vec![6, 6, 6]);
        assert_eq!(out.attempts, 1);
        assert!(out.failures.is_empty());
        assert_eq!(out.total_backoff, Duration::ZERO);
    }

    #[test]
    fn injected_death_recovers_on_retry() {
        // attempt 0: rank 1 dies at its 3rd operation; attempt 1: clean
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                base_delay: Duration::from_millis(1),
                ..RecoveryPolicy::default()
            },
            plans: vec![Some(FaultPlan::new(5).with_panic_at(1, 2))],
            ..RecoveryOptions::default()
        };
        let out = run_with_recovery(4, opts, |comm, attempt| {
            let mut acc = 0;
            for _ in 0..4 {
                acc = comm.allreduce_sum(acc + 1);
            }
            Ok((attempt.index, acc))
        })
        .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].origin, 1);
        assert!(out.failures[0].origin_panicked());
        assert!(out.values.iter().all(|(a, _)| *a == 1));
        assert!(out.total_backoff >= Duration::from_millis(1));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let tries = AtomicUsize::new(0);
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(100),
                ..RecoveryPolicy::default()
            },
            // every attempt is poisoned
            plans: (0..3)
                .map(|i| Some(FaultPlan::new(i).with_panic_at(0, 0)))
                .collect(),
            ..RecoveryOptions::default()
        };
        let err = run_with_recovery(2, opts, |comm, _| {
            if comm.rank() == 0 {
                tries.fetch_add(1, Ordering::SeqCst);
            }
            comm.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(err.failures.len(), 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert!(err.to_string().contains("gave up after 3 attempts"));
    }

    #[test]
    fn backoff_is_bounded() {
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(3),
                ..RecoveryPolicy::default()
            },
            plans: (0..4)
                .map(|i| Some(FaultPlan::new(i).with_panic_at(0, 0)))
                .collect(),
            ..RecoveryOptions::default()
        };
        let err = run_with_recovery(2, opts, |comm, _| {
            comm.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.attempts, 4);
        // sleeps were 2, 3 (capped), 3 (capped) — all within the cap
        let snap = telemetry::global().snapshot();
        use quadforest_telemetry::MetricKind;
        assert!(snap
            .get("recovery.backoff_ns", MetricKind::Histogram)
            .is_some());
    }

    #[test]
    fn jitter_is_deterministic_and_capped() {
        let policy = RecoveryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_ppm: 500_000, // up to +50 %
        };
        for index in 0..8 {
            let a = policy.backoff_for(index);
            let b = policy.backoff_for(index);
            assert_eq!(a, b, "jitter must be deterministic per attempt");
            assert!(a <= policy.max_delay, "attempt {index}: {a:?} over cap");
            let unjittered = RecoveryPolicy {
                jitter_ppm: 0,
                ..policy.clone()
            }
            .backoff_for(index);
            assert!(a >= unjittered, "jitter never shortens the sleep");
            assert!(
                a <= unjittered.mul_f64(1.5) + Duration::from_nanos(1) || a == policy.max_delay,
                "attempt {index}: {a:?} exceeds +50 % of {unjittered:?}"
            );
        }
        // zero jitter reproduces the plain exponential schedule
        let plain = RecoveryPolicy {
            jitter_ppm: 0,
            ..policy
        };
        assert_eq!(plain.backoff_for(0), Duration::from_millis(10));
        assert_eq!(plain.backoff_for(1), Duration::from_millis(20));
        assert_eq!(plain.backoff_for(4), Duration::from_millis(100)); // capped
    }

    #[test]
    fn policy_gauges_are_published() {
        let opts = RecoveryOptions {
            policy: RecoveryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_micros(50),
                max_delay: Duration::from_millis(1),
                jitter_ppm: 123,
            },
            ..RecoveryOptions::default()
        };
        let _ = run_with_recovery(2, opts, |comm, _| comm.try_allreduce_sum(1));
        use quadforest_telemetry::MetricKind;
        let snap = telemetry::global().snapshot();
        let gauge = |name: &str| {
            snap.get(name, MetricKind::Gauge)
                .unwrap_or_else(|| panic!("{name} gauge missing"))
                .values[0]
        };
        assert_eq!(gauge("recovery.policy.max_attempts"), 2);
        assert_eq!(gauge("recovery.policy.jitter_ppm"), 123);
    }
}
