//! The recovery supervisor: retry a collective program across world
//! failures.
//!
//! [`run_with_recovery`] wraps [`try_run_with`](crate::try_run_with):
//! when any rank dies (panic, typed failure, or receive timeout) the
//! whole world unwinds into a [`WorldError`]; the supervisor tears the
//! world down, waits out a bounded exponential backoff, rebuilds a
//! fresh world, and invokes the program again with an incremented
//! [`Attempt`]. The program is responsible for making attempts
//! idempotent — typically by checkpointing progress
//! (`Forest::save_checkpoint`) and restoring from the newest valid
//! generation when `attempt.is_retry()`.
//!
//! Fault injection stays deterministic: [`RecoveryOptions::plans`]
//! assigns one optional [`FaultPlan`] per attempt index, so a chaos
//! test can kill a specific rank at a specific operation on attempt 0
//! and let attempt 1 run clean — same outcome every run.

use crate::{try_run_with, Comm, CommError, FaultPlan, RunOptions, WorldError};
use quadforest_telemetry as telemetry;
use std::fmt;
use std::time::Duration;

/// Policy knobs for [`run_with_recovery`].
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Total number of attempts (first try included). Must be ≥ 1.
    pub max_attempts: usize,
    /// Backoff before retry `k` is `backoff_base · 2^(k-1)`, capped at
    /// [`RecoveryOptions::backoff_max`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// Receive timeout handed to every attempt's world (see
    /// [`RunOptions::recv_timeout`]).
    pub recv_timeout: Duration,
    /// Deterministic fault plan per attempt index; attempts beyond the
    /// end of the vector run fault-free.
    pub plans: Vec<Option<FaultPlan>>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(2),
            recv_timeout: Duration::from_secs(60),
            plans: Vec::new(),
        }
    }
}

/// Which attempt a program invocation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Zero-based attempt index.
    pub index: usize,
}

impl Attempt {
    /// True on every attempt after the first — the cue to restore from
    /// the last checkpoint instead of starting fresh.
    pub fn is_retry(&self) -> bool {
        self.index > 0
    }
}

/// A successful [`run_with_recovery`] outcome: the per-rank results
/// plus the failure history it took to get there.
#[derive(Debug)]
pub struct RecoveryOutcome<R> {
    /// Per-rank return values of the successful attempt, in rank order.
    pub values: Vec<R>,
    /// Number of attempts executed, including the successful one.
    pub attempts: usize,
    /// World errors of the failed attempts, oldest first.
    pub failures: Vec<WorldError>,
    /// Total time slept in backoff between attempts.
    pub total_backoff: Duration,
}

/// All attempts exhausted without a successful run.
#[derive(Debug)]
pub struct RecoveryError {
    /// Number of attempts executed.
    pub attempts: usize,
    /// World errors of every attempt, oldest first.
    pub failures: Vec<WorldError>,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recovery gave up after {} attempts", self.attempts)?;
        if let Some(last) = self.failures.last() {
            write!(f, "; last failure: {last}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RecoveryError {}

/// Run `f` once per rank under the recovery supervisor: on world
/// failure, back off exponentially and retry with a fresh world, up to
/// [`RecoveryOptions::max_attempts`] attempts total.
///
/// Recovery activity lands in the process-global telemetry registry
/// ([`telemetry::global`]) rather than any per-rank recorder, because
/// the supervisor outlives every rank thread: counters
/// `recovery.attempts` / `recovery.retries` / `recovery.giveups` and
/// histogram `recovery.backoff_ns`.
pub fn run_with_recovery<F, R>(
    size: usize,
    opts: RecoveryOptions,
    f: F,
) -> Result<RecoveryOutcome<R>, RecoveryError>
where
    F: Fn(Comm, Attempt) -> Result<R, CommError> + Send + Sync,
    R: Send,
{
    assert!(opts.max_attempts >= 1, "need at least one attempt");
    let global = telemetry::global();
    let mut failures: Vec<WorldError> = Vec::new();
    let mut total_backoff = Duration::ZERO;
    for index in 0..opts.max_attempts {
        global.counter("recovery.attempts").add(1);
        let run_opts = RunOptions {
            recv_timeout: opts.recv_timeout,
            faults: opts.plans.get(index).cloned().flatten(),
        };
        let attempt = Attempt { index };
        match try_run_with(size, run_opts, |comm| f(comm, attempt)) {
            Ok(values) => {
                return Ok(RecoveryOutcome {
                    values,
                    attempts: index + 1,
                    failures,
                    total_backoff,
                })
            }
            Err(world_err) => {
                failures.push(world_err);
                if index + 1 < opts.max_attempts {
                    // bounded exponential backoff: base · 2^index, capped
                    let backoff = opts
                        .backoff_base
                        .saturating_mul(1u32 << index.min(20) as u32)
                        .min(opts.backoff_max);
                    global.counter("recovery.retries").add(1);
                    global
                        .histogram("recovery.backoff_ns")
                        .record(backoff.as_nanos() as u64);
                    total_backoff += backoff;
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    global.counter("recovery.giveups").add(1);
    Err(RecoveryError {
        attempts: opts.max_attempts,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_attempt_success_is_passthrough() {
        let out = run_with_recovery(3, RecoveryOptions::default(), |comm, attempt| {
            assert!(!attempt.is_retry());
            Ok(comm.allreduce_sum(comm.rank() as u64 + 1))
        })
        .unwrap();
        assert_eq!(out.values, vec![6, 6, 6]);
        assert_eq!(out.attempts, 1);
        assert!(out.failures.is_empty());
        assert_eq!(out.total_backoff, Duration::ZERO);
    }

    #[test]
    fn injected_death_recovers_on_retry() {
        // attempt 0: rank 1 dies at its 3rd operation; attempt 1: clean
        let opts = RecoveryOptions {
            backoff_base: Duration::from_millis(1),
            plans: vec![Some(FaultPlan::new(5).with_panic_at(1, 2))],
            ..RecoveryOptions::default()
        };
        let out = run_with_recovery(4, opts, |comm, attempt| {
            let mut acc = 0;
            for _ in 0..4 {
                acc = comm.allreduce_sum(acc + 1);
            }
            Ok((attempt.index, acc))
        })
        .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].origin, 1);
        assert!(out.failures[0].origin_panicked());
        assert!(out.values.iter().all(|(a, _)| *a == 1));
        assert!(out.total_backoff >= Duration::from_millis(1));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let tries = AtomicUsize::new(0);
        let opts = RecoveryOptions {
            max_attempts: 3,
            backoff_base: Duration::from_micros(100),
            // every attempt is poisoned
            plans: (0..3)
                .map(|i| Some(FaultPlan::new(i).with_panic_at(0, 0)))
                .collect(),
            ..RecoveryOptions::default()
        };
        let err = run_with_recovery(2, opts, |comm, _| {
            if comm.rank() == 0 {
                tries.fetch_add(1, Ordering::SeqCst);
            }
            comm.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(err.failures.len(), 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert!(err.to_string().contains("gave up after 3 attempts"));
    }

    #[test]
    fn backoff_is_bounded() {
        let opts = RecoveryOptions {
            max_attempts: 4,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(3),
            plans: (0..4)
                .map(|i| Some(FaultPlan::new(i).with_panic_at(0, 0)))
                .collect(),
            ..RecoveryOptions::default()
        };
        let err = run_with_recovery(2, opts, |comm, _| {
            comm.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.attempts, 4);
        // sleeps were 2, 3 (capped), 3 (capped) — all within the cap
        let snap = telemetry::global().snapshot();
        use quadforest_telemetry::MetricKind;
        assert!(snap
            .get("recovery.backoff_ns", MetricKind::Histogram)
            .is_some());
    }
}
