//! # quadforest-comm
//!
//! An in-process message-passing simulator standing in for MPI.
//!
//! The paper benchmarks p4est on up to 512 MPI ranks; this environment is
//! a single machine, so rank parallelism is *simulated*: [`run`] spawns
//! one OS thread per rank, each executing the same rank program against a
//! [`Comm`] handle that provides tagged point-to-point messages and the
//! collectives the forest algorithms need (`barrier`, `allgather`,
//! `allreduce`, `exscan`, `alltoallv`, `bcast`). Messages are typed
//! (`Box<dyn Any>` under the hood) and delivery is per-sender FIFO, like
//! MPI's non-overtaking guarantee.
//!
//! The simulator is deterministic at the algorithm level: all forest
//! algorithms built on it produce rank-count-independent results, which
//! the integration tests assert by comparing partitions and ghost layers
//! across different `P`.

#![warn(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// A tagged, typed message in flight.
struct Msg {
    src: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// Per-rank communicator handle. Not `Sync`: each rank owns its handle.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    /// Out-of-order messages parked until a matching `recv`.
    parked: RefCell<VecDeque<Msg>>,
    /// Sequence number for collective operations; identical call order on
    /// every rank yields matching tags without global coordination.
    coll_seq: Cell<u64>,
}

/// User tags live below this bound; collective-internal tags above it.
const COLL_TAG_BASE: u64 = 1 << 48;

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `data` to `dest` with `tag`. Never blocks (buffered channel).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, data: T) {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^48");
        self.send_raw(dest, tag, data);
    }

    fn send_raw<T: Send + 'static>(&self, dest: usize, tag: u64, data: T) {
        self.senders[dest]
            .send(Msg {
                src: self.rank,
                tag,
                payload: Box::new(data),
            })
            .expect("peer rank hung up before shutdown");
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Messages from the same sender are non-overtaking per tag.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^48");
        self.recv_raw(src, tag)
    }

    fn recv_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        // first serve a parked message if one matches
        {
            let mut parked = self.parked.borrow_mut();
            if let Some(pos) = parked.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = parked.remove(pos).unwrap();
                return *msg
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("type mismatch on tag {tag} from {src}"));
            }
        }
        loop {
            let msg = self.inbox.recv().expect("all peers hung up");
            if msg.src == src && msg.tag == tag {
                return *msg
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("type mismatch on tag {tag} from {src}"));
            }
            self.parked.borrow_mut().push_back(msg);
        }
    }

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLL_TAG_BASE + seq
    }

    /// Synchronize all ranks (dissemination barrier).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        let mut round = 1usize;
        let mut round_no = 0u64;
        while round < self.size {
            let dest = (self.rank + round) % self.size;
            let src = (self.rank + self.size - round) % self.size;
            self.send_raw(dest, tag + (round_no << 32), ());
            self.recv_raw::<()>(src, tag + (round_no << 32));
            round <<= 1;
            round_no += 1;
        }
    }

    /// Gather one value from every rank, returned in rank order on all
    /// ranks.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let tag = self.next_coll_tag();
        for dest in 0..self.size {
            if dest != self.rank {
                self.send_raw(dest, tag, value.clone());
            }
        }
        (0..self.size)
            .map(|src| {
                if src == self.rank {
                    value.clone()
                } else {
                    self.recv_raw::<T>(src, tag)
                }
            })
            .collect()
    }

    /// Reduce with an associative `op` over all ranks; every rank gets
    /// the result. Reduction order is rank order, hence deterministic.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let all = self.allgather(value);
        let mut it = all.into_iter();
        let first = it.next().expect("size >= 1");
        it.fold(first, |acc, v| op(&acc, &v))
    }

    /// Sum of a `u64` across all ranks.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Exclusive prefix reduction in rank order; rank 0 receives
    /// `T::default()`.
    pub fn exscan<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Default + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let all = self.allgather(value);
        all[..self.rank]
            .iter()
            .fold(T::default(), |acc, v| op(&acc, v))
    }

    /// Exclusive prefix sum of a `u64`.
    pub fn exscan_sum(&self, value: u64) -> u64 {
        self.exscan(value, |a, b| a + b)
    }

    /// Broadcast from `root` to every rank. Non-root ranks pass `None`.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let v = value.expect("root must supply the value");
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, v.clone());
                }
            }
            v
        } else {
            self.recv_raw::<T>(root, tag)
        }
    }

    /// Gather one value from every rank onto `root` (rank order);
    /// other ranks receive `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..self.size {
                if src != root {
                    out[src] = Some(self.recv_raw::<T>(src, tag));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// Scatter one value per rank from `root`; non-root ranks pass
    /// `None` and receive their slice.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let values = values.expect("root must supply one value per rank");
            assert_eq!(values.len(), self.size);
            let mut mine = None;
            for (dest, v) in values.into_iter().enumerate() {
                if dest == root {
                    mine = Some(v);
                } else {
                    self.send_raw(dest, tag, v);
                }
            }
            mine.expect("root slot present")
        } else {
            self.recv_raw::<T>(root, tag)
        }
    }

    /// Personalized all-to-all: `outgoing[d]` is delivered to rank `d`;
    /// returns the incoming vectors indexed by source rank.
    pub fn alltoallv<T: Send + 'static>(&self, mut outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(outgoing.len(), self.size);
        let tag = self.next_coll_tag();
        let mut mine = Some(std::mem::take(&mut outgoing[self.rank]));
        for (dest, data) in outgoing.into_iter().enumerate() {
            if dest != self.rank {
                self.send_raw(dest, tag, data);
            }
        }
        (0..self.size)
            .map(|src| {
                if src == self.rank {
                    mine.take().expect("self slot consumed once")
                } else {
                    self.recv_raw::<Vec<T>>(src, tag)
                }
            })
            .collect()
    }
}

/// Execute `f` once per rank on `size` threads and collect the per-rank
/// results in rank order. Panics in any rank propagate to the caller.
pub fn run<F, R>(size: usize, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    assert!(size > 0);
    let mut senders = Vec::with_capacity(size);
    let mut inboxes = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(rx);
    }
    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            let comm = Comm {
                rank,
                size,
                senders: senders.clone(),
                inbox,
                parked: RefCell::new(VecDeque::new()),
                coll_seq: Cell::new(0),
            };
            let f = &f;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(2 << 20)
                    .spawn_scoped(scope, move || f(comm))
                    .expect("spawn rank thread"),
            );
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_trivia() {
        let r = run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            c.barrier();
            assert_eq!(c.allgather(7u32), vec![7]);
            assert_eq!(c.allreduce_sum(5), 5);
            assert_eq!(c.exscan_sum(5), 0);
            42u32
        });
        assert_eq!(r, vec![42]);
    }

    #[test]
    fn point_to_point_ring() {
        let n = 8;
        let sums = run(n, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, c.rank() as u64);
            let got: u64 = c.recv(prev, 1);
            got + c.rank() as u64
        });
        for (rank, s) in sums.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(*s, (prev + rank) as u64);
        }
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let r = run(2, |c| {
            if c.rank() == 0 {
                // send two tags; the receiver asks for the later one first
                c.send(1, 10, 1u32);
                c.send(1, 20, 2u32);
                0
            } else {
                let b: u32 = c.recv(0, 20);
                let a: u32 = c.recv(0, 10);
                (b * 10 + a) as i32
            }
        });
        assert_eq!(r[1], 21);
    }

    #[test]
    fn same_tag_is_fifo_per_sender() {
        let r = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 5, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 5)).collect::<Vec<_>>()
            }
        });
        assert_eq!(r[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn allgather_orders_by_rank() {
        for n in [1, 2, 3, 7, 16] {
            let r = run(n, |c| c.allgather(c.rank() as u32 * 10));
            for row in r {
                assert_eq!(row, (0..n as u32).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allreduce_and_scans() {
        for n in [1usize, 2, 5, 32] {
            let r = run(n, |c| {
                let sum = c.allreduce_sum(c.rank() as u64 + 1);
                let scan = c.exscan_sum(c.rank() as u64 + 1);
                let max = c.allreduce(c.rank() as u64, |a, b| *a.max(b));
                (sum, scan, max)
            });
            let total = (n as u64) * (n as u64 + 1) / 2;
            for (rank, (sum, scan, max)) in r.into_iter().enumerate() {
                assert_eq!(sum, total);
                assert_eq!(scan, (rank as u64) * (rank as u64 + 1) / 2);
                assert_eq!(max, n as u64 - 1);
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        let n = 5;
        for root in 0..n {
            let r = run(n, move |c| {
                let v = if c.rank() == root {
                    Some(format!("hello from {root}"))
                } else {
                    None
                };
                c.bcast(root, v)
            });
            assert!(r.iter().all(|s| s == &format!("hello from {root}")));
        }
    }

    #[test]
    fn gather_and_scatter() {
        let n = 5;
        for root in [0usize, 2, 4] {
            let r = run(n, move |c| {
                let gathered = c.gather(root, c.rank() as u32 * 3);
                if c.rank() == root {
                    let g = gathered.unwrap();
                    assert_eq!(g, (0..n as u32).map(|i| i * 3).collect::<Vec<_>>());
                } else {
                    assert!(gathered.is_none());
                }
                let vals = if c.rank() == root {
                    Some((0..n).map(|i| format!("v{i}")).collect())
                } else {
                    None
                };
                c.scatter(root, vals)
            });
            for (rank, got) in r.into_iter().enumerate() {
                assert_eq!(got, format!("v{rank}"));
            }
        }
    }

    #[test]
    fn alltoallv_permutes() {
        let n = 6;
        let r = run(n, |c| {
            // rank r sends vec![r*10 + d] to each destination d
            let outgoing: Vec<Vec<u32>> = (0..c.size())
                .map(|d| vec![(c.rank() * 10 + d) as u32])
                .collect();
            c.alltoallv(outgoing)
        });
        for (rank, incoming) in r.into_iter().enumerate() {
            for (src, data) in incoming.into_iter().enumerate() {
                assert_eq!(data, vec![(src * 10 + rank) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_uneven_sizes() {
        let n = 4;
        let r = run(n, |c| {
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| (0..(c.rank() + d) as u64).collect())
                .collect();
            c.alltoallv(outgoing)
        });
        for (rank, incoming) in r.into_iter().enumerate() {
            for (src, data) in incoming.into_iter().enumerate() {
                assert_eq!(data.len(), src + rank);
            }
        }
    }

    #[test]
    fn barrier_many_ranks_and_sizes() {
        // Stress the dissemination pattern with non-power-of-two sizes.
        for n in [2usize, 3, 5, 17, 64] {
            run(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn collectives_back_to_back_do_not_crosstalk() {
        let r = run(4, |c| {
            let a = c.allgather(c.rank() as u32);
            let b = c.allgather(100 + c.rank() as u32);
            c.barrier();
            let s = c.allreduce_sum(1);
            (a, b, s)
        });
        for (a, b, s) in r {
            assert_eq!(a, vec![0, 1, 2, 3]);
            assert_eq!(b, vec![100, 101, 102, 103]);
            assert_eq!(s, 4);
        }
    }

    #[test]
    fn large_rank_count() {
        // The strong-scaling harness simulates up to 512 ranks.
        let r = run(512, |c| c.allreduce_sum(1));
        assert!(r.iter().all(|&s| s == 512));
    }
}
