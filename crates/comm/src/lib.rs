//! # quadforest-comm
//!
//! An in-process message-passing simulator standing in for MPI.
//!
//! The paper benchmarks p4est on up to 512 MPI ranks; this environment is
//! a single machine, so rank parallelism is *simulated*: [`run`] spawns
//! one OS thread per rank, each executing the same rank program against a
//! [`Comm`] handle that provides tagged point-to-point messages and the
//! collectives the forest algorithms need (`barrier`, `allgather`,
//! `allreduce`, `exscan`, `alltoallv`, `bcast`). Messages are typed
//! (`Box<dyn Any>` under the hood) and delivery is per-sender FIFO, like
//! MPI's non-overtaking guarantee.
//!
//! The simulator is deterministic at the algorithm level: all forest
//! algorithms built on it produce rank-count-independent results, which
//! the integration tests assert by comparing partitions and ghost layers
//! across different `P`.
//!
//! ## Failure semantics
//!
//! Real MPI aborts the job when a rank dies; a naive thread simulator
//! instead deadlocks, because the surviving ranks block forever in
//! `recv`. This crate propagates failure the way
//! `MPI_ERRORS_RETURN` + `MPI_Abort` would:
//!
//! * every world carries a shared *abort* state — the first rank to
//!   panic, return an error, or time out records itself as the origin
//!   and wakes every blocked peer, which then unwinds with
//!   [`CommError::Aborted`];
//! * [`try_run`] returns [`WorldError`] naming the origin rank, the
//!   reason, and every rank that unwound in consequence ([`run`] keeps
//!   the old infallible signature and simply panics with that report);
//! * every communication call has a fallible `try_*` twin returning
//!   [`CommError`] instead of panicking;
//! * blocking receives respect a configurable timeout
//!   ([`RunOptions::recv_timeout`]); on expiry the rank dumps a
//!   deadlock diagnostic — what every rank was waiting on, its parked
//!   messages, its collective sequence number — then aborts the world.
//!
//! ## Chaos testing
//!
//! [`run_with_faults`] executes a rank program under a deterministic,
//! seed-driven [`FaultPlan`]: message delivery delays, cross-stream
//! reordering (per-`(dst, tag)` FIFO is preserved, exactly the freedom
//! a real network has), and scheduled rank panics at the Nth
//! communication operation. Because a correct program may not depend on
//! timing, a delay/reorder plan must not change any result:
//!
//! ```
//! use quadforest_comm::{run, run_with_faults, FaultPlan};
//! use std::time::Duration;
//!
//! let plan = FaultPlan::new(0xC0FFEE)
//!     .with_delays(0.25, Duration::from_micros(200))
//!     .with_reordering(0.25);
//! let chaotic = run_with_faults(4, plan, |c| c.allreduce_sum(c.rank() as u64)).unwrap();
//! let calm = run(4, |c| c.allreduce_sum(c.rank() as u64));
//! assert_eq!(chaotic, calm);
//! ```
//!
//! And a scheduled panic surfaces as a typed world failure instead of a
//! hang:
//!
//! ```
//! use quadforest_comm::{run_with_faults, FaultPlan};
//!
//! let err = run_with_faults(4, FaultPlan::new(1).with_panic_at(2, 0), |c| {
//!     c.barrier();
//!     c.rank()
//! })
//! .unwrap_err();
//! assert_eq!(err.origin, 2);
//! ```

#![warn(missing_docs)]

mod error;
mod fault;
mod recovery;
mod transport;

pub use error::{CommError, RankError, RankFailure, WorldError};
pub use fault::{FaultPlan, NetDir};
pub use recovery::{
    run_with_recovery, run_with_recovery_program, Attempt, RecoveryError, RecoveryOptions,
    RecoveryOutcome, RecoveryPolicy,
};
pub use transport::{
    maybe_run_socket_child, try_run_program, Backend, ProgramCtx, ProgramFn, ProgramRegistry,
    SocketOptions, TcpOptions,
};

use error::tag_display;
use fault::{FaultAction, RankFaults};
use quadforest_core::Wire;
use quadforest_telemetry as telemetry;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use transport::Transport;

/// A message payload: in-process worlds pass the boxed value itself
/// (zero-copy, any `Send` type); cross-process worlds pass Wire-encoded
/// bytes plus a hash of the sender's type name so receiver-side type
/// mismatches stay typed errors instead of garbled decodes.
pub(crate) enum Payload {
    /// Same-address-space delivery: the value, type-erased.
    Local(Box<dyn Any + Send>),
    /// Cross-process delivery: Wire encoding plus the sender's type tag.
    Bytes {
        /// FNV-1a hash of the sender's `std::any::type_name`.
        type_tag: u64,
        /// The Wire-encoded value.
        data: Vec<u8>,
    },
}

/// FNV-1a over the type name: the cross-process analogue of a `TypeId`
/// (which is not stable across binaries, let alone processes). Type
/// *names* are stable for one compiled binary talking to itself, which
/// is exactly the socket-backend topology (the supervisor re-executes
/// its own binary per rank).
pub(crate) fn wire_type_tag<T: 'static>() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in std::any::type_name::<T>().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A tagged, typed message in flight.
pub(crate) struct Msg {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) payload: Payload,
    /// Best-effort payload size estimate for telemetry: exact for
    /// serialized payloads, computed where the concrete type was still
    /// visible (deep for the `Vec` bulk paths, shallow `size_of_val`
    /// elsewhere) for local ones.
    pub(crate) bytes: u64,
}

/// User tags live below this bound; collective-internal tags above it.
pub(crate) const COLL_TAG_BASE: u64 = 1 << 48;

/// Lock a mutex, ignoring poisoning: a poisoned mailbox or status cell
/// only means some rank panicked while holding it, and the abort
/// machinery — not the lock — is what reports that failure.
pub(crate) fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One rank's inbound queue plus the condvar its owner blocks on.
pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<VecDeque<Msg>>,
    pub(crate) cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a message and wake the owner if it is blocked.
    pub(crate) fn push(&self, msg: Msg) {
        plock(&self.queue).push_back(msg);
        self.cv.notify_all();
    }
}

/// What a rank is doing right now, as visible to peers building a
/// deadlock diagnostic.
#[derive(Clone, Debug)]
pub(crate) enum RankState {
    /// Executing user code (not blocked inside the simulator).
    Running,
    /// Blocked in a receive.
    Waiting {
        src: usize,
        tag: u64,
        /// `(src, tag)` of every parked (received but unmatched) message.
        parked: Vec<(usize, u64)>,
        /// Collective sequence number (how many collectives completed).
        coll_seq: u64,
        /// Innermost telemetry span open on the rank when it blocked
        /// (`None` when telemetry is off), so the deadlock diagnostic
        /// can name the phase each rank is stuck in.
        phase: Option<&'static str>,
    },
    /// Rank program returned successfully.
    Finished,
    /// Rank program panicked or returned an error.
    Failed(String),
}

/// The origin of a world abort.
#[derive(Clone)]
pub(crate) struct AbortInfo {
    pub(crate) origin: usize,
    pub(crate) reason: String,
}

/// Shared per-world state: mailboxes, abort flag, per-rank status.
struct World {
    size: usize,
    recv_timeout: Duration,
    mailboxes: Vec<Mailbox>,
    /// Fast-path flag; the authoritative record is `abort`.
    aborted: AtomicBool,
    /// First failure wins; later aborts keep the original origin.
    abort: Mutex<Option<AbortInfo>>,
    status: Vec<Mutex<RankState>>,
    /// Collective sequence number → telemetry span name open when that
    /// collective was issued. Populated only while telemetry records, and
    /// read by [`World::tag_label`] so diagnostics print
    /// `coll:5(balance)` instead of a bare tag number.
    tag_names: Mutex<HashMap<u64, &'static str>>,
}

impl World {
    fn new(size: usize, recv_timeout: Duration) -> Self {
        World {
            size,
            recv_timeout,
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            aborted: AtomicBool::new(false),
            abort: Mutex::new(None),
            status: (0..size).map(|_| Mutex::new(RankState::Running)).collect(),
            tag_names: Mutex::new(HashMap::new()),
        }
    }

    /// Remember which telemetry span issued collective `seq` (first rank
    /// to issue it wins; all ranks agree on call order anyway).
    fn name_collective(&self, seq: u64, phase: &'static str) {
        plock(&self.tag_names).entry(seq).or_insert(phase);
    }

    /// [`tag_display`] plus the registered span name, when one is known:
    /// `coll:5(balance)` / `coll:5#2(balance)` / `user:7`.
    fn tag_label(&self, tag: u64) -> String {
        let base = tag_display(tag);
        if tag >= COLL_TAG_BASE {
            let seq = (tag - COLL_TAG_BASE) & 0xFFFF_FFFF;
            if let Some(name) = plock(&self.tag_names).get(&seq) {
                return format!("{base}({name})");
            }
        }
        base
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    fn set_status(&self, rank: usize, state: RankState) {
        *plock(&self.status[rank]) = state;
    }

    /// Record a failure and wake every blocked rank. The first caller
    /// becomes the abort origin; later callers are collateral and do
    /// not overwrite it. Notifying under each queue lock guarantees no
    /// receiver misses the wakeup: it either sees the flag before
    /// sleeping or is woken after.
    fn abort(&self, origin: usize, reason: String) {
        {
            let mut info = plock(&self.abort);
            if info.is_none() {
                *info = Some(AbortInfo { origin, reason });
            }
        }
        self.aborted.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            let _guard = plock(&mb.queue);
            mb.cv.notify_all();
        }
    }

    /// The `CommError` a rank unwinds with once the world is aborted.
    fn abort_error(&self) -> CommError {
        let info = plock(&self.abort).clone();
        match info {
            Some(AbortInfo { origin, reason }) => CommError::Aborted { origin, reason },
            // The flag can only be set through `abort`, but stay safe.
            None => CommError::Aborted {
                origin: usize::MAX,
                reason: "world aborted".into(),
            },
        }
    }

    fn abort_info(&self) -> Option<(usize, String)> {
        plock(&self.abort).clone().map(|i| (i.origin, i.reason))
    }

    /// Per-rank world-state dump used by the timeout path: what every
    /// rank is blocked on, its parked messages, its collective
    /// sequence number.
    fn diagnostic(&self) -> String {
        let mut s = format!(
            "deadlock diagnostic (size {}, recv timeout {:?}):\n",
            self.size, self.recv_timeout
        );
        for (rank, cell) in self.status.iter().enumerate() {
            let state = plock(cell).clone();
            match state {
                RankState::Running => {
                    s.push_str(&format!("  rank {rank}: running (not blocked in comm)\n"));
                }
                RankState::Waiting {
                    src,
                    tag,
                    parked,
                    coll_seq,
                    phase,
                } => {
                    let parked_s = if parked.is_empty() {
                        "-".to_string()
                    } else {
                        parked
                            .iter()
                            .map(|(ps, pt)| format!("{}@src{}", self.tag_label(*pt), ps))
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    let phase_s = phase.map(|p| format!(" phase='{p}'")).unwrap_or_default();
                    s.push_str(&format!(
                        "  rank {rank}: waiting on src={src} tag={} coll_seq={coll_seq} parked=[{parked_s}]{phase_s}\n",
                        self.tag_label(tag)
                    ));
                }
                RankState::Finished => {
                    s.push_str(&format!("  rank {rank}: finished\n"));
                }
                RankState::Failed(why) => {
                    s.push_str(&format!("  rank {rank}: failed ({why})\n"));
                }
            }
        }
        s
    }

    /// Enqueue a message and wake the destination if it is blocked.
    fn deliver(&self, dest: usize, msg: Msg) {
        self.mailboxes[dest].push(msg);
    }
}

// The thread backend *is* the world state: every rank shares this
// struct, so deliver is a queue push and abort is a flag flip. No
// serialization — payloads move as boxed values.
impl Transport for World {
    fn size(&self) -> usize {
        self.size
    }

    fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    fn serializes(&self) -> bool {
        false
    }

    fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    fn deliver(&self, dest: usize, msg: Msg) {
        World::deliver(self, dest, msg);
    }

    fn is_aborted(&self) -> bool {
        World::is_aborted(self)
    }

    fn abort(&self, origin: usize, reason: String) {
        World::abort(self, origin, reason);
    }

    fn abort_error(&self) -> CommError {
        World::abort_error(self)
    }

    fn set_status(&self, rank: usize, state: RankState) {
        World::set_status(self, rank, state);
    }

    fn diagnostic(&self) -> String {
        World::diagnostic(self)
    }

    fn tag_label(&self, tag: u64) -> String {
        World::tag_label(self, tag)
    }

    fn name_collective(&self, seq: u64, phase: &'static str) {
        World::name_collective(self, seq, phase);
    }

    fn request_kill(&self, _rank: usize, _op: u64) -> bool {
        false // threads cannot be SIGKILLed individually
    }

    fn begin_stall(&self, _rank: usize, _op: u64) -> bool {
        false // a stalled thread would hang the world; degrade to panic
    }
}

/// Per-rank communicator handle. Not `Sync`: each rank owns its handle.
pub struct Comm {
    rank: usize,
    transport: Arc<dyn Transport>,
    /// Out-of-order messages parked until a matching `recv`.
    parked: RefCell<VecDeque<Msg>>,
    /// Sequence number for collective operations; identical call order on
    /// every rank yields matching tags without global coordination.
    coll_seq: Cell<u64>,
    /// Comm ops counted so far (same indexing as [`FaultPlan`] kill
    /// points) — reported to the transport for liveness context.
    ops: Cell<u64>,
    /// Compiled fault stream, when running under a [`FaultPlan`].
    faults: Option<RankFaults>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        transport: Arc<dyn Transport>,
        faults: Option<RankFaults>,
    ) -> Self {
        Comm {
            rank,
            transport,
            parked: RefCell::new(VecDeque::new()),
            coll_seq: Cell::new(0),
            ops: Cell::new(0),
            faults,
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks `P`.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Count one communication operation against the fault plan; a
    /// scheduled panic, SIGKILL, or stall fires here, before any
    /// message moves. Panics are raised via `resume_unwind` so the
    /// global panic hook stays quiet — injected deaths are expected,
    /// only *unexpected* panics should print. A SIGKILL or stall asks
    /// the transport first: the socket backend arranges a real process
    /// death (and the rank parks awaiting it); the thread backend
    /// cannot, so both degrade to a scheduled panic.
    fn tick(&self) {
        let op = self.ops.get();
        self.ops.set(op + 1);
        self.transport.note_comm_op(op, telemetry::current_span());
        let Some(f) = &self.faults else { return };
        let Some(action) = f.tick_op() else { return };
        let die = |what: &str, op: u64| -> ! {
            std::panic::resume_unwind(Box::new(format!(
                "fault injection: scheduled {what} at comm op {op} on rank {}",
                self.rank
            )))
        };
        match action {
            FaultAction::Panic(op) => die("panic", op),
            FaultAction::Sigkill(op) => {
                if self.transport.request_kill(self.rank, op) {
                    // a real SIGKILL is on its way; wait for it to land
                    loop {
                        std::thread::park();
                    }
                }
                die("SIGKILL (as panic: threads cannot be killed)", op)
            }
            FaultAction::Stall(op) => {
                if self.transport.begin_stall(self.rank, op) {
                    // frozen: no heartbeats, no exit — the supervisor's
                    // missed-heartbeat window must catch this
                    loop {
                        std::thread::park();
                    }
                }
                die(
                    "stall (as panic: a stalled thread would hang the world)",
                    op,
                )
            }
        }
    }

    /// Deliver every held-back (reordered) message, in a seeded shuffle
    /// that preserves per-`(dst, tag)` order. Called before any
    /// blocking receive — holding messages across our own recv could
    /// otherwise manufacture a deadlock the real network cannot.
    fn flush_held(&self) {
        if let Some(f) = &self.faults {
            if f.has_held() {
                for h in f.drain_held() {
                    self.transport.deliver(h.dst, h.msg);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // point-to-point
    // ------------------------------------------------------------------

    /// Send `data` to `dest` with `tag`. Never blocks (buffered
    /// mailboxes). Panics if the world has aborted; see [`Comm::try_send`].
    pub fn send<T: Wire + Send + 'static>(&self, dest: usize, tag: u64, data: T) {
        self.try_send(dest, tag, data)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::send`]: returns [`CommError::Aborted`] instead of
    /// panicking when another rank has already failed.
    pub fn try_send<T: Wire + Send + 'static>(
        &self,
        dest: usize,
        tag: u64,
        data: T,
    ) -> Result<(), CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^48");
        self.tick();
        let bytes = std::mem::size_of_val(&data) as u64;
        self.send_value(dest, tag, data, bytes)
    }

    /// Build the backend-appropriate payload (boxed value in-process,
    /// Wire bytes cross-process) and hand it to `send_impl`. `bytes` is
    /// the caller's telemetry size estimate for the local path; the
    /// serialized path uses the exact encoded length instead.
    fn send_value<T: Wire + Send + 'static>(
        &self,
        dest: usize,
        tag: u64,
        value: T,
        bytes: u64,
    ) -> Result<(), CommError> {
        if self.transport.serializes() {
            let data = value.to_wire();
            let bytes = data.len() as u64;
            self.send_impl(
                dest,
                tag,
                Payload::Bytes {
                    type_tag: wire_type_tag::<T>(),
                    data,
                },
                bytes,
            )
        } else {
            self.send_impl(dest, tag, Payload::Local(Box::new(value)), bytes)
        }
    }

    fn send_impl(
        &self,
        dest: usize,
        tag: u64,
        payload: Payload,
        bytes: u64,
    ) -> Result<(), CommError> {
        if self.transport.is_aborted() {
            return Err(self.transport.abort_error());
        }
        telemetry::counter_add("comm.msgs_sent", 1);
        telemetry::counter_add("comm.bytes_sent", bytes);
        telemetry::flight::event(
            telemetry::flight::FlightKind::CommSend,
            dest as u32,
            tag,
            bytes,
        );
        let msg = Msg {
            src: self.rank,
            tag,
            payload,
            bytes,
        };
        match &self.faults {
            Some(f) => {
                if let Some(delay) = f.draw_delay() {
                    std::thread::sleep(delay);
                }
                if let Some(msg) = f.maybe_hold(dest, tag, msg) {
                    self.transport.deliver(dest, msg);
                }
            }
            None => self.transport.deliver(dest, msg),
        }
        Ok(())
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Messages from the same sender are non-overtaking per tag.
    /// Panics on abort, timeout, or payload-type mismatch; see
    /// [`Comm::try_recv`].
    pub fn recv<T: Wire + Send + 'static>(&self, src: usize, tag: u64) -> T {
        self.try_recv(src, tag).unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::recv`]: unwinds with [`CommError::Aborted`] when a
    /// peer fails while we block, [`CommError::Timeout`] (carrying a
    /// world-state deadlock diagnostic) when nothing arrives within the
    /// configured [`RunOptions::recv_timeout`], and
    /// [`CommError::TypeMismatch`] when the matching message holds a
    /// different payload type.
    pub fn try_recv<T: Wire + Send + 'static>(&self, src: usize, tag: u64) -> Result<T, CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^48");
        self.tick();
        self.recv_impl(src, tag)
    }

    fn recv_impl<T: Wire + Send + 'static>(&self, src: usize, tag: u64) -> Result<T, CommError> {
        // never block while holding reordered messages of our own
        self.flush_held();
        // first serve a parked message if one matches
        {
            let mut parked = self.parked.borrow_mut();
            if let Some(pos) = parked.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = parked.remove(pos).unwrap();
                return downcast_msg(msg);
            }
        }
        let world = &*self.transport;
        let started = Instant::now();
        let deadline = started + world.recv_timeout();
        let mb = world.mailbox(self.rank);
        let mut queue = plock(&mb.queue);
        loop {
            // drain everything already delivered
            while let Some(msg) = queue.pop_front() {
                if msg.src == src && msg.tag == tag {
                    drop(queue);
                    world.set_status(self.rank, RankState::Running);
                    return downcast_msg(msg);
                }
                self.parked.borrow_mut().push_back(msg);
            }
            if world.is_aborted() {
                drop(queue);
                world.set_status(self.rank, RankState::Running);
                return Err(world.abort_error());
            }
            // publish what we are blocked on, for peers' diagnostics
            world.set_status(
                self.rank,
                RankState::Waiting {
                    src,
                    tag,
                    parked: self
                        .parked
                        .borrow()
                        .iter()
                        .map(|m| (m.src, m.tag))
                        .collect(),
                    coll_seq: self.coll_seq.get(),
                    phase: telemetry::current_span(),
                },
            );
            let now = Instant::now();
            if now >= deadline {
                drop(queue);
                let diagnostic = world.diagnostic();
                let phase = telemetry::current_span()
                    .map(|p| format!(" in phase '{p}'"))
                    .unwrap_or_default();
                world.abort(
                    self.rank,
                    format!(
                        "recv timeout after {:?} waiting on src={src} tag={}{phase}",
                        started.elapsed(),
                        world.tag_label(tag)
                    ),
                );
                return Err(CommError::Timeout {
                    rank: self.rank,
                    src,
                    tag,
                    waited: started.elapsed(),
                    diagnostic,
                });
            }
            queue = match mb.cv.wait_timeout(queue, deadline - now) {
                Ok((q, _)) => q,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    // ------------------------------------------------------------------
    // collectives
    // ------------------------------------------------------------------

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        telemetry::counter_add("comm.collectives", 1);
        let phase = telemetry::current_span();
        if let Some(phase) = phase {
            self.transport.name_collective(seq, phase);
        }
        if telemetry::flight::armed() {
            let phase_id = phase.map(telemetry::flight::name_id).unwrap_or(0);
            telemetry::flight::event(
                telemetry::flight::FlightKind::Collective,
                0,
                seq,
                phase_id as u64,
            );
        }
        COLL_TAG_BASE + seq
    }

    /// Latency timer shared by every collective entry point (histogram of
    /// nanoseconds; inert when telemetry is off).
    fn coll_timer(&self) -> telemetry::Timer {
        telemetry::timer("comm.collective_ns")
    }

    /// Synchronize all ranks (dissemination barrier). Panics on world
    /// failure; see [`Comm::try_barrier`].
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::barrier`].
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.tick();
        let _t = self.coll_timer();
        let tag = self.next_coll_tag();
        let mut round = 1usize;
        let mut round_no = 0u64;
        while round < self.size() {
            let dest = (self.rank + round) % self.size();
            let src = (self.rank + self.size() - round) % self.size();
            self.send_value(dest, tag + (round_no << 32), (), 0)?;
            self.recv_impl::<()>(src, tag + (round_no << 32))?;
            round <<= 1;
            round_no += 1;
        }
        Ok(())
    }

    /// Gather one value from every rank, returned in rank order on all
    /// ranks. Panics on world failure; see [`Comm::try_allgather`].
    pub fn allgather<T: Wire + Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        self.try_allgather(value).unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::allgather`].
    pub fn try_allgather<T: Wire + Clone + Send + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<T>, CommError> {
        self.tick();
        self.allgather_impl(value)
    }

    fn allgather_impl<T: Wire + Clone + Send + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<T>, CommError> {
        let _t = self.coll_timer();
        let tag = self.next_coll_tag();
        let bytes = std::mem::size_of_val(&value) as u64;
        for dest in 0..self.size() {
            if dest != self.rank {
                self.send_value(dest, tag, value.clone(), bytes)?;
            }
        }
        (0..self.size())
            .map(|src| {
                if src == self.rank {
                    Ok(value.clone())
                } else {
                    self.recv_impl::<T>(src, tag)
                }
            })
            .collect()
    }

    /// Reduce with an associative `op` over all ranks; every rank gets
    /// the result. Reduction order is rank order, hence deterministic.
    /// Panics on world failure; see [`Comm::try_allreduce`].
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.try_allreduce(value, op)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::allreduce`].
    pub fn try_allreduce<T, F>(&self, value: T, op: F) -> Result<T, CommError>
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.tick();
        let all = self.allgather_impl(value)?;
        let mut it = all.into_iter();
        let first = it.next().expect("size >= 1");
        Ok(it.fold(first, |acc, v| op(&acc, &v)))
    }

    /// Sum of a `u64` across all ranks.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Fallible [`Comm::allreduce_sum`].
    pub fn try_allreduce_sum(&self, value: u64) -> Result<u64, CommError> {
        self.try_allreduce(value, |a, b| a + b)
    }

    /// Exclusive prefix reduction in rank order; rank 0 receives
    /// `T::default()`. Panics on world failure; see [`Comm::try_exscan`].
    pub fn exscan<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone + Default + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.try_exscan(value, op).unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::exscan`].
    pub fn try_exscan<T, F>(&self, value: T, op: F) -> Result<T, CommError>
    where
        T: Wire + Clone + Default + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.tick();
        let all = self.allgather_impl(value)?;
        Ok(all[..self.rank]
            .iter()
            .fold(T::default(), |acc, v| op(&acc, v)))
    }

    /// Exclusive prefix sum of a `u64`.
    pub fn exscan_sum(&self, value: u64) -> u64 {
        self.exscan(value, |a, b| a + b)
    }

    /// Fallible [`Comm::exscan_sum`].
    pub fn try_exscan_sum(&self, value: u64) -> Result<u64, CommError> {
        self.try_exscan(value, |a, b| a + b)
    }

    /// Broadcast from `root` to every rank. Non-root ranks pass `None`.
    /// Panics on world failure; see [`Comm::try_bcast`].
    pub fn bcast<T: Wire + Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        self.try_bcast(root, value)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::bcast`].
    pub fn try_bcast<T: Wire + Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, CommError> {
        self.tick();
        let _t = self.coll_timer();
        let tag = self.next_coll_tag();
        if self.rank == root {
            let v = value.expect("root must supply the value");
            let bytes = std::mem::size_of_val(&v) as u64;
            for dest in 0..self.size() {
                if dest != root {
                    self.send_value(dest, tag, v.clone(), bytes)?;
                }
            }
            Ok(v)
        } else {
            self.recv_impl::<T>(root, tag)
        }
    }

    /// Gather one value from every rank onto `root` (rank order);
    /// other ranks receive `None`. Panics on world failure; see
    /// [`Comm::try_gather`].
    pub fn gather<T: Wire + Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        self.try_gather(root, value)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::gather`].
    pub fn try_gather<T: Wire + Send + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.tick();
        let _t = self.coll_timer();
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_impl::<T>(src, tag)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.unwrap()).collect()))
        } else {
            let bytes = std::mem::size_of_val(&value) as u64;
            self.send_value(root, tag, value, bytes)?;
            Ok(None)
        }
    }

    /// Scatter one value per rank from `root`; non-root ranks pass
    /// `None` and receive their slice. Panics on world failure; see
    /// [`Comm::try_scatter`].
    pub fn scatter<T: Wire + Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        self.try_scatter(root, values)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::scatter`].
    pub fn try_scatter<T: Wire + Send + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T, CommError> {
        self.tick();
        let _t = self.coll_timer();
        let tag = self.next_coll_tag();
        if self.rank == root {
            let values = values.expect("root must supply one value per rank");
            assert_eq!(values.len(), self.size());
            let mut mine = None;
            for (dest, v) in values.into_iter().enumerate() {
                if dest == root {
                    mine = Some(v);
                } else {
                    let bytes = std::mem::size_of_val(&v) as u64;
                    self.send_value(dest, tag, v, bytes)?;
                }
            }
            Ok(mine.expect("root slot present"))
        } else {
            self.recv_impl::<T>(root, tag)
        }
    }

    /// Personalized all-to-all: `outgoing[d]` is delivered to rank `d`;
    /// returns the incoming vectors indexed by source rank. Panics on
    /// world failure; see [`Comm::try_alltoallv`].
    pub fn alltoallv<T: Wire + Send + 'static>(&self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.try_alltoallv(outgoing)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::alltoallv`].
    pub fn try_alltoallv<T: Wire + Send + 'static>(
        &self,
        mut outgoing: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        self.tick();
        let _t = self.coll_timer();
        assert_eq!(outgoing.len(), self.size());
        let tag = self.next_coll_tag();
        let mut mine = Some(std::mem::take(&mut outgoing[self.rank]));
        for (dest, data) in outgoing.into_iter().enumerate() {
            if dest != self.rank {
                // the bulk-data path: count the heap contents, not just
                // the Vec header
                let bytes =
                    (std::mem::size_of::<Vec<T>>() + data.len() * std::mem::size_of::<T>()) as u64;
                self.send_value(dest, tag, data, bytes)?;
            }
        }
        (0..self.size())
            .map(|src| {
                if src == self.rank {
                    Ok(mine.take().expect("self slot consumed once"))
                } else {
                    self.recv_impl::<Vec<T>>(src, tag)
                }
            })
            .collect()
    }

    /// Collective request–response round: deliver `outgoing[d]` to rank
    /// `d`, answer every incoming request batch with `serve(src,
    /// requests)`, and return the responses indexed by the rank that
    /// served them. `serve` must produce exactly one response per
    /// request, in order — the caller relies on positional matching to
    /// reassociate answers. This is the scatter/serve/gather primitive
    /// behind distributed query routing. Panics on world failure; see
    /// [`Comm::try_exchange`].
    pub fn exchange<Req, Resp>(
        &self,
        outgoing: Vec<Vec<Req>>,
        serve: impl FnMut(usize, Vec<Req>) -> Vec<Resp>,
    ) -> Vec<Vec<Resp>>
    where
        Req: Wire + Send + 'static,
        Resp: Wire + Send + 'static,
    {
        self.try_exchange(outgoing, serve)
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::exchange`].
    pub fn try_exchange<Req, Resp>(
        &self,
        outgoing: Vec<Vec<Req>>,
        mut serve: impl FnMut(usize, Vec<Req>) -> Vec<Resp>,
    ) -> Result<Vec<Vec<Resp>>, CommError>
    where
        Req: Wire + Send + 'static,
        Resp: Wire + Send + 'static,
    {
        let incoming = self.try_alltoallv(outgoing)?;
        let replies = incoming
            .into_iter()
            .enumerate()
            .map(|(src, requests)| {
                let n = requests.len();
                let resp = serve(src, requests);
                assert_eq!(
                    resp.len(),
                    n,
                    "exchange serve callback must answer every request"
                );
                resp
            })
            .collect();
        self.try_alltoallv(replies)
    }

    // ------------------------------------------------------------------
    // telemetry
    // ------------------------------------------------------------------

    /// Snapshot this rank's telemetry metric registry, allgather the
    /// per-rank snapshots, and merge them into one
    /// [`AggregateRow`](telemetry::AggregateRow) per metric (rank-indexed
    /// values, totals, min/max, summed histogram buckets). Every rank
    /// gets the same rows. Ranks without a recorder contribute an empty
    /// snapshot. Panics on world failure; see
    /// [`Comm::try_aggregate_metrics`].
    pub fn aggregate_metrics(&self) -> Vec<telemetry::AggregateRow> {
        self.try_aggregate_metrics()
            .unwrap_or_else(|e| comm_panic(e))
    }

    /// Fallible [`Comm::aggregate_metrics`].
    pub fn try_aggregate_metrics(&self) -> Result<Vec<telemetry::AggregateRow>, CommError> {
        let snaps = self.try_allgather(telemetry::rank_snapshot())?;
        Ok(telemetry::aggregate(&snaps))
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // a rank program may end with sends still held back by the
        // fault plan; release them so peers can finish
        self.flush_held();
    }
}

/// Unwind an infallible-API call with `e`. Collateral aborts (another
/// rank failed first) unwind via `resume_unwind`, skipping the global
/// panic hook: the origin failure is the one worth printing, not the
/// P-1 echoes of it. Every other error panics normally.
fn comm_panic(e: CommError) -> ! {
    match &e {
        CommError::Aborted { .. } => std::panic::resume_unwind(Box::new(e.to_string())),
        _ => panic!("{e}"),
    }
}

fn downcast_msg<T: Wire + Send + 'static>(msg: Msg) -> Result<T, CommError> {
    telemetry::counter_add("comm.msgs_recv", 1);
    telemetry::counter_add("comm.bytes_recv", msg.bytes);
    telemetry::flight::event(
        telemetry::flight::FlightKind::CommRecv,
        msg.src as u32,
        msg.tag,
        msg.bytes,
    );
    let (src, tag) = (msg.src, msg.tag);
    match msg.payload {
        Payload::Local(boxed) => {
            boxed
                .downcast::<T>()
                .map(|b| *b)
                .map_err(|_| CommError::TypeMismatch {
                    src,
                    tag,
                    expected: std::any::type_name::<T>(),
                })
        }
        Payload::Bytes { type_tag, data } => {
            if type_tag != wire_type_tag::<T>() {
                return Err(CommError::TypeMismatch {
                    src,
                    tag,
                    expected: std::any::type_name::<T>(),
                });
            }
            T::from_wire(&data).map_err(|e| CommError::Frame {
                detail: format!("payload from rank {src} tag={}: {e}", tag_display(tag)),
            })
        }
    }
}

/// Options for [`try_run_with`]: receive timeout and fault injection.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// How long a blocking receive may wait before declaring the world
    /// deadlocked, dumping a diagnostic and aborting. Default: 60 s —
    /// far above any legitimate collective on one machine, so it only
    /// fires on genuine hangs.
    pub recv_timeout: Duration,
    /// Deterministic fault plan to inject, if any.
    pub faults: Option<FaultPlan>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            recv_timeout: Duration::from_secs(60),
            faults: None,
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Execute `f` once per rank on `size` threads and collect the per-rank
/// results in rank order, with full control over timeout and fault
/// injection. This is the core runner; [`run`], [`try_run`] and
/// [`run_with_faults`] are wrappers.
///
/// The first rank to panic, return `Err`, or time out aborts the world:
/// every peer blocked in a communication call wakes and unwinds with
/// [`CommError::Aborted`], and the returned [`WorldError`] names the
/// origin rank, its reason, and every collateral failure.
pub fn try_run_with<F, R>(size: usize, opts: RunOptions, f: F) -> Result<Vec<R>, WorldError>
where
    F: Fn(Comm) -> Result<R, CommError> + Send + Sync,
    R: Send,
{
    assert!(size > 0);
    // Always-on inside worlds: every comm op and phase transition lands
    // in the flight ring, ready to dump if this world fails.
    telemetry::flight::arm();
    let world = Arc::new(World::new(size, opts.recv_timeout));
    let mut outcomes: Vec<Option<Result<R, RankError>>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let comm = Comm::new(
                rank,
                Arc::clone(&world) as Arc<dyn Transport>,
                opts.faults.as_ref().map(|p| p.compile(rank)),
            );
            let f = &f;
            let world = Arc::clone(&world);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(2 << 20)
                    .spawn_scoped(scope, move || {
                        // Runs on the rank thread, so `telemetry::failure_phase`
                        // sees this rank's recorder: abort reports name the
                        // phase the rank died in even though the unwind
                        // already closed its spans.
                        let died_in = || {
                            telemetry::failure_phase()
                                .map(|p| format!(" (in phase '{p}')"))
                                .unwrap_or_default()
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                            Ok(Ok(value)) => {
                                world.set_status(rank, RankState::Finished);
                                Ok(value)
                            }
                            Ok(Err(e)) => {
                                let phase = died_in();
                                record_rank_death(rank);
                                world.set_status(
                                    rank,
                                    RankState::Failed(format!("{}{phase}", e.kind())),
                                );
                                world.abort(rank, format!("{e}{phase}"));
                                Err(RankError::Failed(e))
                            }
                            Err(payload) => {
                                let msg = panic_message(payload);
                                let phase = died_in();
                                record_rank_death(rank);
                                world.set_status(
                                    rank,
                                    RankState::Failed(format!("panic{phase}: {msg}")),
                                );
                                world.abort(rank, format!("panicked{phase}: {msg}"));
                                Err(RankError::Panicked(msg))
                            }
                        }
                    })
                    .expect("spawn rank thread"),
            );
        }
        for (rank, h) in handles.into_iter().enumerate() {
            outcomes[rank] = Some(h.join().expect("rank outcome is always caught"));
        }
    });
    let mut values = Vec::with_capacity(size);
    let mut failures = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("every rank joined") {
            Ok(v) => values.push(v),
            Err(error) => failures.push(RankFailure { rank, error }),
        }
    }
    if failures.is_empty() {
        Ok(values)
    } else {
        let (origin, reason) = world.abort_info().unwrap_or_else(|| {
            let f = &failures[0];
            (f.rank, f.error.to_string())
        });
        // Postmortem: the shared ring holds every rank's history,
        // including the victim's last comm op and phase.
        telemetry::flight::dump_postmortem(origin as u32);
        Err(WorldError {
            size,
            origin,
            reason,
            failures,
        })
    }
}

/// Record a rank's death into the flight ring, from the dying rank's own
/// thread: a `PeerFailed` event naming the rank and the phase it died in
/// (the rank's comm-op history is already in the ring).
fn record_rank_death(rank: usize) {
    if !telemetry::flight::armed() {
        return;
    }
    let phase_id = telemetry::failure_phase()
        .map(telemetry::flight::name_id)
        .unwrap_or(0);
    telemetry::flight::event(
        telemetry::flight::FlightKind::PeerFailed,
        rank as u32,
        0,
        phase_id as u64,
    );
}

/// Fallible rank runner with default options: like [`run`], but a rank
/// failure (panic, error return, or recv timeout) yields a
/// [`WorldError`] identifying the failing rank instead of propagating a
/// panic — and, crucially, instead of deadlocking the surviving ranks.
pub fn try_run<F, R>(size: usize, f: F) -> Result<Vec<R>, WorldError>
where
    F: Fn(Comm) -> Result<R, CommError> + Send + Sync,
    R: Send,
{
    try_run_with(size, RunOptions::default(), f)
}

/// Execute `f` once per rank on `size` threads and collect the per-rank
/// results in rank order. Panics in any rank propagate to the caller
/// (as a panic carrying the [`WorldError`] report).
pub fn run<F, R>(size: usize, f: F) -> Vec<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    try_run(size, |c| Ok(f(c))).unwrap_or_else(|e| panic!("{e}"))
}

/// Run a rank program under a deterministic [`FaultPlan`]: delivery
/// delays, cross-stream reordering, scheduled rank panics. Same
/// plan + size ⇒ same injected faults, so failures replay from the
/// seed alone. See the crate docs for an example.
pub fn run_with_faults<F, R>(size: usize, plan: FaultPlan, f: F) -> Result<Vec<R>, WorldError>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    try_run_with(
        size,
        RunOptions {
            faults: Some(plan),
            ..RunOptions::default()
        },
        |c| Ok(f(c)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_trivia() {
        let r = run(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            c.barrier();
            assert_eq!(c.allgather(7u32), vec![7]);
            assert_eq!(c.allreduce_sum(5), 5);
            assert_eq!(c.exscan_sum(5), 0);
            42u32
        });
        assert_eq!(r, vec![42]);
    }

    #[test]
    fn point_to_point_ring() {
        let n = 8;
        let sums = run(n, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 1, c.rank() as u64);
            let got: u64 = c.recv(prev, 1);
            got + c.rank() as u64
        });
        for (rank, s) in sums.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(*s, (prev + rank) as u64);
        }
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let r = run(2, |c| {
            if c.rank() == 0 {
                // send two tags; the receiver asks for the later one first
                c.send(1, 10, 1u32);
                c.send(1, 20, 2u32);
                0
            } else {
                let b: u32 = c.recv(0, 20);
                let a: u32 = c.recv(0, 10);
                (b * 10 + a) as i32
            }
        });
        assert_eq!(r[1], 21);
    }

    #[test]
    fn same_tag_is_fifo_per_sender() {
        let r = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send(1, 5, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| c.recv::<u32>(0, 5)).collect::<Vec<_>>()
            }
        });
        assert_eq!(r[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn allgather_orders_by_rank() {
        for n in [1, 2, 3, 7, 16] {
            let r = run(n, |c| c.allgather(c.rank() as u32 * 10));
            for row in r {
                assert_eq!(row, (0..n as u32).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allreduce_and_scans() {
        for n in [1usize, 2, 5, 32] {
            let r = run(n, |c| {
                let sum = c.allreduce_sum(c.rank() as u64 + 1);
                let scan = c.exscan_sum(c.rank() as u64 + 1);
                let max = c.allreduce(c.rank() as u64, |a, b| *a.max(b));
                (sum, scan, max)
            });
            let total = (n as u64) * (n as u64 + 1) / 2;
            for (rank, (sum, scan, max)) in r.into_iter().enumerate() {
                assert_eq!(sum, total);
                assert_eq!(scan, (rank as u64) * (rank as u64 + 1) / 2);
                assert_eq!(max, n as u64 - 1);
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        let n = 5;
        for root in 0..n {
            let r = run(n, move |c| {
                let v = if c.rank() == root {
                    Some(format!("hello from {root}"))
                } else {
                    None
                };
                c.bcast(root, v)
            });
            assert!(r.iter().all(|s| s == &format!("hello from {root}")));
        }
    }

    #[test]
    fn gather_and_scatter() {
        let n = 5;
        for root in [0usize, 2, 4] {
            let r = run(n, move |c| {
                let gathered = c.gather(root, c.rank() as u32 * 3);
                if c.rank() == root {
                    let g = gathered.unwrap();
                    assert_eq!(g, (0..n as u32).map(|i| i * 3).collect::<Vec<_>>());
                } else {
                    assert!(gathered.is_none());
                }
                let vals = if c.rank() == root {
                    Some((0..n).map(|i| format!("v{i}")).collect())
                } else {
                    None
                };
                c.scatter(root, vals)
            });
            for (rank, got) in r.into_iter().enumerate() {
                assert_eq!(got, format!("v{rank}"));
            }
        }
    }

    #[test]
    fn alltoallv_permutes() {
        let n = 6;
        let r = run(n, |c| {
            // rank r sends vec![r*10 + d] to each destination d
            let outgoing: Vec<Vec<u32>> = (0..c.size())
                .map(|d| vec![(c.rank() * 10 + d) as u32])
                .collect();
            c.alltoallv(outgoing)
        });
        for (rank, incoming) in r.into_iter().enumerate() {
            for (src, data) in incoming.into_iter().enumerate() {
                assert_eq!(data, vec![(src * 10 + rank) as u32]);
            }
        }
    }

    #[test]
    fn exchange_request_response_round_trip() {
        let n = 4;
        let r = run(n, |c| {
            // every rank asks every rank (incl. itself) to double a value
            let outgoing: Vec<Vec<u32>> = (0..c.size())
                .map(|d| vec![(c.rank() * 10 + d) as u32])
                .collect();
            c.exchange(outgoing, |src, reqs| {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0] as usize, src * 10 + c.rank());
                reqs.into_iter().map(|v| v * 2).collect::<Vec<u32>>()
            })
        });
        for (rank, responses) in r.into_iter().enumerate() {
            for (server, data) in responses.into_iter().enumerate() {
                // the request this rank sent to `server`, doubled
                assert_eq!(data, vec![2 * (rank * 10 + server) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_uneven_sizes() {
        let n = 4;
        let r = run(n, |c| {
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| (0..(c.rank() + d) as u64).collect())
                .collect();
            c.alltoallv(outgoing)
        });
        for (rank, incoming) in r.into_iter().enumerate() {
            for (src, data) in incoming.into_iter().enumerate() {
                assert_eq!(data.len(), src + rank);
            }
        }
    }

    #[test]
    fn barrier_many_ranks_and_sizes() {
        // Stress the dissemination pattern with non-power-of-two sizes.
        for n in [2usize, 3, 5, 17, 64] {
            run(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn collectives_back_to_back_do_not_crosstalk() {
        let r = run(4, |c| {
            let a = c.allgather(c.rank() as u32);
            let b = c.allgather(100 + c.rank() as u32);
            c.barrier();
            let s = c.allreduce_sum(1);
            (a, b, s)
        });
        for (a, b, s) in r {
            assert_eq!(a, vec![0, 1, 2, 3]);
            assert_eq!(b, vec![100, 101, 102, 103]);
            assert_eq!(s, 4);
        }
    }

    #[test]
    fn large_rank_count() {
        // The strong-scaling harness simulates up to 512 ranks.
        let r = run(512, |c| c.allreduce_sum(1));
        assert!(r.iter().all(|&s| s == 512));
    }

    // ------------------------------------------------------------------
    // failure semantics
    // ------------------------------------------------------------------

    #[test]
    fn try_run_happy_path_matches_run() {
        let a = try_run(4, |c| c.try_allreduce_sum(c.rank() as u64)).unwrap();
        let b = run(4, |c| c.allreduce_sum(c.rank() as u64));
        assert_eq!(a, b);
    }

    #[test]
    fn rank_panic_unblocks_peers_and_names_origin() {
        // every other rank blocks in a barrier rank 1 never joins
        let err = try_run(4, |c| {
            if c.rank() == 1 {
                panic!("deliberate failure");
            }
            c.try_barrier()?;
            Ok(c.rank())
        })
        .unwrap_err();
        assert_eq!(err.origin, 1);
        assert!(err.origin_panicked());
        assert!(err.reason.contains("deliberate failure"));
        // the three survivors unwound as collateral
        assert_eq!(err.failures.len(), 4);
        for f in err.failures.iter().filter(|f| f.rank != 1) {
            assert!(matches!(
                f.error,
                RankError::Failed(CommError::Aborted { origin: 1, .. })
            ));
        }
    }

    #[test]
    fn error_return_aborts_world() {
        let err = try_run(3, |c| {
            if c.rank() == 2 {
                return Err(CommError::TypeMismatch {
                    src: 0,
                    tag: 9,
                    expected: "u32",
                });
            }
            c.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.origin, 2);
        assert!(!err.origin_panicked());
    }

    #[test]
    fn recv_timeout_produces_diagnostic_and_aborts() {
        let opts = RunOptions {
            recv_timeout: Duration::from_millis(100),
            faults: None,
        };
        let err = try_run_with(2, opts, |c| {
            if c.rank() == 1 {
                // waiting on a message nobody sends: a genuine deadlock
                let _: u32 = c.try_recv(0, 7)?;
            }
            // rank 0 also blocks (on the barrier), exercising the dump;
            // it enters late so rank 1's deadline expires first and the
            // abort origin is deterministic
            std::thread::sleep(Duration::from_millis(50));
            c.try_barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err.origin, 1);
        let timeout = err
            .failures
            .iter()
            .find_map(|f| match &f.error {
                RankError::Failed(e @ CommError::Timeout { .. }) => Some(e.clone()),
                _ => None,
            })
            .expect("rank 1 reports the timeout");
        if let CommError::Timeout {
            rank,
            src,
            tag,
            diagnostic,
            ..
        } = timeout
        {
            assert_eq!((rank, src, tag), (1, 0, 7));
            assert!(diagnostic.contains("rank 1: waiting on src=0 tag=user:7"));
            assert!(diagnostic.contains("deadlock diagnostic"));
        }
    }

    #[test]
    fn type_mismatch_is_typed_not_a_hang() {
        let err = try_run(2, |c| {
            if c.rank() == 0 {
                c.try_send(1, 3, 5u32)?;
                Ok(0u64)
            } else {
                c.try_recv::<u64>(0, 3) // wrong type on purpose
            }
        })
        .unwrap_err();
        assert_eq!(err.origin, 1);
        let f = err.origin_failure().unwrap();
        assert!(matches!(
            f.error,
            RankError::Failed(CommError::TypeMismatch { src: 0, tag: 3, .. })
        ));
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let base = run(4, |c| c.allgather(c.rank()));
        let faulty = run_with_faults(4, FaultPlan::new(123), |c| c.allgather(c.rank())).unwrap();
        assert_eq!(base, faulty);
    }

    #[test]
    fn delays_and_reordering_keep_results_identical() {
        let base = run(4, |c| {
            let g = c.allgather(c.rank() as u64 * 7);
            let s = c.exscan_sum(c.rank() as u64 + 1);
            c.barrier();
            (g, s)
        });
        for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
            let plan = FaultPlan::new(seed)
                .with_delays(0.3, Duration::from_micros(150))
                .with_reordering(0.3);
            let faulty = run_with_faults(4, plan, |c| {
                let g = c.allgather(c.rank() as u64 * 7);
                let s = c.exscan_sum(c.rank() as u64 + 1);
                c.barrier();
                (g, s)
            })
            .unwrap();
            assert_eq!(base, faulty, "seed {seed} changed a collective result");
        }
    }

    #[test]
    fn scheduled_panic_is_reported_not_hung() {
        let start = Instant::now();
        let err = run_with_faults(4, FaultPlan::new(5).with_panic_at(3, 1), |c| {
            c.barrier(); // op 0
            c.barrier(); // op 1: rank 3 dies here
            c.rank()
        })
        .unwrap_err();
        assert_eq!(err.origin, 3);
        assert!(err.origin_panicked());
        assert!(err.reason.contains("scheduled panic"));
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
    }
}
