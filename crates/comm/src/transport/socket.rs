//! The process-per-rank socket backend.
//!
//! Topology is a star: the supervisor (the process that called
//! [`try_run_program`](crate::try_run_program)) binds a Unix domain
//! socket, spawns one worker process per rank, and routes every
//! rank-to-rank message through itself. Workers learn their identity
//! and configuration from environment variables, connect back, say
//! `Hello`, and run the named program against a [`ChildLink`]
//! transport whose `deliver` writes Wire-encoded frames instead of
//! pushing into a shared mailbox.
//!
//! Liveness: every worker heartbeats on a dedicated thread; the
//! supervisor's monitor marks a rank dead after a configurable window
//! of silence ([`SocketOptions::heartbeat_grace`]). Death — clean EOF,
//! mid-frame EOF, missed heartbeats, or an injected SIGKILL — becomes
//! a [`CommError::PeerFailed`] abort that unwinds every surviving
//! rank, exactly like a panic does on the thread backend. That makes a
//! `kill -9` a *recoverable input* to
//! [`run_with_recovery_program`](crate::run_with_recovery_program)
//! rather than a wedged job.

use super::frame::{encode_frame, read_frame, read_frame_timeout, Frame, FrameError};
use super::{ProgramCtx, ProgramRegistry, SocketOptions};
use crate::{
    plock, AbortInfo, Attempt, Comm, CommError, Mailbox, Msg, Payload, RankError, RankFailure,
    RankState, RunOptions, Transport, WorldError,
};
use quadforest_core::Wire;
use quadforest_telemetry as telemetry;
use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// Environment contract between supervisor and worker processes.
const ENV_PATH: &str = "QF_SOCKET_PATH";
const ENV_RANK: &str = "QF_SOCKET_RANK";
const ENV_SIZE: &str = "QF_SOCKET_SIZE";
const ENV_PROGRAM: &str = "QF_SOCKET_PROGRAM";
const ENV_ARGS: &str = "QF_SOCKET_ARGS";
const ENV_RECV_TIMEOUT_MS: &str = "QF_SOCKET_RECV_TIMEOUT_MS";
const ENV_HEARTBEAT_MS: &str = "QF_SOCKET_HEARTBEAT_MS";
const ENV_ATTEMPT: &str = "QF_SOCKET_ATTEMPT";
const ENV_FAULTS: &str = "QF_SOCKET_FAULTS";

/// Poll granularity for stop-flag checks inside blocking socket reads.
const READ_POLL: Duration = Duration::from_millis(25);

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

// ----------------------------------------------------------------------
// supervisor side
// ----------------------------------------------------------------------

/// One rank's terminal outcome: its Wire-encoded program result, or
/// how it failed.
type RankResult = Result<Vec<u8>, RankError>;

/// Shared state of the supervisor's router: per-rank writer channels,
/// liveness bookkeeping, first-wins abort record, result slots.
struct Router {
    size: usize,
    /// Per-rank frame writer (fed by reader threads and the monitor;
    /// drained by one dedicated writer thread per rank — "per-peer
    /// writer threads"). `None` once retired.
    writers: Vec<Mutex<Option<mpsc::Sender<Vec<u8>>>>>,
    last_beat: Vec<Mutex<Instant>>,
    /// Last liveness context heartbeated by each rank: (comm op index,
    /// telemetry phase). `(u64::MAX, "")` until the first beat that
    /// carries one. Lets the supervisor name a dead process's last
    /// known activity in the abort reason and the flight postmortem.
    last_ctx: Vec<Mutex<(u64, String)>>,
    /// Rank reached a terminal state (Done, Failed, or declared dead).
    terminal: Vec<AtomicBool>,
    results: Mutex<Vec<Option<RankResult>>>,
    abort: Mutex<Option<AbortInfo>>,
    children: Mutex<Vec<Option<Child>>>,
    stop: AtomicBool,
    /// Count of terminal ranks, guarded with `done_cv` for the waiter.
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl Router {
    fn new(size: usize) -> Self {
        Router {
            size,
            writers: (0..size).map(|_| Mutex::new(None)).collect(),
            last_beat: (0..size).map(|_| Mutex::new(Instant::now())).collect(),
            last_ctx: (0..size)
                .map(|_| Mutex::new((u64::MAX, String::new())))
                .collect(),
            terminal: (0..size).map(|_| AtomicBool::new(false)).collect(),
            results: Mutex::new((0..size).map(|_| None).collect()),
            abort: Mutex::new(None),
            children: Mutex::new((0..size).map(|_| None).collect()),
            stop: AtomicBool::new(false),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        }
    }

    /// Queue a pre-encoded frame for `rank`'s writer thread.
    fn send_to(&self, rank: usize, bytes: Vec<u8>) {
        if let Some(tx) = plock(&self.writers[rank]).as_ref() {
            let _ = tx.send(bytes);
        }
    }

    /// Record the first failure and broadcast it to every rank that is
    /// still alive; later callers keep the original origin.
    fn record_abort(&self, origin: usize, reason: String) {
        {
            let mut info = plock(&self.abort);
            if info.is_some() {
                return;
            }
            *info = Some(AbortInfo {
                origin,
                reason: reason.clone(),
            });
        }
        let frame = encode_frame(&Frame::Abort {
            origin: origin as u64,
            reason,
        });
        for r in 0..self.size {
            if !self.terminal[r].load(Ordering::Acquire) {
                self.send_to(r, frame.clone());
            }
        }
    }

    /// Move `rank` to a terminal state with `outcome` (first writer
    /// wins) and wake the supervisor if everyone is now terminal.
    fn finish(&self, rank: usize, outcome: Result<Vec<u8>, RankError>) {
        {
            let mut results = plock(&self.results);
            if results[rank].is_some() {
                return;
            }
            results[rank] = Some(outcome);
        }
        self.terminal[rank].store(true, Ordering::Release);
        let mut done = plock(&self.done);
        *done += 1;
        self.done_cv.notify_all();
    }

    /// SIGKILL `rank`'s process, if still tracked.
    fn kill_child(&self, rank: usize) {
        if let Some(child) = plock(&self.children)[rank].as_mut() {
            let _ = child.kill();
        }
    }

    /// Declare `rank`'s process dead: record the failure, abort the
    /// world, mark terminal, then kill the process for certainty. The
    /// record must come FIRST — killing first lets the rank's reader
    /// thread observe the EOF and race in a generic "process died"
    /// reason before the real one (e.g. a missed heartbeat window).
    /// Supervisor-side flight record of a peer death: a `PeerFailed`
    /// event naming the victim's last known comm op and phase, then
    /// the postmortem dump (`flight-sup.qfr` — the supervisor has no
    /// rank of its own).
    fn flight_peer_failed(&self, rank: usize, op: u64, phase: &str) {
        if !telemetry::flight::armed() {
            return;
        }
        let phase = if phase.is_empty() { "?" } else { phase };
        telemetry::flight::event(
            telemetry::flight::FlightKind::PeerFailed,
            rank as u32,
            if op == u64::MAX { 0 } else { op },
            telemetry::flight::name_id(phase) as u64,
        );
        telemetry::flight::dump_postmortem(telemetry::flight::NO_RANK);
    }

    fn declare_dead(&self, rank: usize, reason: String) {
        telemetry::counter_add("comm.peer_failures", 1);
        let (op, phase) = plock(&self.last_ctx[rank]).clone();
        let reason = if op != u64::MAX {
            format!(
                "{reason}; last heartbeat reported comm op {op} in phase '{}'",
                if phase.is_empty() {
                    "?"
                } else {
                    phase.as_str()
                }
            )
        } else {
            reason
        };
        self.flight_peer_failed(rank, op, &phase);
        self.record_abort(rank, reason.clone());
        self.finish(
            rank,
            Err(RankError::Failed(CommError::PeerFailed { rank, reason })),
        );
        self.kill_child(rank);
    }
}

/// Reader loop for one child connection: routes messages, tracks
/// heartbeats, converts Done/Failed frames into results, and turns an
/// unexpected EOF or corrupt frame into a peer-death abort.
fn reader_loop(router: &Router, rank: usize, stream: &mut UnixStream) {
    loop {
        match read_frame(stream, &router.stop) {
            Ok(Frame::Msg {
                src,
                dst,
                tag,
                type_tag,
                bytes,
                data,
            }) => {
                let dst_usize = dst as usize;
                if src as usize != rank || dst_usize >= router.size {
                    router.declare_dead(
                        rank,
                        format!(
                            "rank {rank} sent a corrupt route (src={src} dst={dst}, size {})",
                            router.size
                        ),
                    );
                    return;
                }
                router.send_to(
                    dst_usize,
                    encode_frame(&Frame::Msg {
                        src,
                        dst,
                        tag,
                        type_tag,
                        bytes,
                        data,
                    }),
                );
            }
            Ok(Frame::Heartbeat { op, phase, .. }) => {
                telemetry::counter_add("comm.heartbeat.received", 1);
                *plock(&router.last_beat[rank]) = Instant::now();
                *plock(&router.last_ctx[rank]) = (op, phase);
            }
            Ok(Frame::Abort { origin, reason }) => {
                router.record_abort(origin as usize, reason);
            }
            Ok(Frame::Done { result, .. }) => {
                router.finish(rank, Ok(result));
            }
            Ok(Frame::Failed {
                panicked,
                reason,
                error,
                ..
            }) => {
                router.record_abort(rank, reason.clone());
                let rank_error = if panicked {
                    RankError::Panicked(reason)
                } else {
                    RankError::Failed(error.unwrap_or(CommError::PeerFailed { rank, reason }))
                };
                router.finish(rank, Err(rank_error));
            }
            Ok(Frame::RequestKill { op, .. }) => {
                telemetry::counter_add("comm.sigkill.injected", 1);
                let phase = plock(&router.last_ctx[rank]).1.clone();
                router.flight_peer_failed(rank, op, &phase);
                let reason =
                    format!("fault injection: scheduled SIGKILL at comm op {op} on rank {rank}");
                router.record_abort(rank, reason.clone());
                router.finish(
                    rank,
                    Err(RankError::Failed(CommError::PeerFailed { rank, reason })),
                );
                router.kill_child(rank);
            }
            Ok(Frame::Hello { .. }) => {
                // late Hello is a protocol violation; harmless, ignore
            }
            Err(FrameError::Stopped) => return,
            Err(e) => {
                if !router.terminal[rank].load(Ordering::Acquire) {
                    let reason = match &e {
                        FrameError::Eof | FrameError::TruncatedEof { .. } => {
                            format!("rank {rank} process died: {e}")
                        }
                        _ => format!("rank {rank} transport corrupted: {e}"),
                    };
                    router.declare_dead(rank, reason);
                }
                return;
            }
        }
    }
}

/// Liveness monitor: sweeps non-terminal ranks for missed-heartbeat
/// windows and enforces a global wall-clock backstop.
fn monitor_loop(router: &Router, opts: &SocketOptions, hard_deadline: Instant) {
    let window = opts.death_window();
    let sweep = (opts.heartbeat_interval / 2).max(Duration::from_millis(5));
    loop {
        if router.stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(sweep);
        let now = Instant::now();
        for rank in 0..router.size {
            if router.terminal[rank].load(Ordering::Acquire) {
                continue;
            }
            let last = *plock(&router.last_beat[rank]);
            if now.duration_since(last) > window {
                telemetry::counter_add("comm.heartbeat.missed", 1);
                router.declare_dead(
                    rank,
                    format!(
                        "rank {rank} missed its heartbeat window \
                         ({}×{:?} with no beat)",
                        opts.heartbeat_grace, opts.heartbeat_interval
                    ),
                );
            }
        }
        if now >= hard_deadline {
            for rank in 0..router.size {
                if !router.terminal[rank].load(Ordering::Acquire) {
                    router.declare_dead(
                        rank,
                        format!("rank {rank} still running at the supervisor deadline"),
                    );
                }
            }
            return;
        }
    }
}

/// Unique-per-call socket path in the system temp directory.
fn socket_path() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("quadforest-{}-{n}.sock", std::process::id()))
}

/// Run `program` across `size` worker processes. See the module docs
/// for the protocol; failure reporting matches the thread backend's
/// [`try_run_with`](crate::try_run_with) in shape.
pub(crate) fn run_socket_world(
    size: usize,
    opts: &RunOptions,
    sock: &SocketOptions,
    program: &str,
    args: &[u8],
    attempt: Attempt,
) -> Result<Vec<Vec<u8>>, WorldError> {
    assert!(size > 0);
    telemetry::flight::arm();
    let path = socket_path();
    let _ = std::fs::remove_file(&path);
    let listener =
        UnixListener::bind(&path).unwrap_or_else(|e| panic!("bind socket {}: {e}", path.display()));
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");

    let router = Arc::new(Router::new(size));

    // spawn one worker per rank
    for rank in 0..size {
        let mut cmd = Command::new(&sock.worker);
        cmd.env(ENV_PATH, &path)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SIZE, size.to_string())
            .env(ENV_PROGRAM, program)
            .env(ENV_ARGS, hex_encode(args))
            .env(
                ENV_RECV_TIMEOUT_MS,
                opts.recv_timeout.as_millis().to_string(),
            )
            .env(
                ENV_HEARTBEAT_MS,
                sock.heartbeat_interval.as_millis().max(1).to_string(),
            )
            .env(ENV_ATTEMPT, attempt.index.to_string())
            .stdin(Stdio::null());
        // children dump their flight postmortems next to the
        // supervisor's (set_postmortem_dir only affects this process)
        if let Some(dir) = telemetry::flight::postmortem_dir() {
            cmd.env(telemetry::flight::ENV_FLIGHT_DIR, &dir);
        }
        if let Some(plan) = &opts.faults {
            cmd.env(ENV_FAULTS, hex_encode(&plan.to_wire()));
        }
        match cmd.spawn() {
            Ok(child) => plock(&router.children)[rank] = Some(child),
            Err(e) => panic!(
                "spawn worker {} for rank {rank}: {e}",
                sock.worker.display()
            ),
        }
    }

    // accept + handshake: collect one identified stream per rank
    let mut streams: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();
    let connect_deadline = Instant::now() + sock.connect_timeout;
    let mut connected = 0usize;
    while connected < size {
        if Instant::now() >= connect_deadline {
            break;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_read_timeout(Some(READ_POLL))
                    .expect("read timeout");
                match read_frame_timeout(&mut stream, sock.connect_timeout) {
                    Ok(Frame::Hello { rank }) if (rank as usize) < size => {
                        let r = rank as usize;
                        if streams[r].is_none() {
                            *plock(&router.last_beat[r]) = Instant::now();
                            streams[r] = Some(stream);
                            connected += 1;
                        }
                    }
                    _ => { /* not a proper worker; drop the stream */ }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("accept on {}: {e}", path.display()),
        }
    }
    if connected < size {
        // startup failure: kill everything and report the missing ranks
        router.stop.store(true, Ordering::Release);
        let mut failures = Vec::new();
        for (rank, slot) in streams.iter().enumerate() {
            if slot.is_none() {
                router.kill_child(rank);
                failures.push(RankFailure {
                    rank,
                    error: RankError::Failed(CommError::PeerFailed {
                        rank,
                        reason: format!("worker never connected within {:?}", sock.connect_timeout),
                    }),
                });
            }
        }
        for child in plock(&router.children).iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&path);
        let origin = failures[0].rank;
        return Err(WorldError {
            size,
            origin,
            reason: format!(
                "worker for rank {origin} never connected within {:?}",
                sock.connect_timeout
            ),
            failures,
        });
    }

    // Register EVERY rank's writer channel before spawning ANY reader
    // thread: a reader immediately routes frames to peer writers via
    // `send_to`, which silently drops when the destination's channel is
    // not yet registered — interleaving registration with reader spawns
    // loses early frames to high ranks (a rare, load-dependent hang).
    let mut halves = Vec::with_capacity(size);
    for (rank, slot) in streams.into_iter().enumerate() {
        let stream = slot.expect("all connected");
        let write_half = stream.try_clone().expect("clone stream");
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        *plock(&router.writers[rank]) = Some(tx);
        halves.push((rank, stream, write_half, rx));
    }
    let mut threads = Vec::new();
    for (rank, stream, mut write_half, rx) in halves {
        threads.push(
            std::thread::Builder::new()
                .name(format!("sock-write-{rank}"))
                .spawn(move || {
                    while let Ok(buf) = rx.recv() {
                        if write_half.write_all(&buf).is_err() {
                            return; // reader side reports the death
                        }
                    }
                })
                .expect("spawn writer"),
        );
        let router_r = Arc::clone(&router);
        let mut read_half = stream;
        threads.push(
            std::thread::Builder::new()
                .name(format!("sock-read-{rank}"))
                .spawn(move || reader_loop(&router_r, rank, &mut read_half))
                .expect("spawn reader"),
        );
    }

    // liveness monitor with a generous global backstop: children
    // enforce their own recv timeouts, this only catches a wedged
    // supervisor protocol
    let hard_deadline =
        Instant::now() + opts.recv_timeout + opts.recv_timeout + sock.death_window();
    {
        let router_m = Arc::clone(&router);
        let sock_m = sock.clone();
        threads.push(
            std::thread::Builder::new()
                .name("sock-monitor".into())
                .spawn(move || monitor_loop(&router_m, &sock_m, hard_deadline))
                .expect("spawn monitor"),
        );
    }

    // wait until every rank is terminal
    {
        let mut done = plock(&router.done);
        while *done < size {
            let (d, timed_out) = router
                .done_cv
                .wait_timeout(done, Duration::from_millis(500))
                .unwrap_or_else(|p| p.into_inner());
            done = d;
            if timed_out.timed_out() && Instant::now() > hard_deadline + Duration::from_secs(10) {
                // paranoia backstop in case the monitor thread died
                drop(done);
                for rank in 0..size {
                    if !router.terminal[rank].load(Ordering::Acquire) {
                        router.declare_dead(rank, format!("rank {rank}: supervisor gave up"));
                    }
                }
                done = plock(&router.done);
            }
        }
    }

    // teardown: retire writers, stop readers/monitor, reap children
    router.stop.store(true, Ordering::Release);
    for w in &router.writers {
        plock(w).take();
    }
    for t in threads {
        let _ = t.join();
    }
    for child in plock(&router.children).iter_mut().flatten() {
        let _ = child.kill(); // no-op for cleanly exited children
        let _ = child.wait(); // reap
    }
    let _ = std::fs::remove_file(&path);

    // assemble the world result, mirroring try_run_with
    let results = std::mem::take(&mut *plock(&router.results));
    let mut values = Vec::with_capacity(size);
    let mut failures = Vec::new();
    for (rank, outcome) in results.into_iter().enumerate() {
        match outcome.expect("every rank terminal") {
            Ok(v) => values.push(v),
            Err(error) => failures.push(RankFailure { rank, error }),
        }
    }
    if failures.is_empty() {
        Ok(values)
    } else {
        let (origin, reason) = plock(&router.abort)
            .clone()
            .map(|i| (i.origin, i.reason))
            .unwrap_or_else(|| (failures[0].rank, failures[0].error.to_string()));
        Err(WorldError {
            size,
            origin,
            reason,
            failures,
        })
    }
}

// ----------------------------------------------------------------------
// worker (child) side
// ----------------------------------------------------------------------

/// The child half of a socket world: one inbox fed by a reader thread,
/// a shared write half, local abort state, and a heartbeat kill
/// switch. Implements [`Transport`] so the rank's `Comm` runs the
/// exact same matching/collective/abort logic as on threads.
struct ChildLink {
    rank: usize,
    size: usize,
    recv_timeout: Duration,
    inbox: Mailbox,
    aborted: AtomicBool,
    abort: Mutex<Option<AbortInfo>>,
    writer: Mutex<UnixStream>,
    /// Set to silence the heartbeat thread (stall injection, exit).
    hb_stop: AtomicBool,
    /// Set to retire the reader thread on exit.
    stop: AtomicBool,
    status: Mutex<RankState>,
    tag_names: Mutex<HashMap<u64, &'static str>>,
    /// Most recent counted comm op (via [`Transport::note_comm_op`]),
    /// folded into outgoing heartbeats; `u64::MAX` until the first op.
    last_op: AtomicU64,
    /// Telemetry phase active at that op (`""` when none).
    last_phase: Mutex<&'static str>,
}

impl ChildLink {
    /// Write one frame to the supervisor. A write failure means the
    /// supervisor is gone; record a local abort so blocked receives
    /// unwind instead of waiting out their full timeout.
    fn send_frame(&self, frame: &Frame) {
        let bytes = encode_frame(frame);
        let failed = plock(&self.writer).write_all(&bytes).is_err();
        if failed {
            self.local_abort(
                usize::MAX,
                "connection to supervisor lost (write failed)".into(),
            );
        }
    }

    /// Record an abort locally and wake the (single) blocked receiver.
    /// Does not echo to the supervisor.
    fn local_abort(&self, origin: usize, reason: String) {
        {
            let mut info = plock(&self.abort);
            if info.is_none() {
                *info = Some(AbortInfo { origin, reason });
            }
        }
        self.aborted.store(true, Ordering::Release);
        let _guard = plock(&self.inbox.queue);
        self.inbox.cv.notify_all();
    }
}

impl Transport for ChildLink {
    fn size(&self) -> usize {
        self.size
    }

    fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    fn serializes(&self) -> bool {
        true
    }

    fn mailbox(&self, rank: usize) -> &Mailbox {
        debug_assert_eq!(rank, self.rank);
        &self.inbox
    }

    fn deliver(&self, dest: usize, msg: Msg) {
        if dest == self.rank {
            // self-sends stay local: no supervisor round trip
            self.inbox.push(msg);
            return;
        }
        match msg.payload {
            Payload::Bytes { type_tag, data } => self.send_frame(&Frame::Msg {
                src: msg.src as u64,
                dst: dest as u64,
                tag: msg.tag,
                type_tag,
                bytes: msg.bytes,
                data,
            }),
            Payload::Local(_) => {
                unreachable!("socket transport serializes every payload at send_value")
            }
        }
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    fn abort(&self, origin: usize, reason: String) {
        self.local_abort(origin, reason.clone());
        self.send_frame(&Frame::Abort {
            origin: origin as u64,
            reason,
        });
    }

    fn abort_error(&self) -> CommError {
        match plock(&self.abort).clone() {
            Some(AbortInfo { origin, reason }) => CommError::Aborted { origin, reason },
            None => CommError::Aborted {
                origin: usize::MAX,
                reason: "world aborted".into(),
            },
        }
    }

    fn set_status(&self, rank: usize, state: RankState) {
        debug_assert_eq!(rank, self.rank);
        *plock(&self.status) = state;
    }

    fn diagnostic(&self) -> String {
        // peers live in other processes; report what this rank knows
        let state = plock(&self.status).clone();
        format!(
            "deadlock diagnostic (socket backend, rank {} of {}, recv timeout {:?}):\n  \
             local state: {state:?}\n  \
             (peer states live in their own processes; see the supervisor's report)\n",
            self.rank, self.size, self.recv_timeout
        )
    }

    fn tag_label(&self, tag: u64) -> String {
        let base = crate::error::tag_display(tag);
        if tag >= crate::COLL_TAG_BASE {
            let seq = (tag - crate::COLL_TAG_BASE) & 0xFFFF_FFFF;
            if let Some(name) = plock(&self.tag_names).get(&seq) {
                return format!("{base}({name})");
            }
        }
        base
    }

    fn name_collective(&self, seq: u64, phase: &'static str) {
        plock(&self.tag_names).entry(seq).or_insert(phase);
    }

    fn request_kill(&self, rank: usize, op: u64) -> bool {
        self.send_frame(&Frame::RequestKill {
            rank: rank as u64,
            op,
        });
        true
    }

    fn begin_stall(&self, _rank: usize, _op: u64) -> bool {
        self.hb_stop.store(true, Ordering::Release);
        true
    }

    fn note_comm_op(&self, op: u64, phase: Option<&'static str>) {
        self.last_op.store(op, Ordering::Relaxed);
        *plock(&self.last_phase) = phase.unwrap_or("");
    }
}

/// Reader loop inside a worker: push routed messages into the inbox,
/// honor abort broadcasts, convert a lost supervisor into an abort.
fn child_reader_loop(link: &ChildLink, stream: &mut UnixStream) {
    loop {
        match read_frame(stream, &link.stop) {
            Ok(Frame::Msg {
                src,
                dst,
                tag,
                type_tag,
                bytes,
                data,
            }) => {
                debug_assert_eq!(dst as usize, link.rank);
                link.inbox.push(Msg {
                    src: src as usize,
                    tag,
                    payload: Payload::Bytes { type_tag, data },
                    bytes,
                });
            }
            Ok(Frame::Abort { origin, reason }) => {
                link.local_abort(origin as usize, reason);
            }
            Ok(_) => { /* the supervisor sends nothing else */ }
            Err(FrameError::Stopped) => return,
            Err(e) => {
                link.local_abort(usize::MAX, format!("connection to supervisor lost: {e}"));
                return;
            }
        }
    }
}

/// Parse the worker environment, run the requested program, report the
/// outcome in-band. Returns the process exit code.
fn run_child(registry: &ProgramRegistry) -> i32 {
    let env_num = |key: &str| -> u64 {
        std::env::var(key)
            .unwrap_or_else(|_| panic!("worker env {key} missing"))
            .parse()
            .unwrap_or_else(|_| panic!("worker env {key} malformed"))
    };
    let path = std::env::var(ENV_PATH).expect("checked by caller");
    let rank = env_num(ENV_RANK) as usize;
    let size = env_num(ENV_SIZE) as usize;
    let program = std::env::var(ENV_PROGRAM).expect("program name");
    let args = hex_decode(&std::env::var(ENV_ARGS).unwrap_or_default()).expect("args hex");
    let recv_timeout = Duration::from_millis(env_num(ENV_RECV_TIMEOUT_MS));
    let heartbeat = Duration::from_millis(env_num(ENV_HEARTBEAT_MS).max(1));
    let attempt = Attempt {
        index: env_num(ENV_ATTEMPT) as usize,
    };
    let faults = std::env::var(ENV_FAULTS).ok().map(|hex| {
        crate::FaultPlan::from_wire(&hex_decode(&hex).expect("fault hex"))
            .expect("fault plan decodes")
    });

    // Flight recorder: every worker records its own ring and, on a
    // clean failure, dumps it before reporting (a SIGKILLed worker
    // obviously cannot — the supervisor's dump covers that case).
    telemetry::flight::arm();
    telemetry::flight::set_thread_rank(rank as u32);

    // connect with retry: the supervisor binds before spawning, but be
    // tolerant of slow filesystems
    let connect_deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= connect_deadline {
                    eprintln!("rank {rank}: cannot connect to supervisor at {path}: {e}");
                    return 3;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    stream
        .set_read_timeout(Some(READ_POLL))
        .expect("read timeout");
    let read_half = stream.try_clone().expect("clone stream");

    let link = Arc::new(ChildLink {
        rank,
        size,
        recv_timeout,
        inbox: Mailbox::new(),
        aborted: AtomicBool::new(false),
        abort: Mutex::new(None),
        writer: Mutex::new(stream),
        hb_stop: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        status: Mutex::new(RankState::Running),
        tag_names: Mutex::new(HashMap::new()),
        last_op: AtomicU64::new(u64::MAX),
        last_phase: Mutex::new(""),
    });

    link.send_frame(&Frame::Hello { rank: rank as u64 });

    // reader thread: feeds the inbox
    let reader = {
        let link = Arc::clone(&link);
        let mut stream = read_half;
        std::thread::Builder::new()
            .name(format!("rank-{rank}-reader"))
            .spawn(move || child_reader_loop(&link, &mut stream))
            .expect("spawn reader")
    };

    // heartbeat thread: liveness beacon until silenced
    let heartbeater = {
        let link = Arc::clone(&link);
        std::thread::Builder::new()
            .name(format!("rank-{rank}-heartbeat"))
            .spawn(move || {
                let mut seq = 0u64;
                while !link.hb_stop.load(Ordering::Acquire) {
                    link.send_frame(&Frame::Heartbeat {
                        rank: link.rank as u64,
                        seq,
                        op: link.last_op.load(Ordering::Relaxed),
                        phase: plock(&link.last_phase).to_string(),
                    });
                    telemetry::counter_add("comm.heartbeat.sent", 1);
                    seq += 1;
                    std::thread::sleep(heartbeat);
                }
            })
            .expect("spawn heartbeat")
    };

    let comm = Comm::new(
        rank,
        Arc::clone(&link) as Arc<dyn Transport>,
        faults.as_ref().map(|p| p.compile(rank)),
    );
    let ctx = ProgramCtx { args, attempt };
    let f = registry.get(&program).unwrap_or_else(|| {
        panic!(
            "worker registry has no program '{program}' (registered: {:?})",
            registry.names()
        )
    });

    let outcome = catch_unwind(AssertUnwindSafe(|| f(&comm, &ctx)));
    drop(comm); // flush any held (reordered) messages before reporting
    let died_in = || {
        telemetry::failure_phase()
            .map(|p| format!(" (in phase '{p}')"))
            .unwrap_or_default()
    };
    match outcome {
        Ok(Ok(result)) => {
            link.send_frame(&Frame::Done {
                rank: rank as u64,
                result,
            });
        }
        Ok(Err(e)) => {
            let reason = format!("{e}{}", died_in());
            telemetry::flight::dump_postmortem(rank as u32);
            link.send_frame(&Frame::Failed {
                rank: rank as u64,
                panicked: false,
                reason,
                error: Some(e),
            });
        }
        Err(payload) => {
            let msg = crate::panic_message(payload);
            let reason = format!("panicked{}: {msg}", died_in());
            telemetry::flight::dump_postmortem(rank as u32);
            link.send_frame(&Frame::Failed {
                rank: rank as u64,
                panicked: true,
                reason,
                error: None,
            });
        }
    }

    // orderly retirement; process::exit would also do it, but joining
    // avoids racing the final frame against the heartbeat writer
    link.hb_stop.store(true, Ordering::Release);
    link.stop.store(true, Ordering::Release);
    let _ = heartbeater.join();
    let _ = reader.join();
    0
}

/// See [`crate::maybe_run_socket_child`].
pub(crate) fn maybe_run_socket_child(registry: &ProgramRegistry) -> bool {
    if std::env::var(ENV_PATH).is_err() {
        return false;
    }
    let code = run_child(registry);
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [vec![], vec![0u8], vec![0xFF, 0x00, 0x7A, 13]] {
            assert_eq!(hex_decode(&hex_encode(&data)), Some(data));
        }
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None);
    }
}
