//! Pluggable transport backends.
//!
//! The communicator logic in [`Comm`](crate::Comm) — message matching,
//! parking, collectives, fault injection, abort unwinding — is backend
//! generic: it talks to a [`Transport`] that knows how to move a
//! [`Msg`](crate::Msg) between ranks and how to spread an abort. Two
//! backends implement it:
//!
//! * **threads** ([`World`](crate::World)): the original in-process
//!   simulator — one OS thread per rank sharing mailboxes. Payloads
//!   move as boxed values, never serialized.
//! * **sockets** ([`socket`]): one OS *process* per rank, connected to
//!   a supervisor over a Unix domain socket in a star topology.
//!   Payloads are Wire-encoded into CRC-guarded length-prefixed
//!   frames; liveness is tracked with heartbeats; a dead process is a
//!   detectable, recoverable event instead of a wedged world.
//!
//! Because child processes cannot inherit closures, socket worlds run
//! *named programs* out of a [`ProgramRegistry`]: plain `fn` items
//! taking `(&Comm, &ProgramCtx)` and returning Wire-encoded bytes. The
//! same registry runs unchanged on the thread backend via
//! [`try_run_program`], which is how one parameterized test harness
//! covers both backends.

pub(crate) mod frame;
pub(crate) mod socket;
pub(crate) mod tcp;

use crate::{Attempt, Comm, CommError, Mailbox, Msg, RankState, RunOptions, WorldError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// The backend-facing surface of a world: everything `Comm` needs to
/// run its matching, collective, and abort logic without knowing
/// whether peers are threads or processes.
pub(crate) trait Transport: Send + Sync {
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Blocking-receive timeout configured for this world.
    fn recv_timeout(&self) -> Duration;
    /// True when payloads cross a process boundary and must be
    /// Wire-encoded by the sender (socket backend).
    fn serializes(&self) -> bool;
    /// The inbound queue `rank` blocks on.
    fn mailbox(&self, rank: usize) -> &Mailbox;
    /// Enqueue a message for `dest` (local push or socket frame).
    fn deliver(&self, dest: usize, msg: Msg);
    /// Fast-path abort check.
    fn is_aborted(&self) -> bool;
    /// Record a failure (first origin wins) and wake every blocked rank.
    fn abort(&self, origin: usize, reason: String);
    /// The error a rank unwinds with once the world is aborted.
    fn abort_error(&self) -> CommError;
    /// Publish what this rank is doing, for peers' deadlock diagnostics.
    fn set_status(&self, rank: usize, state: RankState);
    /// World-state dump for timeout diagnostics.
    fn diagnostic(&self) -> String;
    /// Tag pretty-printer (knows collective span names when recorded).
    fn tag_label(&self, tag: u64) -> String;
    /// Remember which telemetry span issued collective `seq`.
    fn name_collective(&self, seq: u64, phase: &'static str);
    /// SIGKILL fault hook: returns true when the transport arranged a
    /// real process kill and the calling rank should park awaiting it.
    /// The thread backend returns false (degrade to panic).
    fn request_kill(&self, rank: usize, op: u64) -> bool;
    /// Stall fault hook: returns true when the transport stopped this
    /// rank's heartbeats and the rank should park forever, leaving
    /// death detection to the supervisor's missed-heartbeat window.
    fn begin_stall(&self, rank: usize, op: u64) -> bool;
    /// Liveness context hook, called once per counted comm op with the
    /// op index and the current telemetry phase. The socket backend
    /// folds these into its heartbeat frames so the supervisor can name
    /// a SIGKILLed rank's last comm op and phase in the flight-recorder
    /// postmortem; the thread backend needs nothing (the victim's own
    /// events are already in the shared ring).
    fn note_comm_op(&self, _op: u64, _phase: Option<&'static str>) {}
}

/// Configuration of the socket (process-per-rank) backend.
#[derive(Clone, Debug)]
pub struct SocketOptions {
    /// Executable spawned once per rank. Must call
    /// [`maybe_run_socket_child`] before doing anything else, with a
    /// registry containing the program being run — the canonical
    /// choice is `std::env::current_exe()` (the supervisor re-executes
    /// its own binary).
    pub worker: PathBuf,
    /// Interval between heartbeat frames sent by each rank process.
    pub heartbeat_interval: Duration,
    /// How many consecutive missed heartbeat intervals mark a rank
    /// dead. The window is `heartbeat_interval * heartbeat_grace`;
    /// keep it generous — a rank busy in a long compute phase still
    /// heartbeats (the sender is a dedicated thread), but a loaded CI
    /// machine can starve that thread for tens of milliseconds.
    pub heartbeat_grace: u32,
    /// How long to wait for all rank processes to connect back before
    /// declaring the world failed to start.
    pub connect_timeout: Duration,
}

impl SocketOptions {
    /// Options with the given worker executable and default liveness
    /// parameters (50 ms heartbeats, 40-interval = 2 s death window,
    /// 10 s connect timeout).
    pub fn new(worker: PathBuf) -> Self {
        SocketOptions {
            worker,
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_grace: 40,
            connect_timeout: Duration::from_secs(10),
        }
    }

    /// The full missed-heartbeat death window.
    pub fn death_window(&self) -> Duration {
        self.heartbeat_interval
            .saturating_mul(self.heartbeat_grace.max(1))
    }
}

/// Configuration of the TCP (process-per-rank, multi-node-capable)
/// backend. Same star topology and liveness model as
/// [`SocketOptions`], plus the pieces a lossy network needs: a
/// reconnect schedule and a frame-size cap on the read path.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Executable spawned once per rank; must call
    /// [`maybe_run_socket_child`] first thing in `main()` (it detects
    /// both socket and TCP worker environments).
    pub worker: PathBuf,
    /// Interval between heartbeat frames sent by each rank process.
    pub heartbeat_interval: Duration,
    /// Missed heartbeat intervals before a rank is declared dead. The
    /// window is also the budget inside which a dropped connection may
    /// reconnect and resume with **no** failure escalation.
    pub heartbeat_grace: u32,
    /// How long to wait for all rank processes to connect back before
    /// declaring the world failed to start.
    pub connect_timeout: Duration,
    /// Reconnect schedule after a broken connection: bounded
    /// exponential backoff with deterministic jitter, reusing the
    /// recovery supervisor's policy machinery. When the schedule is
    /// exhausted the rank gives up and the supervisor's heartbeat
    /// window escalates to a real `PeerFailed`.
    pub reconnect: crate::RecoveryPolicy,
    /// Upper bound on a single wire frame; a longer length prefix
    /// (hostile peer, flipped bit) is rejected *before* allocation.
    pub max_frame_len: u32,
}

impl TcpOptions {
    /// Options with the given worker executable and default liveness
    /// parameters (50 ms heartbeats, 40-interval = 2 s death window,
    /// 10 s connect timeout, ~12-attempt jittered reconnect schedule).
    pub fn new(worker: PathBuf) -> Self {
        TcpOptions {
            worker,
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_grace: 40,
            connect_timeout: Duration::from_secs(10),
            reconnect: crate::RecoveryPolicy {
                max_attempts: 12,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(500),
                jitter_ppm: 200_000,
            },
            max_frame_len: frame::MAX_FRAME_LEN,
        }
    }

    /// The full missed-heartbeat death window.
    pub fn death_window(&self) -> Duration {
        self.heartbeat_interval
            .saturating_mul(self.heartbeat_grace.max(1))
    }
}

/// Which transport executes a program's ranks.
#[derive(Clone, Debug)]
pub enum Backend {
    /// One OS thread per rank in this process (the original simulator).
    Threads,
    /// One OS process per rank, joined over Unix domain sockets.
    Sockets(SocketOptions),
    /// One OS process per rank, joined over TCP (loopback by default;
    /// the same wire protocol works across machines). Adds a reliable
    /// session layer: sequence numbers, acks, and
    /// reconnect-with-backoff, so a transient connection loss inside
    /// the heartbeat window heals without any recovery escalation.
    Tcp(TcpOptions),
}

impl Backend {
    /// Short name for provenance records (bench JSON, telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Sockets(_) => "sockets",
            Backend::Tcp(_) => "tcp",
        }
    }
}

/// Per-rank context handed to a registered program alongside its `Comm`.
#[derive(Clone, Debug)]
pub struct ProgramCtx {
    /// Opaque argument bytes, identical on every rank (Wire-encode your
    /// parameter struct).
    pub args: Vec<u8>,
    /// Which recovery attempt this run is (attempt 0 = first try).
    pub attempt: Attempt,
}

/// A rank program runnable on any backend. A plain `fn` — not a
/// closure — because socket workers look it up by name in a fresh
/// process where no captured environment exists.
pub type ProgramFn = fn(&Comm, &ProgramCtx) -> Result<Vec<u8>, CommError>;

/// Name → program table shared by the supervisor and its spawned
/// workers (both sides construct the same registry, typically in a
/// common library function).
#[derive(Default)]
pub struct ProgramRegistry {
    map: BTreeMap<&'static str, ProgramFn>,
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name`; replaces any previous entry. Returns
    /// `self` for chaining.
    pub fn register(mut self, name: &'static str, f: ProgramFn) -> Self {
        self.map.insert(name, f);
        self
    }

    /// Look up a program by name.
    pub fn get(&self, name: &str) -> Option<ProgramFn> {
        self.map.get(name).copied()
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.map.keys().copied().collect()
    }
}

/// Run registered program `name` across `size` ranks on the chosen
/// backend and collect the per-rank result bytes in rank order.
///
/// On [`Backend::Threads`] this is [`try_run_with`](crate::try_run_with)
/// with the program wrapped as a closure. On [`Backend::Sockets`] the
/// supervisor spawns one worker process per rank and the same program
/// (found by name in the worker's registry) runs against the socket
/// transport. Failure reporting is identical in shape: a
/// [`WorldError`] naming the origin rank and all collateral failures —
/// plus, only possible on sockets, origins of kind
/// [`CommError::PeerFailed`] when a rank *process* died.
pub fn try_run_program(
    backend: &Backend,
    size: usize,
    opts: &RunOptions,
    registry: &ProgramRegistry,
    name: &str,
    args: &[u8],
    attempt: Attempt,
) -> Result<Vec<Vec<u8>>, WorldError> {
    match backend {
        Backend::Threads => {
            let f = registry
                .get(name)
                .unwrap_or_else(|| panic!("program '{name}' not in registry"));
            let ctx = ProgramCtx {
                args: args.to_vec(),
                attempt,
            };
            crate::try_run_with(size, opts.clone(), move |c| f(&c, &ctx))
        }
        Backend::Sockets(sock) => socket::run_socket_world(size, opts, sock, name, args, attempt),
        Backend::Tcp(tcp_opts) => tcp::run_tcp_world(size, opts, tcp_opts, name, args, attempt),
    }
}

/// Worker-process hook: when the calling process was spawned as a
/// socket- or TCP-backend rank (detected via environment variables set
/// by the supervisor), connect back, run the requested program from
/// `registry`, report the outcome in-band, and **exit the process**.
/// Returns normally — `false` — only when not a worker.
///
/// Call this first thing in `main()` of any binary used as a
/// [`SocketOptions::worker`] or [`TcpOptions::worker`].
pub fn maybe_run_socket_child(registry: &ProgramRegistry) -> bool {
    socket::maybe_run_socket_child(registry) || tcp::maybe_run_tcp_child(registry)
}
