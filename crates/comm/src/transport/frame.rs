//! Length-prefixed, CRC-guarded frames for the socket and TCP
//! transports.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [ len: u32 LE ][ len ^ LEN_GUARD: u32 LE ][ crc: u32 LE ][ payload ]
//! ```
//!
//! `len` counts only the payload; `crc` is CRC-32 of the payload (the
//! same polynomial the checkpoint shards use, from
//! [`quadforest_core::crc`]). The payload is the Wire encoding of a
//! [`Frame`] (Unix sockets) or of the TCP backend's packet envelope —
//! the framing itself is generic over any [`Wire`] payload via
//! [`encode_wire`] / [`read_wire`]. Decoding is strict and
//! hostile-input-safe: a length prefix above the *configurable* cap is
//! rejected *before* any allocation, a CRC mismatch or trailing bytes
//! is a typed error, and EOF mid-frame is distinguished from clean EOF
//! between frames — the reader can tell "peer hung up" from "peer died
//! mid-sentence". A network peer (or the chaos interposer) flipping
//! bits therefore surfaces as a typed [`FrameError`], never a panic —
//! the byte-mutation and stream-reassembly proptests below pin this.
//!
//! The second header word is the length prefix's own integrity guard.
//! The payload CRC cannot vouch for `len` — it is only checkable after
//! `len` bytes have been read, and a corrupted-but-under-the-cap
//! length points the reader at payload that will never arrive, where
//! it would silently consume every later frame on the stream
//! (heartbeats included) as bogus payload bytes while both ends still
//! look "live". The guard word makes any corruption of either length
//! word visible in the first 8 bytes, before the reader commits to a
//! payload: `len ^ guard != LEN_GUARD` is a typed
//! [`FrameError::HeaderCorrupt`] and an immediate link break.

use quadforest_core::crc::crc32;
use quadforest_core::wire::{Wire, WireError, WireReader};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Default upper bound on a single frame payload. Far above anything
/// the forest algorithms send (the biggest alltoallv slabs are a few
/// MiB), far below anything that could be a length-prefix attack. The
/// TCP backend makes the cap configurable per world
/// (`TcpOptions::max_frame_len`); the read path takes it as a
/// parameter and enforces it *before* allocating the payload buffer.
pub(crate) const MAX_FRAME_LEN: u32 = 256 << 20;

/// XOR mask tying the two length words of the header together. Any
/// single corrupted bit in either word breaks the relation; agreeing
/// corruption of both words would need the same bit flipped twice.
const LEN_GUARD: u32 = 0x5AFE_C0DE;

/// Bytes of framing before the payload: len, len-guard, payload CRC.
pub(crate) const HEADER_LEN: usize = 12;

/// Everything that travels over a rank⇄supervisor socket.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Frame {
    /// First frame on a connection: the child identifies its rank.
    Hello { rank: u64 },
    /// A point-to-point or collective message, routed via the
    /// supervisor star. `type_tag` is the sender's payload type hash;
    /// `bytes` the telemetry size estimate.
    Msg {
        src: u64,
        dst: u64,
        tag: u64,
        type_tag: u64,
        bytes: u64,
        data: Vec<u8>,
    },
    /// Periodic liveness beacon from a child, carrying the rank's last
    /// counted comm-op index and the telemetry phase it was in — so the
    /// supervisor can name a SIGKILLed rank's last comm op and phase in
    /// its flight-recorder postmortem even though the victim cannot
    /// dump anything itself.
    Heartbeat {
        rank: u64,
        seq: u64,
        op: u64,
        phase: String,
    },
    /// Abort broadcast: either direction. From a child it reports
    /// "this rank failed first"; from the supervisor it spreads the
    /// recorded origin to every surviving rank.
    Abort { origin: u64, reason: String },
    /// A child finished successfully with these result bytes.
    Done { rank: u64, result: Vec<u8> },
    /// A child's program failed. `error` is present when the program
    /// returned a typed `CommError` (absent for panics).
    Failed {
        rank: u64,
        panicked: bool,
        reason: String,
        error: Option<crate::CommError>,
    },
    /// Fault injection: the child asks the supervisor to SIGKILL it at
    /// scheduled comm op `op`, then parks awaiting death.
    RequestKill { rank: u64, op: u64 },
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { rank } => {
                out.push(0);
                rank.encode(out);
            }
            Frame::Msg {
                src,
                dst,
                tag,
                type_tag,
                bytes,
                data,
            } => {
                out.push(1);
                src.encode(out);
                dst.encode(out);
                tag.encode(out);
                type_tag.encode(out);
                bytes.encode(out);
                data.encode(out);
            }
            Frame::Heartbeat {
                rank,
                seq,
                op,
                phase,
            } => {
                out.push(2);
                rank.encode(out);
                seq.encode(out);
                op.encode(out);
                phase.encode(out);
            }
            Frame::Abort { origin, reason } => {
                out.push(3);
                origin.encode(out);
                reason.encode(out);
            }
            Frame::Done { rank, result } => {
                out.push(4);
                rank.encode(out);
                result.encode(out);
            }
            Frame::Failed {
                rank,
                panicked,
                reason,
                error,
            } => {
                out.push(5);
                rank.encode(out);
                panicked.encode(out);
                reason.encode(out);
                error.encode(out);
            }
            Frame::RequestKill { rank, op } => {
                out.push(6);
                rank.encode(out);
                op.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Frame::Hello {
                rank: u64::decode(r)?,
            }),
            1 => Ok(Frame::Msg {
                src: u64::decode(r)?,
                dst: u64::decode(r)?,
                tag: u64::decode(r)?,
                type_tag: u64::decode(r)?,
                bytes: u64::decode(r)?,
                data: Vec::decode(r)?,
            }),
            2 => Ok(Frame::Heartbeat {
                rank: u64::decode(r)?,
                seq: u64::decode(r)?,
                op: u64::decode(r)?,
                phase: String::decode(r)?,
            }),
            3 => Ok(Frame::Abort {
                origin: u64::decode(r)?,
                reason: String::decode(r)?,
            }),
            4 => Ok(Frame::Done {
                rank: u64::decode(r)?,
                result: Vec::decode(r)?,
            }),
            5 => Ok(Frame::Failed {
                rank: u64::decode(r)?,
                panicked: bool::decode(r)?,
                reason: String::decode(r)?,
                error: Option::decode(r)?,
            }),
            6 => Ok(Frame::RequestKill {
                rank: u64::decode(r)?,
                op: u64::decode(r)?,
            }),
            d => Err(WireError::Invalid(format!("Frame discriminant {d}"))),
        }
    }
}

/// Why reading a frame off a stream failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum FrameError {
    /// Clean EOF on a frame boundary: the peer closed in an orderly
    /// way (or was killed between frames — the caller decides whether
    /// that was expected).
    Eof,
    /// EOF in the middle of a frame: the peer died mid-write.
    TruncatedEof { got: usize, wanted: usize },
    /// Length prefix exceeds the reader's configured cap; rejected
    /// before any allocation.
    Oversized { len: u32, cap: u32 },
    /// The two length words of the header disagree: the length prefix
    /// itself was corrupted in flight. Caught before any payload byte
    /// is read — the one corruption the payload CRC can never catch in
    /// time (see the module docs).
    HeaderCorrupt { len: u32, guard: u32 },
    /// Payload bytes do not match the header CRC.
    Crc { expected: u32, got: u32 },
    /// Payload failed Wire decoding (carries the inner error text).
    Decode(String),
    /// Underlying socket error other than timeout/EOF.
    Io(String),
    /// The reader's stop flag was raised while waiting for bytes.
    Stopped,
    /// Mid-frame read made no progress for longer than the caller's
    /// idle limit. A frame's bytes are written back-to-back, so this
    /// almost always means a corrupted length prefix has the reader
    /// waiting for payload that will never exist — without this check
    /// such a reader would silently swallow live traffic (heartbeats
    /// included) as bogus payload until the liveness window expired.
    Stalled { got: usize, wanted: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::TruncatedEof { got, wanted } => {
                write!(f, "connection closed mid-frame ({got}/{wanted} bytes)")
            }
            FrameError::Oversized { len, cap } => {
                write!(f, "frame length {len} exceeds cap {cap}")
            }
            FrameError::HeaderCorrupt { len, guard } => {
                write!(
                    f,
                    "frame header corrupt: length {len:#010x} does not match its guard {guard:#010x}"
                )
            }
            FrameError::Crc { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch (header {expected:#010x}, payload {got:#010x})"
                )
            }
            FrameError::Decode(e) => write!(f, "frame payload decode failed: {e}"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Stopped => write!(f, "reader stopped"),
            FrameError::Stalled { got, wanted } => {
                write!(f, "frame read stalled mid-frame ({got}/{wanted} bytes)")
            }
        }
    }
}

/// Encode any Wire value as `[len][guard][crc][payload]` ready to
/// write.
pub(crate) fn encode_wire<T: Wire>(value: &T) -> Vec<u8> {
    let payload = value.to_wire();
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(len ^ LEN_GUARD).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encode `frame` as `[len][guard][crc][payload]` ready to write.
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_wire(frame)
}

/// Fill `buf` from `stream`, tolerating read timeouts (the socket has
/// a short `read_timeout` so readers can poll `stop`). Returns the
/// byte count actually read when EOF arrives early.
fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<(), (usize, FrameErrorKind)> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err((filled, FrameErrorKind::Stopped));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, FrameErrorKind::Eof)),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err((filled, FrameErrorKind::Io(e.to_string()))),
        }
    }
    Ok(())
}

enum FrameErrorKind {
    Eof,
    Io(String),
    Stopped,
    Stalled,
}

/// Like [`read_full`], but gives up when the read makes no progress
/// for `idle_limit`. With `armed = false` the clock only starts once
/// the first byte arrives (an idle link between frames is normal);
/// with `armed = true` it runs from the first poll (a frame header
/// just arrived, so its payload must be right behind it).
fn read_full_idle(
    stream: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
    idle_limit: Duration,
    armed: bool,
) -> Result<(), (usize, FrameErrorKind)> {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err((filled, FrameErrorKind::Stopped));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, FrameErrorKind::Eof)),
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                if (armed || filled > 0) && last_progress.elapsed() > idle_limit {
                    return Err((filled, FrameErrorKind::Stalled));
                }
            }
            Err(e) => return Err((filled, FrameErrorKind::Io(e.to_string()))),
        }
    }
    Ok(())
}

/// Validate the fixed-size header: the guard word must agree with the
/// length prefix (corruption check, first) and the length must fit
/// under `cap` (policy check, second — only meaningful once the
/// length itself is trusted). Returns `(len, expected_crc)`.
fn parse_header(header: &[u8; HEADER_LEN], cap: u32) -> Result<(u32, u32), FrameError> {
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let guard = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let expected_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len ^ guard != LEN_GUARD {
        return Err(FrameError::HeaderCorrupt { len, guard });
    }
    if len > cap {
        return Err(FrameError::Oversized { len, cap });
    }
    Ok((len, expected_crc))
}

/// Read and decode one `[len][guard][crc][payload]` message whose
/// payload is any Wire type, enforcing `cap` on the length prefix
/// *before* the payload buffer is allocated. `stop` lets the owner
/// retire the reader thread without closing the socket.
pub(crate) fn read_wire<T: Wire>(
    stream: &mut impl Read,
    stop: &AtomicBool,
    cap: u32,
) -> Result<T, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(stream, &mut header, stop) {
        Ok(()) => {}
        // EOF before any header byte is a clean close; anything later
        // is a mid-frame death
        Err((0, FrameErrorKind::Eof)) => return Err(FrameError::Eof),
        Err((got, FrameErrorKind::Eof)) => {
            return Err(FrameError::TruncatedEof {
                got,
                wanted: HEADER_LEN,
            })
        }
        Err((got, FrameErrorKind::Stalled)) => {
            return Err(FrameError::Stalled {
                got,
                wanted: HEADER_LEN,
            })
        }
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let (len, expected_crc) = parse_header(&header, cap)?;
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, stop) {
        Ok(()) => {}
        Err((got, FrameErrorKind::Eof)) => {
            return Err(FrameError::TruncatedEof {
                got: HEADER_LEN + got,
                wanted: HEADER_LEN + len as usize,
            })
        }
        Err((got, FrameErrorKind::Stalled)) => {
            return Err(FrameError::Stalled {
                got: HEADER_LEN + got,
                wanted: HEADER_LEN + len as usize,
            })
        }
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let got_crc = crc32(&payload);
    if got_crc != expected_crc {
        return Err(FrameError::Crc {
            expected: expected_crc,
            got: got_crc,
        });
    }
    T::from_wire(&payload).map_err(|e| FrameError::Decode(e.to_string()))
}

/// Read and decode one [`Frame`] under the default cap.
pub(crate) fn read_frame(stream: &mut impl Read, stop: &AtomicBool) -> Result<Frame, FrameError> {
    read_wire(stream, stop, MAX_FRAME_LEN)
}

/// Like [`read_wire`], but with a mid-frame progress deadline: once
/// any byte of a message has arrived, the rest must keep arriving with
/// gaps no longer than `idle_limit`, or the read fails with
/// [`FrameError::Stalled`]. A frame's bytes are written back-to-back,
/// so a silent mid-frame gap means the connection itself went dark
/// (e.g. a network partition opened between two segments) — the
/// header guard cannot see that, only the clock can. Waiting
/// *between* messages is unlimited — an idle link is healthy.
///
/// Requires the stream to have a short `read_timeout` (the poll is
/// what samples the clock).
pub(crate) fn read_wire_stalling<T: Wire>(
    stream: &mut impl Read,
    stop: &AtomicBool,
    cap: u32,
    idle_limit: Duration,
) -> Result<T, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full_idle(stream, &mut header, stop, idle_limit, false) {
        Ok(()) => {}
        Err((0, FrameErrorKind::Eof)) => return Err(FrameError::Eof),
        Err((got, FrameErrorKind::Eof)) => {
            return Err(FrameError::TruncatedEof {
                got,
                wanted: HEADER_LEN,
            })
        }
        Err((got, FrameErrorKind::Stalled)) => {
            return Err(FrameError::Stalled {
                got,
                wanted: HEADER_LEN,
            })
        }
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let (len, expected_crc) = parse_header(&header, cap)?;
    let mut payload = vec![0u8; len as usize];
    match read_full_idle(stream, &mut payload, stop, idle_limit, true) {
        Ok(()) => {}
        Err((got, FrameErrorKind::Eof)) => {
            return Err(FrameError::TruncatedEof {
                got: HEADER_LEN + got,
                wanted: HEADER_LEN + len as usize,
            })
        }
        Err((got, FrameErrorKind::Stalled)) => {
            return Err(FrameError::Stalled {
                got: HEADER_LEN + got,
                wanted: HEADER_LEN + len as usize,
            })
        }
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let got_crc = crc32(&payload);
    if got_crc != expected_crc {
        return Err(FrameError::Crc {
            expected: expected_crc,
            got: got_crc,
        });
    }
    T::from_wire(&payload).map_err(|e| FrameError::Decode(e.to_string()))
}

/// Blocking wrapper used during connection handshakes: read one Wire
/// message or give up after `timeout`.
pub(crate) fn read_wire_timeout<T: Wire>(
    stream: &mut impl Read,
    timeout: Duration,
    cap: u32,
) -> Result<T, FrameError> {
    // reuse the stop flag as a deadline: a watcher thread would be
    // overkill for a handshake, so poll wall clock between reads
    struct DeadlineRead<'a, R> {
        inner: &'a mut R,
        deadline: Instant,
    }
    impl<R: Read> Read for DeadlineRead<'_, R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if Instant::now() >= self.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "handshake timeout",
                ));
            }
            self.inner.read(buf)
        }
    }
    let stop = AtomicBool::new(false);
    let mut dr = DeadlineRead {
        inner: stream,
        deadline: Instant::now() + timeout,
    };
    read_wire(&mut dr, &stop, cap)
}

/// Blocking wrapper used during the connection handshake: read one
/// frame or give up after `timeout`.
pub(crate) fn read_frame_timeout(
    stream: &mut impl Read,
    timeout: Duration,
) -> Result<Frame, FrameError> {
    read_wire_timeout(stream, timeout, MAX_FRAME_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn no_stop() -> AtomicBool {
        AtomicBool::new(false)
    }

    /// Frame a raw payload by hand: correct header, arbitrary bytes.
    fn raw_frame(payload: &[u8]) -> Vec<u8> {
        let len = payload.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&(len ^ LEN_GUARD).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { rank: 3 },
            Frame::Msg {
                src: 1,
                dst: 2,
                tag: 77,
                type_tag: 0xABCD,
                bytes: 4,
                data: vec![1, 2, 3, 4],
            },
            Frame::Heartbeat {
                rank: 0,
                seq: 41,
                op: 17,
                phase: "balance".into(),
            },
            Frame::Abort {
                origin: 2,
                reason: "recv timeout".into(),
            },
            Frame::Done {
                rank: 1,
                result: vec![9; 32],
            },
            Frame::Failed {
                rank: 0,
                panicked: true,
                reason: "panicked: boom".into(),
                error: None,
            },
            Frame::Failed {
                rank: 2,
                panicked: false,
                reason: "aborted".into(),
                error: Some(crate::CommError::Aborted {
                    origin: 1,
                    reason: "first".into(),
                }),
            },
            Frame::RequestKill { rank: 1, op: 12 },
        ]
    }

    #[test]
    fn frames_roundtrip_through_codec() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let mut cur = Cursor::new(bytes);
            let back = read_frame(&mut cur, &no_stop()).expect("decode");
            assert_eq!(frame, back);
            // and the stream is fully consumed: next read is clean EOF
            assert_eq!(read_frame(&mut cur, &no_stop()), Err(FrameError::Eof));
        }
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut cur = Cursor::new(bytes);
        for f in &frames {
            assert_eq!(&read_frame(&mut cur, &no_stop()).expect("frame"), f);
        }
        assert_eq!(read_frame(&mut cur, &no_stop()), Err(FrameError::Eof));
    }

    #[test]
    fn truncation_at_every_byte_is_typed_never_a_panic() {
        let full = encode_frame(&Frame::Msg {
            src: 0,
            dst: 1,
            tag: 5,
            type_tag: 7,
            bytes: 3,
            data: vec![10, 20, 30],
        });
        for cut in 1..full.len() {
            let mut cur = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut cur, &no_stop()).expect_err("truncated");
            match err {
                FrameError::TruncatedEof { got, wanted } => {
                    assert_eq!(got, cut);
                    assert!(wanted > got);
                }
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // claim a 3 GiB payload (with a consistent guard, so only the
        // cap check can reject it); decode must fail fast on the header
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(3u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&((3u32 << 30) ^ LEN_GUARD).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, &no_stop()),
            Err(FrameError::Oversized {
                len: 3 << 30,
                cap: MAX_FRAME_LEN
            })
        );
    }

    #[test]
    fn configurable_cap_rejects_legit_frames_above_it() {
        // a perfectly valid frame is still rejected when the reader's
        // configured cap is tighter than its length — typed, pre-alloc
        let frame = Frame::Done {
            rank: 0,
            result: vec![7; 100],
        };
        let bytes = encode_frame(&frame);
        let payload_len = (bytes.len() - HEADER_LEN) as u32;
        let tight = payload_len - 1;
        let mut cur = Cursor::new(bytes.clone());
        assert_eq!(
            read_wire::<Frame>(&mut cur, &no_stop(), tight),
            Err(FrameError::Oversized {
                len: payload_len,
                cap: tight
            })
        );
        // at exactly the cap it decodes
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_wire::<Frame>(&mut cur, &no_stop(), payload_len).expect("decode at cap"),
            frame
        );
    }

    #[test]
    fn crc_mismatch_is_detected() {
        let mut bytes = encode_frame(&Frame::Heartbeat {
            rank: 4,
            seq: 9,
            op: 0,
            phase: String::new(),
        });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip one payload bit
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Crc { .. }) => {}
            other => panic!("expected CRC error, got {other:?}"),
        }
    }

    #[test]
    fn bad_discriminant_is_a_decode_error() {
        let payload = vec![250u8]; // no such Frame variant
        let bytes = raw_frame(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(e)) => assert!(e.contains("discriminant")),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_inside_payload_is_rejected() {
        // valid Heartbeat payload plus junk, CRC recomputed so only the
        // strict from_wire trailing check can catch it
        let mut payload = Frame::Heartbeat {
            rank: 1,
            seq: 2,
            op: 0,
            phase: String::new(),
        }
        .to_wire();
        payload.extend_from_slice(&[0xAA, 0xBB]);
        let bytes = raw_frame(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(e)) => assert!(e.contains("trailing")),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_inner_length_in_msg_data_is_rejected() {
        // hand-craft a Msg frame whose Vec<u8> length claims far more
        // than the payload holds — the Wire seq_len guard must reject
        // it without allocating
        let mut payload = Vec::new();
        payload.push(1u8); // Msg discriminant
        for v in [0u64, 1, 5, 7, 3] {
            payload.extend_from_slice(&v.to_le_bytes()); // src dst tag type_tag bytes
        }
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // data len: 2^64-1
        let bytes = raw_frame(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(_)) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    /// A `Read` that hands back the byte stream in caller-chosen
    /// chunks, emulating TCP segmentation: every `read` returns at
    /// most up to the next cut point, never across one. Between
    /// chunks it reports `WouldBlock` once, which the frame reader
    /// must tolerate exactly like a socket read timeout.
    struct ChunkedReader {
        data: Vec<u8>,
        cuts: Vec<usize>, // sorted positions where a read must stop
        pos: usize,
        starve_next: bool,
    }

    impl ChunkedReader {
        fn new(data: Vec<u8>, mut cuts: Vec<usize>) -> Self {
            cuts.retain(|&c| c > 0 && c < data.len());
            cuts.sort_unstable();
            cuts.dedup();
            ChunkedReader {
                data,
                cuts,
                pos: 0,
                starve_next: false,
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0); // clean EOF
            }
            if self.starve_next {
                self.starve_next = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "starve",
                ));
            }
            let limit = self
                .cuts
                .iter()
                .find(|&&c| c > self.pos)
                .copied()
                .unwrap_or(self.data.len());
            let n = buf.len().min(limit - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            self.starve_next = true;
            Ok(n)
        }
    }

    /// Satellite: TCP delivers a frame stream in arbitrary segments —
    /// partial reads and short writes can split it anywhere, including
    /// inside the 8-byte header. Splitting the stream of all sample
    /// frames at *every* byte boundary must decode to the identical
    /// frame sequence.
    #[test]
    fn decode_is_invariant_under_a_split_at_every_boundary() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        for cut in 1..stream.len() {
            let mut r = ChunkedReader::new(stream.clone(), vec![cut]);
            for f in &frames {
                let got = read_frame(&mut r, &no_stop())
                    .unwrap_or_else(|e| panic!("cut at {cut}: {e:?}"));
                assert_eq!(&got, f, "cut at {cut} changed a decoded frame");
            }
            assert_eq!(read_frame(&mut r, &no_stop()), Err(FrameError::Eof));
        }
    }

    // Stream-reassembly property: split the concatenated frame stream
    // at any *set* of boundaries (multi-segment delivery, one-byte
    // dribbles included) — decoding must be split-invariant: the same
    // frames, in order, then clean EOF.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]
        #[test]
        fn multi_segment_reassembly_is_split_invariant(
            raw_cuts in proptest::collection::vec(0usize..4096, 0..24),
        ) {
            let frames = sample_frames();
            let mut stream = Vec::new();
            for f in &frames {
                stream.extend_from_slice(&encode_frame(f));
            }
            let cuts: Vec<usize> = raw_cuts.iter().map(|c| c % stream.len()).collect();
            let mut r = ChunkedReader::new(stream, cuts.clone());
            for f in &frames {
                let got = read_frame(&mut r, &no_stop());
                proptest::prop_assert_eq!(got.as_ref(), Ok(f), "cuts {:?}", &cuts);
            }
            proptest::prop_assert_eq!(read_frame(&mut r, &no_stop()), Err(FrameError::Eof));
        }
    }

    // Byte-mutation property, mirroring the checkpoint corruption
    // suite: flip any single byte of a valid frame stream anywhere —
    // length words, CRC word, or payload — and reading it back must
    // yield a typed error or the untouched original, never a panic,
    // a hang, or a silently different frame. The header guard catches
    // every single-byte corruption of the two length words *before*
    // any payload byte is read; CRC32 catches payload/CRC-word
    // corruption after. The same property is checked under a tight
    // configurable cap (the satellite max-frame-size guard).
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
        #[test]
        fn single_byte_mutations_never_panic_or_misparse(
            which in 0usize..7,
            pos in 0usize..4096,
            xor in 1u8..=255,
        ) {
            let frames = sample_frames();
            let original = &frames[which % frames.len()];
            let clean = encode_frame(original);
            let tight_cap = (clean.len() - HEADER_LEN) as u32; // exactly this frame's payload
            let mut bytes = clean;
            let pos = pos % bytes.len();
            bytes[pos] ^= xor;
            for cap in [MAX_FRAME_LEN, tight_cap] {
                let mut cur = Cursor::new(bytes.clone());
                match read_wire::<Frame>(&mut cur, &no_stop(), cap) {
                    Ok(frame) => proptest::prop_assert_eq!(&frame, original),
                    Err(
                        FrameError::Oversized { .. }
                        | FrameError::HeaderCorrupt { .. }
                        | FrameError::TruncatedEof { .. }
                        | FrameError::Crc { .. }
                        | FrameError::Decode(_)
                        | FrameError::Eof,
                    ) => {}
                    Err(other) => {
                        proptest::prop_assert!(false, "untyped failure: {:?}", other);
                    }
                }
            }
            // a mutation of either length word can never reach the
            // payload read: the guard relation breaks, pre-allocation
            if pos < 8 {
                let mut cur = Cursor::new(bytes.clone());
                let got = read_wire::<Frame>(&mut cur, &no_stop(), MAX_FRAME_LEN);
                let caught = matches!(got, Err(FrameError::HeaderCorrupt { .. }));
                proptest::prop_assert!(caught, "length-word mutation escaped the guard: {:?}", got);
            }
        }
    }

    /// A stream that yields some bytes and then blocks forever —
    /// the shape of a corrupted length prefix under the frame cap.
    struct StallingRead {
        bytes: Vec<u8>,
        pos: usize,
    }
    impl Read for StallingRead {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() {
                // emulate a socket read timeout poll, like a real
                // stream with a short read_timeout
                std::thread::sleep(Duration::from_millis(1));
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "poll"));
            }
            let n = (self.bytes.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// THE liveness trap this header exists for: a corrupted length
    /// prefix that still passes the cap check. Without the guard the
    /// reader would commit to a payload that never arrives and eat
    /// every later frame on the stream as its bytes — with a chatty
    /// peer (heartbeats!) the read keeps making "progress", so not
    /// even an idle-based stall detector fires, and the link looks
    /// healthy until the death window expires. The guard word turns
    /// it into an immediate typed header error, zero payload bytes
    /// read.
    #[test]
    fn corrupted_length_prefix_is_caught_at_the_header() {
        for flip in [3usize, 7] {
            // a high bit of the length word, then of the guard word
            let mut bytes = encode_frame(&Frame::Hello { rank: 1 });
            bytes[flip] ^= 0x01;
            let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let guard = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            assert!(len < MAX_FRAME_LEN, "test wants a cap-passing length");
            let mut cur = Cursor::new(bytes);
            assert_eq!(
                read_wire::<Frame>(&mut cur, &no_stop(), MAX_FRAME_LEN),
                Err(FrameError::HeaderCorrupt { len, guard }),
                "flipped byte {flip}"
            );
            // and the reader is still positioned right after the
            // header: no payload byte was consumed
            assert_eq!(cur.position(), HEADER_LEN as u64);
        }
    }

    /// A connection that goes silent *mid-frame* (partition between
    /// two TCP segments) must fail typed (`Stalled`) within the idle
    /// limit — the header is intact, so only the clock can see this.
    #[test]
    fn mid_frame_silence_stalls_typed() {
        let full = encode_frame(&Frame::Done {
            rank: 2,
            result: vec![7; 64],
        });
        let wanted = full.len();
        let cut = HEADER_LEN + 10; // header intact, payload unfinished
        let mut stream = StallingRead {
            bytes: full[..cut].to_vec(),
            pos: 0,
        };
        let started = Instant::now();
        let err = read_wire_stalling::<Frame>(
            &mut stream,
            &no_stop(),
            MAX_FRAME_LEN,
            Duration::from_millis(50),
        )
        .expect_err("must not decode");
        assert_eq!(err, FrameError::Stalled { got: cut, wanted });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stall detection took too long: {:?}",
            started.elapsed()
        );
    }

    /// An idle link between frames is healthy: the stalling reader must
    /// wait patiently (bounded here by the stop flag), not time out.
    #[test]
    fn idle_between_frames_is_not_a_stall() {
        struct IdleThenStop<'a> {
            polls: u32,
            stop: &'a AtomicBool,
        }
        impl Read for IdleThenStop<'_> {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                self.polls += 1;
                if self.polls > 100 {
                    self.stop.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(1));
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "poll"))
            }
        }
        let stop = no_stop();
        let mut stream = IdleThenStop {
            polls: 0,
            stop: &stop,
        };
        // 100 polls × 1 ms of pre-frame idle is far beyond the 5 ms
        // idle limit; only the stop flag may end the wait
        let err = read_wire_stalling::<Frame>(
            &mut stream,
            &stop,
            MAX_FRAME_LEN,
            Duration::from_millis(5),
        )
        .expect_err("nothing to read");
        assert_eq!(err, FrameError::Stopped);
    }
}
