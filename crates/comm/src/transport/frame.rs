//! Length-prefixed, CRC-guarded frames for the socket transport.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [ len: u32 LE ][ crc: u32 LE ][ payload: len bytes ]
//! ```
//!
//! `len` counts only the payload; `crc` is CRC-32 of the payload (the
//! same polynomial the checkpoint shards use, from
//! [`quadforest_core::crc`]). The payload is the Wire encoding of a
//! [`Frame`]. Decoding is strict and hostile-input-safe: an
//! out-of-range length is rejected *before* any allocation, a CRC
//! mismatch or trailing bytes is a typed error, and EOF mid-frame is
//! distinguished from clean EOF between frames — the reader can tell
//! "peer hung up" from "peer died mid-sentence".

use quadforest_core::crc::crc32;
use quadforest_core::wire::{Wire, WireError, WireReader};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on a single frame payload. Far above anything the
/// forest algorithms send (the biggest alltoallv slabs are a few MiB),
/// far below anything that could be a length-prefix attack.
pub(crate) const MAX_FRAME_LEN: u32 = 256 << 20;

/// Everything that travels over a rank⇄supervisor socket.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Frame {
    /// First frame on a connection: the child identifies its rank.
    Hello { rank: u64 },
    /// A point-to-point or collective message, routed via the
    /// supervisor star. `type_tag` is the sender's payload type hash;
    /// `bytes` the telemetry size estimate.
    Msg {
        src: u64,
        dst: u64,
        tag: u64,
        type_tag: u64,
        bytes: u64,
        data: Vec<u8>,
    },
    /// Periodic liveness beacon from a child, carrying the rank's last
    /// counted comm-op index and the telemetry phase it was in — so the
    /// supervisor can name a SIGKILLed rank's last comm op and phase in
    /// its flight-recorder postmortem even though the victim cannot
    /// dump anything itself.
    Heartbeat {
        rank: u64,
        seq: u64,
        op: u64,
        phase: String,
    },
    /// Abort broadcast: either direction. From a child it reports
    /// "this rank failed first"; from the supervisor it spreads the
    /// recorded origin to every surviving rank.
    Abort { origin: u64, reason: String },
    /// A child finished successfully with these result bytes.
    Done { rank: u64, result: Vec<u8> },
    /// A child's program failed. `error` is present when the program
    /// returned a typed `CommError` (absent for panics).
    Failed {
        rank: u64,
        panicked: bool,
        reason: String,
        error: Option<crate::CommError>,
    },
    /// Fault injection: the child asks the supervisor to SIGKILL it at
    /// scheduled comm op `op`, then parks awaiting death.
    RequestKill { rank: u64, op: u64 },
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { rank } => {
                out.push(0);
                rank.encode(out);
            }
            Frame::Msg {
                src,
                dst,
                tag,
                type_tag,
                bytes,
                data,
            } => {
                out.push(1);
                src.encode(out);
                dst.encode(out);
                tag.encode(out);
                type_tag.encode(out);
                bytes.encode(out);
                data.encode(out);
            }
            Frame::Heartbeat {
                rank,
                seq,
                op,
                phase,
            } => {
                out.push(2);
                rank.encode(out);
                seq.encode(out);
                op.encode(out);
                phase.encode(out);
            }
            Frame::Abort { origin, reason } => {
                out.push(3);
                origin.encode(out);
                reason.encode(out);
            }
            Frame::Done { rank, result } => {
                out.push(4);
                rank.encode(out);
                result.encode(out);
            }
            Frame::Failed {
                rank,
                panicked,
                reason,
                error,
            } => {
                out.push(5);
                rank.encode(out);
                panicked.encode(out);
                reason.encode(out);
                error.encode(out);
            }
            Frame::RequestKill { rank, op } => {
                out.push(6);
                rank.encode(out);
                op.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Frame::Hello {
                rank: u64::decode(r)?,
            }),
            1 => Ok(Frame::Msg {
                src: u64::decode(r)?,
                dst: u64::decode(r)?,
                tag: u64::decode(r)?,
                type_tag: u64::decode(r)?,
                bytes: u64::decode(r)?,
                data: Vec::decode(r)?,
            }),
            2 => Ok(Frame::Heartbeat {
                rank: u64::decode(r)?,
                seq: u64::decode(r)?,
                op: u64::decode(r)?,
                phase: String::decode(r)?,
            }),
            3 => Ok(Frame::Abort {
                origin: u64::decode(r)?,
                reason: String::decode(r)?,
            }),
            4 => Ok(Frame::Done {
                rank: u64::decode(r)?,
                result: Vec::decode(r)?,
            }),
            5 => Ok(Frame::Failed {
                rank: u64::decode(r)?,
                panicked: bool::decode(r)?,
                reason: String::decode(r)?,
                error: Option::decode(r)?,
            }),
            6 => Ok(Frame::RequestKill {
                rank: u64::decode(r)?,
                op: u64::decode(r)?,
            }),
            d => Err(WireError::Invalid(format!("Frame discriminant {d}"))),
        }
    }
}

/// Why reading a frame off a stream failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum FrameError {
    /// Clean EOF on a frame boundary: the peer closed in an orderly
    /// way (or was killed between frames — the caller decides whether
    /// that was expected).
    Eof,
    /// EOF in the middle of a frame: the peer died mid-write.
    TruncatedEof { got: usize, wanted: usize },
    /// Length prefix exceeds [`MAX_FRAME_LEN`]; rejected before any
    /// allocation.
    Oversized { len: u32 },
    /// Payload bytes do not match the header CRC.
    Crc { expected: u32, got: u32 },
    /// Payload failed Wire decoding (carries the inner error text).
    Decode(String),
    /// Underlying socket error other than timeout/EOF.
    Io(String),
    /// The reader's stop flag was raised while waiting for bytes.
    Stopped,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::TruncatedEof { got, wanted } => {
                write!(f, "connection closed mid-frame ({got}/{wanted} bytes)")
            }
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::Crc { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch (header {expected:#010x}, payload {got:#010x})"
                )
            }
            FrameError::Decode(e) => write!(f, "frame payload decode failed: {e}"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Stopped => write!(f, "reader stopped"),
        }
    }
}

/// Encode `frame` as `[len][crc][payload]` ready to write.
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.to_wire();
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Fill `buf` from `stream`, tolerating read timeouts (the socket has
/// a short `read_timeout` so readers can poll `stop`). Returns the
/// byte count actually read when EOF arrives early.
fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<(), (usize, FrameErrorKind)> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err((filled, FrameErrorKind::Stopped));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, FrameErrorKind::Eof)),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err((filled, FrameErrorKind::Io(e.to_string()))),
        }
    }
    Ok(())
}

enum FrameErrorKind {
    Eof,
    Io(String),
    Stopped,
}

/// Read and decode one frame. `stop` lets the owner retire the reader
/// thread without closing the socket.
pub(crate) fn read_frame(stream: &mut impl Read, stop: &AtomicBool) -> Result<Frame, FrameError> {
    let mut header = [0u8; 8];
    match read_full(stream, &mut header, stop) {
        Ok(()) => {}
        // EOF before any header byte is a clean close; anything later
        // is a mid-frame death
        Err((0, FrameErrorKind::Eof)) => return Err(FrameError::Eof),
        Err((got, FrameErrorKind::Eof)) => return Err(FrameError::TruncatedEof { got, wanted: 8 }),
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, stop) {
        Ok(()) => {}
        Err((got, FrameErrorKind::Eof)) => {
            return Err(FrameError::TruncatedEof {
                got: 8 + got,
                wanted: 8 + len as usize,
            })
        }
        Err((_, FrameErrorKind::Stopped)) => return Err(FrameError::Stopped),
        Err((_, FrameErrorKind::Io(e))) => return Err(FrameError::Io(e)),
    }
    let got_crc = crc32(&payload);
    if got_crc != expected_crc {
        return Err(FrameError::Crc {
            expected: expected_crc,
            got: got_crc,
        });
    }
    Frame::from_wire(&payload).map_err(|e| FrameError::Decode(e.to_string()))
}

/// Blocking wrapper used during the connection handshake: read one
/// frame or give up after `timeout`.
pub(crate) fn read_frame_timeout(
    stream: &mut impl Read,
    timeout: Duration,
) -> Result<Frame, FrameError> {
    // reuse the stop flag as a deadline: a watcher thread would be
    // overkill for a handshake, so poll wall clock between reads
    struct DeadlineRead<'a, R> {
        inner: &'a mut R,
        deadline: Instant,
    }
    impl<R: Read> Read for DeadlineRead<'_, R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if Instant::now() >= self.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "handshake timeout",
                ));
            }
            self.inner.read(buf)
        }
    }
    let stop = AtomicBool::new(false);
    let mut dr = DeadlineRead {
        inner: stream,
        deadline: Instant::now() + timeout,
    };
    read_frame(&mut dr, &stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn no_stop() -> AtomicBool {
        AtomicBool::new(false)
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { rank: 3 },
            Frame::Msg {
                src: 1,
                dst: 2,
                tag: 77,
                type_tag: 0xABCD,
                bytes: 4,
                data: vec![1, 2, 3, 4],
            },
            Frame::Heartbeat {
                rank: 0,
                seq: 41,
                op: 17,
                phase: "balance".into(),
            },
            Frame::Abort {
                origin: 2,
                reason: "recv timeout".into(),
            },
            Frame::Done {
                rank: 1,
                result: vec![9; 32],
            },
            Frame::Failed {
                rank: 0,
                panicked: true,
                reason: "panicked: boom".into(),
                error: None,
            },
            Frame::Failed {
                rank: 2,
                panicked: false,
                reason: "aborted".into(),
                error: Some(crate::CommError::Aborted {
                    origin: 1,
                    reason: "first".into(),
                }),
            },
            Frame::RequestKill { rank: 1, op: 12 },
        ]
    }

    #[test]
    fn frames_roundtrip_through_codec() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let mut cur = Cursor::new(bytes);
            let back = read_frame(&mut cur, &no_stop()).expect("decode");
            assert_eq!(frame, back);
            // and the stream is fully consumed: next read is clean EOF
            assert_eq!(read_frame(&mut cur, &no_stop()), Err(FrameError::Eof));
        }
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut cur = Cursor::new(bytes);
        for f in &frames {
            assert_eq!(&read_frame(&mut cur, &no_stop()).expect("frame"), f);
        }
        assert_eq!(read_frame(&mut cur, &no_stop()), Err(FrameError::Eof));
    }

    #[test]
    fn truncation_at_every_byte_is_typed_never_a_panic() {
        let full = encode_frame(&Frame::Msg {
            src: 0,
            dst: 1,
            tag: 5,
            type_tag: 7,
            bytes: 3,
            data: vec![10, 20, 30],
        });
        for cut in 1..full.len() {
            let mut cur = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut cur, &no_stop()).expect_err("truncated");
            match err {
                FrameError::TruncatedEof { got, wanted } => {
                    assert_eq!(got, cut);
                    assert!(wanted > got);
                }
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // claim a 3 GiB payload; decode must fail fast on the header
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(3u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, &no_stop()),
            Err(FrameError::Oversized { len: 3 << 30 })
        );
    }

    #[test]
    fn crc_mismatch_is_detected() {
        let mut bytes = encode_frame(&Frame::Heartbeat {
            rank: 4,
            seq: 9,
            op: 0,
            phase: String::new(),
        });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip one payload bit
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Crc { .. }) => {}
            other => panic!("expected CRC error, got {other:?}"),
        }
    }

    #[test]
    fn bad_discriminant_is_a_decode_error() {
        let payload = vec![250u8]; // no such Frame variant
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(e)) => assert!(e.contains("discriminant")),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_inside_payload_is_rejected() {
        // valid Heartbeat payload plus junk, CRC recomputed so only the
        // strict from_wire trailing check can catch it
        let mut payload = Frame::Heartbeat {
            rank: 1,
            seq: 2,
            op: 0,
            phase: String::new(),
        }
        .to_wire();
        payload.extend_from_slice(&[0xAA, 0xBB]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(e)) => assert!(e.contains("trailing")),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_inner_length_in_msg_data_is_rejected() {
        // hand-craft a Msg frame whose Vec<u8> length claims far more
        // than the payload holds — the Wire seq_len guard must reject
        // it without allocating
        let mut payload = Vec::new();
        payload.push(1u8); // Msg discriminant
        for v in [0u64, 1, 5, 7, 3] {
            payload.extend_from_slice(&v.to_le_bytes()); // src dst tag type_tag bytes
        }
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // data len: 2^64-1
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, &no_stop()) {
            Err(FrameError::Decode(_)) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    // Byte-mutation property, mirroring the checkpoint corruption
    // suite: flip any single byte of a valid frame stream anywhere —
    // length prefix, CRC guard, or payload — and reading it back must
    // yield a typed error or the untouched original, never a panic,
    // a hang, or a silently different frame. CRC32 catches every
    // single-byte payload/guard corruption; length corruption lands in
    // the Oversized/Truncated/Crc paths.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
        #[test]
        fn single_byte_mutations_never_panic_or_misparse(
            which in 0usize..7,
            pos in 0usize..4096,
            xor in 1u8..=255,
        ) {
            let frames = sample_frames();
            let original = &frames[which % frames.len()];
            let mut bytes = encode_frame(original);
            let pos = pos % bytes.len();
            bytes[pos] ^= xor;
            let mut cur = Cursor::new(bytes);
            match read_frame(&mut cur, &no_stop()) {
                Ok(frame) => proptest::prop_assert_eq!(&frame, original),
                Err(
                    FrameError::Oversized { .. }
                    | FrameError::TruncatedEof { .. }
                    | FrameError::Crc { .. }
                    | FrameError::Decode(_)
                    | FrameError::Eof,
                ) => {}
                Err(other) => {
                    proptest::prop_assert!(false, "untyped failure: {:?}", other);
                }
            }
        }
    }
}
